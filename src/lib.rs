//! # fempath
//!
//! A relational approach to shortest-path discovery over large graphs — a
//! from-scratch Rust reproduction of Gao et al., *"Relational Approach for
//! Shortest Path Discovery over Large Graphs"*, PVLDB 5(4), 2011.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`storage`] — pages, buffer pool, heap files, B+trees,
//! * [`sql`] — the SQL engine (window functions, MERGE, views, prepared
//!   statements),
//! * [`graph`] — graph model, synthetic generators, relational loaders,
//! * [`inmem`] — in-memory baselines (MDJ/MBDJ),
//! * [`core`] — the FEM framework, the five relational shortest-path
//!   algorithms (DJ, BDJ, BSDJ, BBFS, BSEG), the batched multi-pair
//!   finders (BatchDJ, BatchBDJ — DESIGN.md §8), the SegTable index, and
//!   the concurrent [`PathService`](core::PathService) (DESIGN.md §10).
//!
//! ## Quickstart
//!
//! ```
//! use fempath::core::{GraphDb, BsdjFinder, ShortestPathFinder};
//! use fempath::graph::generate;
//!
//! // A small weighted power-law graph, loaded into relational tables.
//! let g = generate::power_law(500, 3, 1..=100, 42);
//! let mut db = GraphDb::in_memory(&g).unwrap();
//!
//! // Bi-directional set Dijkstra, driven entirely by SQL statements.
//! let finder = BsdjFinder::default();
//! let outcome = finder.find_path(&mut db, 0, 250).unwrap();
//! if let Some(path) = &outcome.path {
//!     assert!(path.length > 0);
//! }
//! ```
//!
//! ## Batched throughput
//!
//! Answer many (s, t) pairs per relational iteration — the working tables
//! carry a `qid` column, so one F/E/M statement advances the whole batch:
//!
//! ```
//! use fempath::core::{GraphDb, BatchBdjFinder, BatchShortestPathFinder};
//! use fempath::graph::generate;
//!
//! let g = generate::power_law(500, 3, 1..=100, 42);
//! let mut db = GraphDb::in_memory(&g).unwrap();
//!
//! let pairs = vec![(0, 250), (7, 431), (123, 123), (250, 0)];
//! let out = BatchBdjFinder::default().find_paths(&mut db, &pairs).unwrap();
//! assert_eq!(out.paths.len(), pairs.len()); // paths[i] answers pairs[i]
//! ```
//!
//! ## Concurrent serving
//!
//! [`PathService`](core::PathService) freezes the graph into an
//! `Arc`-shared read-only snapshot and answers queries from a pool of
//! worker sessions, each with private working tables (DESIGN.md §10):
//!
//! ```
//! use fempath::core::PathService;
//! use fempath::graph::generate;
//!
//! let g = generate::power_law(500, 3, 1..=100, 42);
//! let svc = PathService::new(&g, 4).unwrap();
//! let out = svc.query(0, 250).unwrap();           // callable from any thread
//! let paths = svc.query_batch(&[(0, 250), (7, 431)]).unwrap();
//! assert_eq!(paths.len(), 2);
//! ```

pub use fempath_core as core;
pub use fempath_graph as graph;
pub use fempath_inmem as inmem;
pub use fempath_sql as sql;
pub use fempath_storage as storage;
