//! A tiny interactive SQL shell over the embedded engine — handy for
//! poking at the tables the algorithms create (TEdges, TVisited, TOutSegs).
//!
//! ```text
//! cargo run --example sql_shell
//! sql> CREATE TABLE t (a INT, b TEXT);
//! sql> INSERT INTO t VALUES (1, 'one'), (2, 'two');
//! sql> SELECT * FROM t WHERE a > 1;
//! sql> \tables
//! sql> \quit
//! ```

use fempath::sql::Database;
use std::io::{self, BufRead, Write};

fn main() -> io::Result<()> {
    let mut db = Database::in_memory(4096);
    println!("fempath SQL shell — \\tables lists tables, \\quit exits");
    let stdin = io::stdin();
    let mut line = String::new();
    loop {
        print!("sql> ");
        io::stdout().flush()?;
        line.clear();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        match input {
            "\\quit" | "\\q" | "exit" => break,
            "\\tables" => {
                for t in db.catalog().table_names() {
                    println!("  {t}");
                }
                continue;
            }
            _ => {}
        }
        match db.execute_script(input) {
            Ok(out) => {
                if let Some(rs) = out.rows {
                    println!("  {}", rs.columns.join(" | "));
                    for row in &rs.rows {
                        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                        println!("  {}", cells.join(" | "));
                    }
                    println!("  ({} rows)", rs.rows.len());
                } else {
                    println!("  ok, {} rows affected", out.rows_affected);
                }
            }
            Err(e) => println!("  error: {e}"),
        }
    }
    Ok(())
}
