//! The FEM framework beyond shortest paths (§3.1 and §7 of the paper):
//! reachability, Prim's minimal spanning tree, single-source shortest
//! paths, landmark distance estimation, and label-path pattern matching —
//! all running as SQL iterations over the same relational store.
//!
//! ```text
//! cargo run --release --example fem_framework
//! ```

use fempath::core::{
    build_landmarks, component_size, estimate_distance, match_label_path, prim_mst, reachable,
    set_labels, single_source, GraphDb,
};
use fempath::graph::generate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generate::power_law(800, 3, 1..=50, 99);
    let mut db = GraphDb::in_memory(&g)?;
    println!(
        "graph: {} nodes / {} arcs, loaded relationally\n",
        g.num_nodes(),
        g.num_arcs()
    );

    // 1. Reachability (§3.1's first example).
    println!("reachable(0, 799)      = {}", reachable(&mut db, 0, 799)?);
    println!("component_size(0)      = {}", component_size(&mut db, 0)?);

    // 2. Prim's MST (§3.1's second example).
    let mst = prim_mst(&mut db, 0)?;
    println!(
        "prim MST               = {} edges, total weight {}",
        mst.edges.len(),
        mst.total_weight
    );

    // 3. Single-source shortest paths (set-Dijkstra, forward only).
    let sssp = single_source(&mut db, 0)?;
    let ecc = sssp.entries.iter().map(|e| e.distance).max().unwrap_or(0);
    println!(
        "SSSP from node 0       = {} nodes settled in {} iterations (eccentricity {})",
        sssp.entries.len(),
        sssp.iterations,
        ecc
    );

    // 4. Landmark distance estimation (the offline alternative of [19]).
    build_landmarks(&mut db, &[0, 200, 400, 600])?;
    let b = estimate_distance(&mut db, 13, 777)?.expect("connected");
    println!(
        "landmark bounds 13~777 = [{}, {}] (4 landmarks)",
        b.lower, b.upper
    );

    // 5. Label-path pattern matching (§3.1's third example / §7 future work).
    let labels: Vec<i64> = (0..g.num_nodes() as i64).map(|v| v % 3).collect();
    set_labels(&mut db, &labels)?;
    let matches = match_label_path(&mut db, &[0, 1, 2], true)?;
    println!("pattern A->B->C        = {} embeddings", matches.len());

    println!("\nevery number above was produced by SQL statements over TEdges & friends");
    Ok(())
}
