//! Quickstart: load the paper's Figure 1 graph into relational tables and
//! find the shortest s→t path with every algorithm.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fempath::core::{
    BbfsFinder, BdjFinder, BsdjFinder, BsegFinder, DjFinder, GraphDb, ShortestPathFinder,
};
use fempath::graph::Graph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The graph of Figure 1 (s=0, b=1, c=2, d=3, e=4, f=5, g=6, h=7, i=8,
    // j=9, t=10), weights as printed in the paper.
    let g = Graph::from_undirected_edges(
        11,
        vec![
            (0, 1, 2),
            (0, 2, 1),
            (0, 3, 6),
            (1, 4, 2),
            (2, 3, 1),
            (2, 4, 3),
            (3, 9, 7),
            (4, 6, 3),
            (4, 5, 7),
            (4, 7, 8),
            (5, 6, 4),
            (5, 8, 9),
            (6, 7, 4),
            (7, 10, 3),
            (8, 9, 2),
            (8, 10, 5),
            (9, 10, 8),
        ],
    );
    let names = ["s", "b", "c", "d", "e", "f", "g", "h", "i", "j", "t"];

    // Load into TNodes/TEdges (clustered index on TEdges(fid)).
    let mut db = GraphDb::in_memory(&g)?;
    println!(
        "loaded {} nodes / {} arcs into the relational store",
        db.num_nodes(),
        db.num_arcs()
    );

    // Build the SegTable with the paper's example threshold (Figure 4).
    let stats = db.build_segtable(6)?;
    println!(
        "SegTable(lthd=6): {} segments in {} FEM iterations ({} SQL statements)",
        stats.segments, stats.iterations, stats.sql_statements
    );

    let finders: Vec<Box<dyn ShortestPathFinder>> = vec![
        Box::new(DjFinder::default()),
        Box::new(BdjFinder::default()),
        Box::new(BsdjFinder::default()),
        Box::new(BbfsFinder::default()),
        Box::new(BsegFinder::default()),
    ];
    println!("\nshortest path s -> t (expected length 14):");
    for f in &finders {
        let out = f.find_path(&mut db, 0, 10)?;
        let path = out.path.expect("s-t are connected");
        let pretty: Vec<&str> = path.nodes.iter().map(|&n| names[n as usize]).collect();
        println!(
            "  {:>5}: length {:>2}, path {:<22} ({} expansions, {} SQL statements)",
            f.name(),
            path.length,
            pretty.join("->"),
            out.stats.expansions,
            out.stats.sql_statements,
        );
    }
    Ok(())
}
