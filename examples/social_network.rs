//! Social-network scenario from the paper's introduction: "the shortest
//! path discovery in a social network between two individuals reveals how
//! their relationship is built".
//!
//! Builds a LiveJournal-like power-law friendship graph, compares the
//! set-at-a-time BSDJ against the SegTable-accelerated BSEG on a batch of
//! relationship queries, and prints the per-algorithm statistics the paper
//! reports (time, expansions, visited nodes).
//!
//! ```text
//! cargo run --release --example social_network [-- <num_members>]
//! ```

use fempath::core::{BsdjFinder, BsegFinder, GraphDb, ShortestPathFinder};
use fempath::graph::generate;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);
    println!("generating a {n}-member friendship network (power-law, weights = tie strength)");
    let g = generate::livejournal_like(n, 1..=100, 7);
    let mut db = GraphDb::in_memory(&g)?;

    let t0 = Instant::now();
    let seg = db.build_segtable(3)?;
    println!(
        "SegTable(lthd=3): {} segments in {:.2}s",
        seg.segments,
        t0.elapsed().as_secs_f64()
    );

    // Ten "how do these two people know each other?" queries.
    let queries: Vec<(i64, i64)> = (0..10)
        .map(|i| (((i * 733) % n) as i64, ((i * 911 + n / 2) % n) as i64))
        .collect();

    for (finder, label) in [
        (
            Box::new(BsdjFinder::default()) as Box<dyn ShortestPathFinder>,
            "BSDJ (no index)",
        ),
        (Box::new(BsegFinder::default()), "BSEG (SegTable)"),
    ] {
        let mut total_ms = 0.0;
        let mut total_exp = 0u64;
        let mut total_vst = 0u64;
        let mut found = 0usize;
        for &(a, b) in &queries {
            let out = finder.find_path(&mut db, a, b)?;
            total_ms += out.stats.total_time.as_secs_f64() * 1e3;
            total_exp += out.stats.expansions;
            total_vst += out.stats.visited_nodes;
            if let Some(p) = out.path {
                found += 1;
                if a == queries[0].0 && b == queries[0].1 {
                    println!(
                        "  sample: member {a} reaches member {b} through {} intermediaries \
                         (total tie distance {})",
                        p.nodes.len().saturating_sub(2),
                        p.length
                    );
                }
            }
        }
        println!(
            "{label:>16}: {found}/{} connected | avg {:.1} ms | avg {:.0} expansions | avg {:.0} visited",
            queries.len(),
            total_ms / queries.len() as f64,
            total_exp as f64 / queries.len() as f64,
            total_vst as f64 / queries.len() as f64,
        );
    }
    println!("\nthe SegTable cuts the number of set-at-a-time expansions (§4.2 of the paper)");
    Ok(())
}
