//! Batched multi-pair shortest paths: one FEM iteration stream answers a
//! whole batch of (s, t) queries at once (DESIGN.md §8).
//!
//! ```text
//! cargo run --release --example batch_queries
//! ```

use fempath::core::{BatchBdjFinder, BatchShortestPathFinder, GraphDb};
use fempath::graph::generate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small social-network-style graph, loaded into relational tables.
    let g = generate::power_law(400, 3, 1..=100, 7);
    let mut db = GraphDb::in_memory(&g)?;
    println!(
        "loaded {} nodes / {} arcs into the relational store",
        db.num_nodes(),
        db.num_arcs()
    );

    // One batch mixing ordinary, trivial and repeated pairs. Each pair is
    // an independent query (its own qid in the shared working tables).
    let pairs: Vec<(i64, i64)> = vec![
        (0, 399),
        (17, 230),
        (42, 42), // trivial: answered client-side
        (399, 0),
        (0, 399), // duplicate of the first pair
        (250, 11),
        (3, 77),
        (198, 305),
    ];
    let out = BatchBdjFinder::default().find_paths(&mut db, &pairs)?;

    println!("\n{} pairs in one batched run:", pairs.len());
    for ((s, t), path) in pairs.iter().zip(&out.paths) {
        match path {
            Some(p) => println!(
                "  {s:>3} -> {t:>3}: length {:>3}, {} hops",
                p.length,
                p.nodes.len() - 1
            ),
            None => println!("  {s:>3} -> {t:>3}: unreachable"),
        }
    }
    println!(
        "\nwhole batch: {} relational iterations, {} SQL statements, {:.1} ms",
        out.stats.expansions,
        out.stats.sql_statements,
        out.stats.total_time.as_secs_f64() * 1e3,
    );
    println!(
        "(a single-query loop would have issued one statement stream per pair; \
         see `paperbench batch-throughput` for the pairs/sec comparison)"
    );
    Ok(())
}
