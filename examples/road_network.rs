//! Road-network scenario: a near-planar grid with travel-time weights,
//! where the SegTable is built once and then amortized over many route
//! queries — the workload that motivates precomputed indexes (§4.2).
//!
//! Also demonstrates running the database *disk-resident* with a small
//! buffer pool, and reports the physical I/O the buffer manager performed.
//!
//! ```text
//! cargo run --release --example road_network [-- <grid_side>]
//! ```

use fempath::core::{BsegFinder, GraphDb, GraphDbOptions, ShortestPathFinder};
use fempath::graph::generate;
use fempath::inmem::dijkstra;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let n = side * side;
    println!("building a {side}x{side} road grid ({n} intersections), travel times 1..=30");
    let g = generate::grid(side, side, 1..=30, 11);

    // Disk-resident with a deliberately small buffer (2 MiB).
    let mut db = GraphDb::new(
        &g,
        &GraphDbOptions {
            buffer_pages: 256,
            on_disk: true,
            ..Default::default()
        },
    )?;
    let seg = db.build_segtable(40)?;
    println!(
        "SegTable(lthd=40): {} segments, built in {:.2}s with {} disk reads / {} writes",
        seg.segments,
        seg.build_time.as_secs_f64(),
        seg.io.disk_reads,
        seg.io.disk_writes
    );

    // Route queries: corners and a few random crossings.
    let corners = [
        (0i64, (n - 1) as i64),
        ((side - 1) as i64, (n - side) as i64),
        ((n / 2) as i64, 0i64),
    ];
    let finder = BsegFinder::default();
    db.db.reset_io_stats();
    for &(a, b) in &corners {
        let out = finder.find_path(&mut db, a, b)?;
        let p = out.path.expect("grid is connected");
        // Cross-check against in-memory Dijkstra.
        let oracle = dijkstra::shortest_path(&g, a as u32, b as u32).unwrap();
        assert_eq!(p.length as u64, oracle.distance, "route must be optimal");
        println!(
            "route {a:>5} -> {b:>5}: travel time {:>4}, {} road segments, \
             {} expansions, {:.1} ms",
            p.length,
            p.nodes.len() - 1,
            out.stats.expansions,
            out.stats.total_time.as_secs_f64() * 1e3,
        );
    }
    let io = db.db.io_stats();
    println!(
        "\nbuffer pool during queries: {} hits, {} misses ({:.1}% hit rate), {} physical reads",
        io.buffer_hits,
        io.buffer_misses,
        io.hit_rate() * 100.0,
        io.disk_reads
    );
    Ok(())
}
