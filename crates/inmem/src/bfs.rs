//! Breadth-first utilities: hop counts and reachability (test helpers and
//! the in-memory reference for the BBFS iteration-count analysis of §4.2).

use fempath_graph::Graph;
use std::collections::VecDeque;

/// Hop distance (number of edges) from `s` to every node; `u32::MAX` when
/// unreachable.
pub fn hop_distances(g: &Graph, s: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_nodes()];
    let mut q = VecDeque::new();
    dist[s as usize] = 0;
    q.push_back(s);
    while let Some(u) = q.pop_front() {
        for a in g.out_arcs(u) {
            if dist[a.to as usize] == u32::MAX {
                dist[a.to as usize] = dist[u as usize] + 1;
                q.push_back(a.to);
            }
        }
    }
    dist
}

/// True when `t` is reachable from `s`.
pub fn reachable(g: &Graph, s: u32, t: u32) -> bool {
    hop_distances(g, s)[t as usize] != u32::MAX
}

/// Number of edges on the *shortest weighted* path from `s` to `t` — the
/// `e(p)` of §4.2 ("BFS can find p with e(p) iterations").
pub fn shortest_path_edge_count(g: &Graph, s: u32, t: u32) -> Option<usize> {
    crate::dijkstra::shortest_path(g, s, t).map(|r| r.nodes.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::Graph;

    #[test]
    fn hops_on_path_graph() {
        let g = Graph::from_undirected_edges(4, vec![(0, 1, 9), (1, 2, 9), (2, 3, 9)]);
        assert_eq!(hop_distances(&g, 0), vec![0, 1, 2, 3]);
        assert!(reachable(&g, 0, 3));
    }

    #[test]
    fn unreachable_is_max() {
        let g = Graph::from_undirected_edges(3, vec![(0, 1, 1)]);
        assert_eq!(hop_distances(&g, 0)[2], u32::MAX);
        assert!(!reachable(&g, 0, 2));
    }

    #[test]
    fn edge_count_of_weighted_shortest_path() {
        // Cheapest path 0->2 goes the long way round.
        let g = Graph::from_undirected_edges(3, vec![(0, 2, 100), (0, 1, 1), (1, 2, 1)]);
        assert_eq!(shortest_path_edge_count(&g, 0, 2), Some(2));
    }
}
