//! # fempath-inmem
//!
//! In-memory graph algorithms: the paper's **MDJ** (Dijkstra) and **MBDJ**
//! (bidirectional Dijkstra) baselines from §5.1, plus BFS helpers and Prim's
//! MST. These are both benchmark competitors (Fig 8(d)) and the correctness
//! oracles every relational algorithm is tested against.

#![forbid(unsafe_code)]

pub mod bfs;
pub mod bidijkstra;
pub mod dijkstra;
pub mod mst;

/// Result of an in-memory shortest-path query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathResult {
    /// Shortest distance.
    pub distance: u64,
    /// Node sequence from source to target (inclusive).
    pub nodes: Vec<u32>,
    /// Number of settled (finalized) nodes — the search-space metric.
    pub settled: u64,
}
