//! In-memory Dijkstra — the paper's **MDJ** baseline (§5.1), and the
//! correctness oracle for every relational algorithm in the workspace.

use crate::PathResult;
use fempath_graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-source single-target Dijkstra with a binary heap. Returns `None`
/// when `t` is unreachable from `s`.
pub fn shortest_path(g: &Graph, s: u32, t: u32) -> Option<PathResult> {
    if s == t {
        return Some(PathResult {
            distance: 0,
            nodes: vec![s],
            settled: 1,
        });
    }
    let n = g.num_nodes();
    let mut dist = vec![u64::MAX; n];
    let mut pred = vec![u32::MAX; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[s as usize] = 0;
    heap.push(Reverse((0u64, s)));
    let mut settled = 0u64;
    while let Some(Reverse((d, u))) = heap.pop() {
        if done[u as usize] {
            continue;
        }
        done[u as usize] = true;
        settled += 1;
        if u == t {
            return Some(PathResult {
                distance: d,
                nodes: recover(&pred, s, t),
                settled,
            });
        }
        for a in g.out_arcs(u) {
            let nd = d + a.weight as u64;
            if nd < dist[a.to as usize] {
                dist[a.to as usize] = nd;
                pred[a.to as usize] = u;
                heap.push(Reverse((nd, a.to)));
            }
        }
    }
    None
}

/// Single-source all-targets distances (used by SegTable tests and the
/// property suites).
pub fn distances_from(g: &Graph, s: u32) -> Vec<u64> {
    let n = g.num_nodes();
    let mut dist = vec![u64::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[s as usize] = 0;
    heap.push(Reverse((0u64, s)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for a in g.out_arcs(u) {
            let nd = d + a.weight as u64;
            if nd < dist[a.to as usize] {
                dist[a.to as usize] = nd;
                heap.push(Reverse((nd, a.to)));
            }
        }
    }
    dist
}

/// Bounded single-source Dijkstra: distances `<= bound` only, returned as
/// `(node, distance, predecessor)` triples — the in-memory analogue of one
/// SegTable source row set, used to cross-check construction.
pub fn bounded_from(g: &Graph, s: u32, bound: u64) -> Vec<(u32, u64, u32)> {
    let n = g.num_nodes();
    let mut dist = vec![u64::MAX; n];
    let mut pred = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[s as usize] = 0;
    heap.push(Reverse((0u64, s)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for a in g.out_arcs(u) {
            let nd = d + a.weight as u64;
            if nd <= bound && nd < dist[a.to as usize] {
                dist[a.to as usize] = nd;
                pred[a.to as usize] = u;
                heap.push(Reverse((nd, a.to)));
            }
        }
    }
    (0..n as u32)
        .filter(|&u| u != s && dist[u as usize] != u64::MAX)
        .map(|u| (u, dist[u as usize], pred[u as usize]))
        .collect()
}

pub(crate) fn recover(pred: &[u32], s: u32, t: u32) -> Vec<u32> {
    let mut nodes = vec![t];
    let mut cur = t;
    while cur != s {
        cur = pred[cur as usize];
        debug_assert!(cur != u32::MAX, "broken predecessor chain");
        nodes.push(cur);
    }
    nodes.reverse();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::Graph;

    /// The Figure 1 graph of the paper (s=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7
    /// i=8 j=9 t=10).
    pub(crate) fn figure1() -> Graph {
        Graph::from_undirected_edges(
            11,
            vec![
                (0, 1, 2),
                (0, 2, 1),
                (0, 3, 6),
                (1, 4, 2),
                (2, 3, 1),
                (2, 4, 3),
                (3, 9, 7),
                (4, 6, 3),
                (4, 5, 7),
                (4, 7, 8),
                (5, 6, 4),
                (5, 8, 9),
                (6, 7, 4),
                (7, 10, 3),
                (8, 9, 2),
                (8, 10, 5),
                (9, 10, 8),
            ],
        )
    }

    #[test]
    fn figure1_s_to_t() {
        let g = figure1();
        let r = shortest_path(&g, 0, 10).unwrap();
        // δ(s,t) = 14, e.g. s->b->e->g->h->t = 2+2+3+4+3 (s->c->e ties the
        // prefix at 4, so the exact node sequence may differ).
        assert_eq!(r.distance, 14);
        assert_eq!(r.nodes.first(), Some(&0));
        assert_eq!(r.nodes.last(), Some(&10));
        let mut total = 0u64;
        for w in r.nodes.windows(2) {
            let arc = g
                .out_arcs(w[0])
                .iter()
                .filter(|a| a.to == w[1])
                .map(|a| a.weight)
                .min()
                .expect("path edge must exist");
            total += arc as u64;
        }
        assert_eq!(total, 14);
    }

    #[test]
    fn same_node_is_zero() {
        let g = figure1();
        let r = shortest_path(&g, 3, 3).unwrap();
        assert_eq!(r.distance, 0);
        assert_eq!(r.nodes, vec![3]);
    }

    #[test]
    fn unreachable_returns_none() {
        let g = Graph::from_undirected_edges(4, vec![(0, 1, 1), (2, 3, 1)]);
        assert!(shortest_path(&g, 0, 3).is_none());
    }

    #[test]
    fn distances_from_matches_pointwise() {
        let g = figure1();
        let d = distances_from(&g, 0);
        for t in 0..11u32 {
            let p = shortest_path(&g, 0, t).unwrap();
            assert_eq!(d[t as usize], p.distance, "node {t}");
        }
    }

    #[test]
    fn path_length_equals_sum_of_edge_weights() {
        let g = figure1();
        let r = shortest_path(&g, 3, 7).unwrap();
        let mut total = 0u64;
        for w in r.nodes.windows(2) {
            let arc = g
                .out_arcs(w[0])
                .iter()
                .filter(|a| a.to == w[1])
                .map(|a| a.weight)
                .min()
                .expect("path edge must exist");
            total += arc as u64;
        }
        assert_eq!(total, r.distance);
    }

    #[test]
    fn bounded_from_respects_bound() {
        let g = figure1();
        let within = bounded_from(&g, 0, 6);
        let full = distances_from(&g, 0);
        for (u, d, p) in &within {
            assert!(*d <= 6);
            assert_eq!(full[*u as usize], *d);
            assert_ne!(*p, u32::MAX);
        }
        // Everything at distance <= 6 is present.
        let present: Vec<u32> = within.iter().map(|(u, _, _)| *u).collect();
        for u in 0..11u32 {
            if u != 0 && full[u as usize] <= 6 {
                assert!(present.contains(&u), "node {u} missing");
            }
        }
    }
}
