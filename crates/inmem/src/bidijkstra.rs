//! In-memory bidirectional Dijkstra — the paper's **MBDJ** baseline.
//!
//! Forward search from `s` and backward search from `t` (over the symmetric
//! adjacency), alternating by smaller frontier head. Terminates when
//! `lf + lb >= minCost` — the same condition §4.1 of the paper installs in
//! its relational variant.

use crate::PathResult;
use fempath_graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Bidirectional Dijkstra. Returns `None` when `t` is unreachable.
pub fn shortest_path(g: &Graph, s: u32, t: u32) -> Option<PathResult> {
    if s == t {
        return Some(PathResult {
            distance: 0,
            nodes: vec![s],
            settled: 1,
        });
    }
    let n = g.num_nodes();
    let mut dist = [vec![u64::MAX; n], vec![u64::MAX; n]];
    let mut pred = [vec![u32::MAX; n], vec![u32::MAX; n]];
    let mut done = [vec![false; n], vec![false; n]];
    let mut heaps = [BinaryHeap::new(), BinaryHeap::new()];
    dist[0][s as usize] = 0;
    dist[1][t as usize] = 0;
    heaps[0].push(Reverse((0u64, s)));
    heaps[1].push(Reverse((0u64, t)));

    let mut best = u64::MAX;
    let mut meet = u32::MAX;
    let mut settled = 0u64;
    // Smallest settled distance per direction.
    let mut l = [0u64, 0u64];

    loop {
        // Pick the direction whose head is smaller (empty heap = infinite).
        let head = |h: &BinaryHeap<Reverse<(u64, u32)>>| h.peek().map(|Reverse((d, _))| *d);
        let side = match (head(&heaps[0]), head(&heaps[1])) {
            (None, None) => break,
            (Some(_), None) => 0,
            (None, Some(_)) => 1,
            (Some(a), Some(b)) => usize::from(a > b),
        };
        let Some(Reverse((d, u))) = heaps[side].pop() else {
            break;
        };
        if done[side][u as usize] {
            continue;
        }
        done[side][u as usize] = true;
        settled += 1;
        l[side] = d;
        // Termination test from §4.1: the best candidate cannot be beaten
        // once both searches have settled past it.
        if best != u64::MAX && l[0] + l[1] >= best {
            break;
        }
        for a in g.out_arcs(u) {
            let nd = d + a.weight as u64;
            if nd < dist[side][a.to as usize] {
                dist[side][a.to as usize] = nd;
                pred[side][a.to as usize] = u;
                heaps[side].push(Reverse((nd, a.to)));
            }
            // Candidate path through this arc.
            let other = 1 - side;
            if dist[other][a.to as usize] != u64::MAX {
                let cand = nd + dist[other][a.to as usize];
                if cand < best {
                    best = cand;
                    meet = a.to;
                }
            }
        }
    }

    if best == u64::MAX {
        return None;
    }
    // Stitch the two half-paths at the meeting node.
    let mut forward = crate::dijkstra::recover(&pred[0], s, meet);
    let mut cur = meet;
    while cur != t {
        cur = pred[1][cur as usize];
        forward.push(cur);
    }
    let _ = &mut forward;
    Some(PathResult {
        distance: best,
        nodes: forward,
        settled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::{generate, Graph};

    fn figure1() -> Graph {
        Graph::from_undirected_edges(
            11,
            vec![
                (0, 1, 2),
                (0, 2, 1),
                (0, 3, 6),
                (1, 4, 2),
                (2, 3, 1),
                (2, 4, 3),
                (3, 9, 7),
                (4, 6, 3),
                (4, 5, 7),
                (4, 7, 8),
                (5, 6, 4),
                (5, 8, 9),
                (6, 7, 4),
                (7, 10, 3),
                (8, 9, 2),
                (8, 10, 5),
                (9, 10, 8),
            ],
        )
    }

    #[test]
    fn matches_unidirectional_on_figure1() {
        let g = figure1();
        for s in 0..11u32 {
            for t in 0..11u32 {
                let a = crate::dijkstra::shortest_path(&g, s, t).unwrap();
                let b = shortest_path(&g, s, t).unwrap();
                assert_eq!(a.distance, b.distance, "{s}->{t}");
            }
        }
    }

    #[test]
    fn bidirectional_settles_fewer_nodes_on_big_graphs() {
        let g = generate::power_law(20_000, 3, 1..=100, 33);
        let mut uni = 0u64;
        let mut bi = 0u64;
        for (s, t) in [(0u32, 19_999u32), (5u32, 15_000u32), (123u32, 9_876u32)] {
            let a = crate::dijkstra::shortest_path(&g, s, t).unwrap();
            let b = shortest_path(&g, s, t).unwrap();
            assert_eq!(a.distance, b.distance);
            uni += a.settled;
            bi += b.settled;
        }
        assert!(
            bi < uni,
            "bidirectional should reduce search space ({bi} vs {uni})"
        );
    }

    #[test]
    fn path_is_valid_and_has_right_length() {
        let g = generate::random_graph(2000, 3, 1..=100, 17);
        for seed in 0..10u32 {
            let s = seed * 97 % 2000;
            let t = (seed * 131 + 500) % 2000;
            let (Some(a), Some(b)) = (
                crate::dijkstra::shortest_path(&g, s, t),
                shortest_path(&g, s, t),
            ) else {
                continue;
            };
            assert_eq!(a.distance, b.distance, "{s}->{t}");
            assert_eq!(b.nodes.first(), Some(&s));
            assert_eq!(b.nodes.last(), Some(&t));
            let mut total = 0u64;
            for w in b.nodes.windows(2) {
                let arc = g
                    .out_arcs(w[0])
                    .iter()
                    .filter(|x| x.to == w[1])
                    .map(|x| x.weight)
                    .min()
                    .expect("edge on path");
                total += arc as u64;
            }
            assert_eq!(total, b.distance);
        }
    }

    #[test]
    fn unreachable_none() {
        let g = Graph::from_undirected_edges(4, vec![(0, 1, 1), (2, 3, 1)]);
        assert!(shortest_path(&g, 0, 2).is_none());
    }
}
