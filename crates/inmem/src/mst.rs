//! In-memory Prim's minimal spanning tree — the oracle for the FEM-based
//! relational Prim implementation (§3.1 of the paper sketches Prim in the
//! FEM framework; `fempath-core` implements it as an extension).

use fempath_graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Runs Prim from node 0 over the component containing it. Returns the
/// chosen tree edges `(node, parent, weight)` and the total weight.
pub fn prim(g: &Graph) -> (Vec<(u32, u32, u32)>, u64) {
    let n = g.num_nodes();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![u32::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    best[0] = 0;
    heap.push(Reverse((0u32, 0u32)));
    let mut edges = Vec::new();
    let mut total = 0u64;
    while let Some(Reverse((w, u))) = heap.pop() {
        if in_tree[u as usize] {
            continue;
        }
        in_tree[u as usize] = true;
        if parent[u as usize] != u32::MAX {
            edges.push((u, parent[u as usize], w));
            total += w as u64;
        }
        for a in g.out_arcs(u) {
            if !in_tree[a.to as usize] && a.weight < best[a.to as usize] {
                best[a.to as usize] = a.weight;
                parent[a.to as usize] = u;
                heap.push(Reverse((a.weight, a.to)));
            }
        }
    }
    (edges, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_graph::{generate, Graph};

    #[test]
    fn triangle_mst() {
        let g = Graph::from_undirected_edges(3, vec![(0, 1, 1), (1, 2, 2), (0, 2, 3)]);
        let (edges, total) = prim(&g);
        assert_eq!(edges.len(), 2);
        assert_eq!(total, 3);
    }

    #[test]
    fn mst_spans_connected_graph() {
        let g = generate::power_law(500, 2, 1..=50, 3);
        let (edges, _) = prim(&g);
        assert_eq!(edges.len(), 499, "spanning tree has n-1 edges");
    }

    #[test]
    fn mst_total_is_minimal_on_small_graph() {
        // Compare against brute force over spanning trees of a 5-node graph
        // via Kruskal-equivalent greedy check: total must not exceed any
        // single alternative formed by swapping one edge.
        let g = Graph::from_undirected_edges(
            5,
            vec![
                (0, 1, 4),
                (0, 2, 2),
                (1, 2, 1),
                (1, 3, 5),
                (2, 3, 8),
                (3, 4, 3),
                (2, 4, 7),
            ],
        );
        let (_, total) = prim(&g);
        assert_eq!(total, 2 + 1 + 5 + 3); // 0-2, 2-1, 1-3, 3-4
    }
}
