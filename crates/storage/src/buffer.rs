//! Scan-resistant (two-tier, 2Q-style) buffer pool.
//!
//! All page access in the engine funnels through [`BufferPool::read_page`] /
//! [`BufferPool::write_page`]. Because both take `&mut self` and hand the
//! caller a closure-scoped borrow, a page can never be touched while another
//! page operation is in flight — which is exactly the discipline a
//! single-connection engine needs, and it removes any need for pin counts.
//!
//! Eviction uses two intrusive LRU lists over frame indices (O(1)
//! touch/promote/evict):
//!
//! * **probationary** — pages enter here on first reference. A sequential
//!   scan larger than the pool cycles through this tier only, evicting its
//!   own once-touched pages.
//! * **protected** — a probationary page that is referenced *again* is
//!   promoted here (B+tree roots, inner nodes, hot working-table pages).
//!   The tier is capped at ~5/8 of capacity; overflow demotes its LRU
//!   frame back to the probationary MRU end, giving it one more chance.
//!
//! Victims come from the probationary LRU end first, so working sets far
//! larger than memory no longer wipe the hot set (DESIGN.md §14). The
//! capacity is dynamic ([`BufferPool::set_capacity`]) so experiments can
//! sweep buffer sizes the way the paper sweeps its RDB buffer (Fig 8(b),
//! Fig 9(g)).

use crate::disk::{DiskBackend, FileDisk, MemDisk, SnapshotDisk, SnapshotPages};
use crate::error::{Result, StorageError};
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::stats::IoStats;
use std::collections::HashMap;
use std::sync::Arc;

const NIL: usize = usize::MAX;

/// Probationary tier index.
const PROB: usize = 0;
/// Protected tier index.
const PROT: usize = 1;

struct Frame {
    page: Page,
    pid: PageId,
    dirty: bool,
    tier: usize,
    prev: usize,
    next: usize,
}

/// A fixed-capacity page cache in front of a [`DiskBackend`].
pub struct BufferPool {
    disk: Box<dyn DiskBackend>,
    frames: Vec<Frame>,
    page_table: HashMap<PageId, usize>,
    /// Most-recently-used frame per tier (list heads).
    head: [usize; 2],
    /// Least-recently-used frame per tier (list tails).
    tail: [usize; 2],
    /// Number of frames currently in the protected tier.
    protected: usize,
    capacity: usize,
    stats: IoStats,
    /// Pages returned via [`BufferPool::free_page`], recycled before the
    /// disk grows. Keeps repeated temp-table churn (the paper re-creates
    /// `TVisited` per query) from bloating the database file.
    free_pages: Vec<PageId>,
}

impl BufferPool {
    /// Wraps `disk` with a pool of `capacity` page frames (min 1).
    pub fn new(disk: Box<dyn DiskBackend>, capacity: usize) -> Self {
        BufferPool {
            disk,
            frames: Vec::new(),
            page_table: HashMap::new(),
            head: [NIL; 2],
            tail: [NIL; 2],
            protected: 0,
            capacity: capacity.max(1),
            stats: IoStats::default(),
            free_pages: Vec::new(),
        }
    }

    /// A pool over an in-memory disk — handy for tests.
    pub fn in_memory(capacity: usize) -> Self {
        BufferPool::new(Box::new(MemDisk::new()), capacity)
    }

    /// A pool over an anonymous temporary file (unlinked immediately).
    pub fn temp_file(capacity: usize) -> Result<Self> {
        Ok(BufferPool::new(Box::new(FileDisk::temp()?), capacity))
    }

    /// A pool over a copy-on-write view of a frozen page image
    /// ([`SnapshotDisk`]): reads hit the shared snapshot, writes and new
    /// allocations stay private to this pool's session.
    pub fn on_snapshot(base: SnapshotPages, capacity: usize) -> Self {
        BufferPool::new(Box::new(SnapshotDisk::new(base)), capacity)
    }

    /// Flushes everything and copies the entire disk image into an
    /// immutable, `Arc`-shared page vector. The pool keeps working
    /// afterwards; the snapshot is a point-in-time image that
    /// [`BufferPool::on_snapshot`] pools can share read-only across
    /// threads (DESIGN.md §10).
    pub fn snapshot_pages(&mut self) -> Result<SnapshotPages> {
        self.flush_all()?;
        let n = self.disk.num_pages();
        let mut pages: Vec<Box<[u8; PAGE_SIZE]>> = Vec::with_capacity(n as usize);
        for i in 0..n {
            let mut buf: Box<[u8; PAGE_SIZE]> =
                vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap();
            self.disk.read_page(PageId(i), &mut buf)?;
            pages.push(buf);
        }
        Ok(Arc::new(pages))
    }

    /// Current frame capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of frames currently resident (≤ capacity).
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Number of frames currently in the protected tier.
    pub fn protected_len(&self) -> usize {
        self.protected
    }

    /// Size target for the protected tier at the current capacity.
    fn protected_target(&self) -> usize {
        (self.capacity * 5 / 8).max(1)
    }

    /// Number of pages allocated on the underlying disk.
    pub fn num_disk_pages(&self) -> u64 {
        self.disk.num_pages()
    }

    /// Resizes the pool, evicting (and flushing) victim pages if
    /// shrinking — probationary LRU frames first, then protected ones.
    pub fn set_capacity(&mut self, capacity: usize) -> Result<()> {
        self.capacity = capacity.max(1);
        while self.frames.len() > self.capacity {
            let victim = self.pick_victim()?;
            self.detach(victim);
            if self.frames[victim].tier == PROT {
                self.protected -= 1;
            } else {
                self.stats.probationary_evictions += 1;
            }
            let frame = &self.frames[victim];
            self.page_table.remove(&frame.pid);
            if frame.dirty {
                let (pid, bytes) = (frame.pid, *frame.page.bytes());
                self.disk.write_page(pid, &bytes)?;
                self.stats.disk_writes += 1;
            }
            // Swap-remove the frame, fixing up the index of the frame that
            // moved into `victim`'s slot.
            let last = self.frames.len() - 1;
            self.frames.swap_remove(victim);
            if victim != last {
                let moved_pid = self.frames[victim].pid;
                self.page_table.insert(moved_pid, victim);
                let (p, n, t) = (
                    self.frames[victim].prev,
                    self.frames[victim].next,
                    self.frames[victim].tier,
                );
                if p != NIL {
                    self.frames[p].next = victim;
                } else if self.head[t] == last {
                    self.head[t] = victim;
                }
                if n != NIL {
                    self.frames[n].prev = victim;
                } else if self.tail[t] == last {
                    self.tail[t] = victim;
                }
            }
            self.stats.evictions += 1;
        }
        // A smaller pool also means a smaller protected tier.
        self.rebalance();
        Ok(())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Zeroes all counters.
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Allocates a fresh page (zeroed) and caches it. Recycles pages
    /// released by [`BufferPool::free_page`] before growing the disk.
    pub fn allocate_page(&mut self) -> Result<PageId> {
        let (pid, recycled) = match self.free_pages.pop() {
            Some(pid) => (pid, true),
            None => (self.disk.allocate_page()?, false),
        };
        self.stats.allocations += 1;
        // Install a zeroed frame directly — no need to read it back.
        let idx = self.acquire_frame()?;
        self.frames[idx].page.bytes_mut().fill(0);
        self.frames[idx].pid = pid;
        // Recycled pages may hold stale bytes on disk; the zeroed image must
        // win if this frame is ever evicted.
        self.frames[idx].dirty = recycled;
        self.page_table.insert(pid, idx);
        self.frames[idx].tier = PROB;
        self.attach_front(PROB, idx);
        Ok(pid)
    }

    /// Returns `pid` to the allocator for reuse. The page's contents become
    /// undefined; any cached frame is dropped without flushing.
    pub fn free_page(&mut self, pid: PageId) {
        if let Some(idx) = self.page_table.remove(&pid) {
            self.detach(idx);
            if self.frames[idx].tier == PROT {
                self.protected -= 1;
            }
            self.frames[idx].dirty = false;
            self.frames[idx].pid = PageId::INVALID;
            // Park the frame at the probationary LRU end so it is the next
            // eviction victim; it holds no page, so evicting it is free.
            self.frames[idx].tier = PROB;
            self.attach_back(PROB, idx);
        }
        self.free_pages.push(pid);
    }

    /// Runs `f` over an immutable view of page `pid`.
    pub fn read_page<R>(
        &mut self,
        pid: PageId,
        f: impl FnOnce(&[u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let idx = self.fetch(pid)?;
        Ok(f(self.frames[idx].page.bytes()))
    }

    /// Runs `f` over a mutable view of page `pid`, marking it dirty.
    pub fn write_page<R>(
        &mut self,
        pid: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let idx = self.fetch(pid)?;
        self.frames[idx].dirty = true;
        Ok(f(self.frames[idx].page.bytes_mut()))
    }

    /// Writes all dirty frames back and syncs the backend.
    pub fn flush_all(&mut self) -> Result<()> {
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                let (pid, bytes) = (self.frames[i].pid, *self.frames[i].page.bytes());
                self.disk.write_page(pid, &bytes)?;
                self.stats.disk_writes += 1;
                self.frames[i].dirty = false;
            }
        }
        self.disk.sync()
    }

    /// Drops every cached page (flushing dirty ones first). Subsequent
    /// accesses are cold — used to measure cold-cache behaviour.
    pub fn clear_cache(&mut self) -> Result<()> {
        self.flush_all()?;
        self.frames.clear();
        self.page_table.clear();
        self.head = [NIL; 2];
        self.tail = [NIL; 2];
        self.protected = 0;
        Ok(())
    }

    /// Ensures `pid` is resident and returns its frame index. A hit on a
    /// probationary frame promotes it to the protected tier (its second
    /// reference proves it is not scan traffic); a hit on a protected
    /// frame refreshes its recency.
    fn fetch(&mut self, pid: PageId) -> Result<usize> {
        if let Some(&idx) = self.page_table.get(&pid) {
            self.stats.buffer_hits += 1;
            if self.frames[idx].tier == PROB {
                self.detach(idx);
                self.frames[idx].tier = PROT;
                self.attach_front(PROT, idx);
                self.protected += 1;
                self.stats.promotions += 1;
                self.rebalance();
            } else if self.head[PROT] != idx {
                self.detach(idx);
                self.attach_front(PROT, idx);
            }
            return Ok(idx);
        }
        self.stats.buffer_misses += 1;
        let idx = self.acquire_frame()?;
        {
            let frame = &mut self.frames[idx];
            self.disk.read_page(pid, frame.page.bytes_mut())?;
            frame.pid = pid;
            frame.dirty = false;
        }
        self.stats.disk_reads += 1;
        self.page_table.insert(pid, idx);
        self.frames[idx].tier = PROB;
        self.attach_front(PROB, idx);
        Ok(idx)
    }

    /// Demotes protected LRU frames until the tier is back under target.
    /// Demoted frames re-enter the probationary MRU end, so they get one
    /// more chance before eviction.
    fn rebalance(&mut self) {
        while self.protected > self.protected_target() {
            let idx = self.tail[PROT];
            debug_assert_ne!(idx, NIL);
            self.detach(idx);
            self.frames[idx].tier = PROB;
            self.attach_front(PROB, idx);
            self.protected -= 1;
            self.stats.demotions += 1;
        }
    }

    /// The next eviction victim: the probationary LRU frame, falling back
    /// to the protected LRU frame when the probationary tier is empty.
    fn pick_victim(&self) -> Result<usize> {
        if self.tail[PROB] != NIL {
            return Ok(self.tail[PROB]);
        }
        if self.tail[PROT] != NIL {
            return Ok(self.tail[PROT]);
        }
        Err(StorageError::BufferExhausted)
    }

    /// Gets an unattached frame: grows the pool when below capacity,
    /// otherwise evicts a victim (probationary first).
    fn acquire_frame(&mut self) -> Result<usize> {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                page: Page::zeroed(),
                pid: PageId::INVALID,
                dirty: false,
                tier: PROB,
                prev: NIL,
                next: NIL,
            });
            return Ok(self.frames.len() - 1);
        }
        let victim = self.pick_victim()?;
        self.detach(victim);
        if self.frames[victim].tier == PROT {
            self.protected -= 1;
        } else {
            self.stats.probationary_evictions += 1;
        }
        let frame = &self.frames[victim];
        self.page_table.remove(&frame.pid);
        if frame.dirty {
            let (pid, bytes) = (frame.pid, *frame.page.bytes());
            self.disk.write_page(pid, &bytes)?;
            self.stats.disk_writes += 1;
        }
        self.stats.evictions += 1;
        Ok(victim)
    }

    fn detach(&mut self, idx: usize) {
        let t = self.frames[idx].tier;
        let (p, n) = (self.frames[idx].prev, self.frames[idx].next);
        if p != NIL {
            self.frames[p].next = n;
        } else if self.head[t] == idx {
            self.head[t] = n;
        }
        if n != NIL {
            self.frames[n].prev = p;
        } else if self.tail[t] == idx {
            self.tail[t] = p;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    fn attach_front(&mut self, t: usize, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head[t];
        if self.head[t] != NIL {
            self.frames[self.head[t]].prev = idx;
        }
        self.head[t] = idx;
        if self.tail[t] == NIL {
            self.tail[t] = idx;
        }
    }

    fn attach_back(&mut self, t: usize, idx: usize) {
        self.frames[idx].next = NIL;
        self.frames[idx].prev = self.tail[t];
        if self.tail[t] != NIL {
            self.frames[self.tail[t]].next = idx;
        }
        self.tail[t] = idx;
        if self.head[t] == NIL {
            self.head[t] = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_same_page() {
        let mut pool = BufferPool::in_memory(4);
        let pid = pool.allocate_page().unwrap();
        pool.write_page(pid, |b| b[0] = 0x5A).unwrap();
        let v = pool.read_page(pid, |b| b[0]).unwrap();
        assert_eq!(v, 0x5A);
    }

    #[test]
    fn eviction_flushes_dirty_pages() {
        let mut pool = BufferPool::in_memory(2);
        let pids: Vec<_> = (0..4).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            pool.write_page(pid, |b| b[0] = i as u8 + 1).unwrap();
        }
        // Capacity 2, so earlier pages were evicted. Reading them must
        // bring back the written data from disk.
        for (i, &pid) in pids.iter().enumerate() {
            let v = pool.read_page(pid, |b| b[0]).unwrap();
            assert_eq!(v, i as u8 + 1, "page {i} lost its data across eviction");
        }
        assert!(pool.stats().evictions >= 2);
        assert!(pool.stats().disk_writes >= 2);
    }

    #[test]
    fn lru_keeps_hot_page() {
        let mut pool = BufferPool::in_memory(2);
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        let c = pool.allocate_page().unwrap(); // evicts a (probationary LRU)
        pool.reset_stats();
        pool.read_page(b, |_| ()).unwrap(); // hit
        pool.read_page(c, |_| ()).unwrap(); // hit
        pool.read_page(a, |_| ()).unwrap(); // miss
        let s = pool.stats();
        assert_eq!(s.buffer_hits, 2);
        assert_eq!(s.buffer_misses, 1);
    }

    #[test]
    fn second_touch_promotes_to_protected() {
        let mut pool = BufferPool::in_memory(8);
        let a = pool.allocate_page().unwrap();
        assert_eq!(pool.protected_len(), 0, "first reference is probationary");
        pool.read_page(a, |_| ()).unwrap();
        assert_eq!(pool.protected_len(), 1, "second reference promotes");
        assert_eq!(pool.stats().promotions, 1);
        pool.read_page(a, |_| ()).unwrap();
        assert_eq!(pool.stats().promotions, 1, "already protected: no-op");
    }

    #[test]
    fn scan_does_not_evict_hot_pages() {
        // Pool of 16; 4 hot pages referenced repeatedly, then a "table
        // scan" of 200 cold pages touched once each. The hot set must
        // survive in the protected tier.
        let mut pool = BufferPool::in_memory(16);
        let hot: Vec<_> = (0..4).map(|_| pool.allocate_page().unwrap()).collect();
        for &pid in &hot {
            pool.read_page(pid, |_| ()).unwrap(); // promote to protected
        }
        let cold: Vec<_> = (0..200).map(|_| pool.allocate_page().unwrap()).collect();
        pool.reset_stats();
        for &pid in &cold {
            pool.read_page(pid, |_| ()).unwrap();
        }
        let s = pool.stats();
        for &pid in &hot {
            pool.read_page(pid, |_| ()).unwrap();
        }
        let after = pool.stats();
        assert_eq!(
            after.buffer_misses, s.buffer_misses,
            "hot pages must still be resident after the scan"
        );
        assert_eq!(
            s.probationary_evictions, s.evictions,
            "the scan must evict only probationary (touched-once) frames"
        );
    }

    #[test]
    fn protected_tier_is_capped_and_demotes() {
        let mut pool = BufferPool::in_memory(8); // target = 8*5/8 = 5
        let pids: Vec<_> = (0..8).map(|_| pool.allocate_page().unwrap()).collect();
        for &pid in &pids {
            pool.read_page(pid, |_| ()).unwrap(); // all promoted
        }
        assert!(pool.protected_len() <= 5, "protected tier must stay capped");
        assert!(pool.stats().demotions >= 3);
        // Everything is still resident (no evictions — pool not over
        // capacity), just spread across tiers.
        assert_eq!(pool.stats().evictions, 0);
        pool.reset_stats();
        for &pid in &pids {
            pool.read_page(pid, |_| ()).unwrap();
        }
        assert_eq!(pool.stats().buffer_misses, 0);
    }

    #[test]
    fn hit_miss_accounting() {
        let mut pool = BufferPool::in_memory(8);
        let pid = pool.allocate_page().unwrap();
        pool.reset_stats();
        for _ in 0..10 {
            pool.read_page(pid, |_| ()).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.buffer_hits, 10);
        assert_eq!(s.buffer_misses, 0);
        assert_eq!(s.disk_reads, 0);
    }

    #[test]
    fn shrink_capacity_evicts_and_preserves_data() {
        let mut pool = BufferPool::in_memory(8);
        let pids: Vec<_> = (0..8).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            pool.write_page(pid, |b| b[1] = 10 + i as u8).unwrap();
        }
        pool.set_capacity(2).unwrap();
        for (i, &pid) in pids.iter().enumerate() {
            let v = pool.read_page(pid, |b| b[1]).unwrap();
            assert_eq!(v, 10 + i as u8);
        }
    }

    #[test]
    fn shrink_mid_workload_prefers_probationary_victims() {
        // A hot protected set plus a tail of touched-once pages; shrinking
        // mid-workload must evict cleanly (no leaked frames, consistent
        // counters), taking probationary frames first so the hot set
        // survives the resize.
        let mut pool = BufferPool::in_memory(16);
        let hot: Vec<_> = (0..5).map(|_| pool.allocate_page().unwrap()).collect();
        for &pid in &hot {
            pool.read_page(pid, |_| ()).unwrap(); // second touch: protected
        }
        let cold: Vec<_> = (0..11).map(|_| pool.allocate_page().unwrap()).collect();
        assert_eq!(pool.resident(), 16);
        pool.reset_stats();

        pool.set_capacity(8).unwrap();
        let s = pool.stats();
        assert_eq!(
            pool.resident(),
            8,
            "shrink must release exactly the excess frames"
        );
        assert_eq!(pool.capacity(), 8);
        assert_eq!(s.evictions, 8);
        assert_eq!(
            s.probationary_evictions, 8,
            "all victims must come from the probationary tier while it has frames"
        );
        assert!(pool.protected_len() <= pool.capacity());

        // The protected hot set survived; the workload continues unharmed.
        pool.reset_stats();
        for &pid in &hot {
            pool.read_page(pid, |_| ()).unwrap();
        }
        assert_eq!(
            pool.stats().buffer_misses,
            0,
            "hot set must survive the shrink"
        );
        for &pid in &cold {
            pool.read_page(pid, |b| b[0]).unwrap();
        }
        assert_eq!(
            pool.resident(),
            pool.capacity(),
            "no frames leaked past the new cap"
        );
    }

    #[test]
    fn clear_cache_forces_cold_reads() {
        let mut pool = BufferPool::in_memory(8);
        let pid = pool.allocate_page().unwrap();
        pool.write_page(pid, |b| b[2] = 9).unwrap();
        pool.clear_cache().unwrap();
        pool.reset_stats();
        let v = pool.read_page(pid, |b| b[2]).unwrap();
        assert_eq!(v, 9);
        assert_eq!(pool.stats().buffer_misses, 1);
        assert_eq!(pool.stats().disk_reads, 1);
    }

    #[test]
    fn temp_file_pool_works() {
        let mut pool = BufferPool::temp_file(2).unwrap();
        let pids: Vec<_> = (0..5).map(|_| pool.allocate_page().unwrap()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            pool.write_page(pid, |b| b[0] = i as u8).unwrap();
        }
        for (i, &pid) in pids.iter().enumerate() {
            assert_eq!(pool.read_page(pid, |b| b[0]).unwrap(), i as u8);
        }
    }

    #[test]
    fn stress_random_access_many_pages() {
        let mut pool = BufferPool::in_memory(3);
        let n = 50;
        let pids: Vec<_> = (0..n).map(|_| pool.allocate_page().unwrap()).collect();
        // Deterministic pseudo-random access pattern.
        let mut x = 12345u64;
        for step in 0..2000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (x >> 33) as usize % n;
            if step % 3 == 0 {
                pool.write_page(pids[i], |b| {
                    b[3] = b[3].wrapping_add(1);
                })
                .unwrap();
            } else {
                pool.read_page(pids[i], |_| ()).unwrap();
            }
        }
        // Every page still readable; both LRU lists intact.
        for &pid in &pids {
            pool.read_page(pid, |_| ()).unwrap();
        }
        assert_eq!(pool.resident(), pool.capacity());
        assert!(pool.protected_len() <= pool.capacity());
    }
}
