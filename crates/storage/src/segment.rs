//! Compressed adjacency segments: delta-encoded, varint-packed edge runs.
//!
//! A *segment* packs a sorted run of graph edges `(fid, tid, cost)` into a
//! compact byte blob that lives as a single B+tree value. Edges are sorted
//! by `(fid, tid, cost)` and encoded as zigzag-varint deltas:
//!
//! ```text
//! [count: varint]
//! per edge:
//!   [dfid:  zigzag varint]   fid  - prev_fid   (prev_fid starts at 0)
//!   [dtid:  zigzag varint]   tid  - prev_tid   (prev_tid resets to 0
//!                                               whenever fid changes)
//!   [cost:  zigzag varint]   absolute cost (small weights ⇒ 1 byte)
//! ```
//!
//! Because adjacency lists cluster consecutive node ids, the common edge
//! costs 3 bytes instead of the 29 bytes of a tagged row — and decoding
//! appends straight into a columnar [`Chunk`], so FEM
//! expansion joins never materialize per-row `Vec<Value>`s (DESIGN.md §14).
//!
//! Segments are sized to fit a B+tree leaf cell: at most [`SEG_MAX_EDGES`]
//! edges and [`SEG_MAX_BYTES`] encoded bytes, whichever is hit first.

use crate::chunk::Chunk;
use crate::error::{Result, StorageError};

/// Maximum edges per segment. Kept below a chunk's capacity so one decoded
/// segment always fits in the current batch.
pub const SEG_MAX_EDGES: usize = 256;

/// Maximum encoded bytes per segment. Leaves headroom under the B+tree's
/// `MAX_CELL_PAYLOAD` (2036 bytes) for the segment's key.
pub const SEG_MAX_BYTES: usize = 1400;

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

#[inline]
fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| StorageError::Corrupt("truncated segment varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(StorageError::Corrupt("segment varint overflow".into()));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encodes a run of edges into one segment blob. The input need not be
/// sorted — the encoder sorts a copy by `(fid, tid, cost)`; duplicates are
/// preserved (multiset semantics).
///
/// Panics in debug builds if the run exceeds [`SEG_MAX_EDGES`]; use
/// [`SegmentWriter`] to split an arbitrary stream into valid segments.
pub fn encode_edge_segment(edges: &[(i64, i64, i64)]) -> Vec<u8> {
    debug_assert!(edges.len() <= SEG_MAX_EDGES);
    let mut sorted: Vec<(i64, i64, i64)> = edges.to_vec();
    sorted.sort_unstable();
    let mut out = Vec::with_capacity(2 + sorted.len() * 3);
    put_varint(&mut out, sorted.len() as u64);
    let mut prev_fid = 0i64;
    let mut prev_tid = 0i64;
    for &(fid, tid, cost) in &sorted {
        put_varint(&mut out, zigzag(fid.wrapping_sub(prev_fid)));
        if fid != prev_fid {
            prev_tid = 0;
        }
        put_varint(&mut out, zigzag(tid.wrapping_sub(prev_tid)));
        put_varint(&mut out, zigzag(cost));
        prev_fid = fid;
        prev_tid = tid;
    }
    out
}

/// Number of edges in an encoded segment without decoding the payload.
pub fn segment_edge_count(blob: &[u8]) -> Result<usize> {
    let mut pos = 0usize;
    Ok(get_varint(blob, &mut pos)? as usize)
}

/// Decodes a segment, invoking `f(fid, tid, cost)` per edge in sorted
/// order.
pub fn decode_edge_segment_with(blob: &[u8], mut f: impl FnMut(i64, i64, i64)) -> Result<()> {
    let mut pos = 0usize;
    let count = get_varint(blob, &mut pos)? as usize;
    let mut prev_fid = 0i64;
    let mut prev_tid = 0i64;
    for _ in 0..count {
        let fid = prev_fid.wrapping_add(unzigzag(get_varint(blob, &mut pos)?));
        if fid != prev_fid {
            prev_tid = 0;
        }
        let tid = prev_tid.wrapping_add(unzigzag(get_varint(blob, &mut pos)?));
        let cost = unzigzag(get_varint(blob, &mut pos)?);
        f(fid, tid, cost);
        prev_fid = fid;
        prev_tid = tid;
    }
    if pos != blob.len() {
        return Err(StorageError::Corrupt("trailing bytes after segment".into()));
    }
    Ok(())
}

/// Decodes a segment into a `Vec` of edges.
pub fn decode_edge_segment(blob: &[u8]) -> Result<Vec<(i64, i64, i64)>> {
    let mut out = Vec::new();
    decode_edge_segment_with(blob, |f, t, c| out.push((f, t, c)))?;
    Ok(out)
}

/// Decodes a segment straight into a 3-column integer [`Chunk`]
/// (`fid, tid, cost`), appending one committed row per edge. The chunk's
/// width is fixed to 3 on first use.
pub fn decode_edge_segment_into_chunk(blob: &[u8], chunk: &mut Chunk) -> Result<usize> {
    if chunk.is_empty() && chunk.width() != 3 {
        chunk.set_width(3);
    }
    if chunk.width() != 3 {
        return Err(StorageError::Corrupt(
            "segment chunk must be 3 columns wide".into(),
        ));
    }
    let mut n = 0usize;
    decode_edge_segment_with(blob, |fid, tid, cost| {
        chunk.col_mut(0).push_int(fid);
        chunk.col_mut(1).push_int(tid);
        chunk.col_mut(2).push_int(cost);
        chunk.commit_row();
        n += 1;
    })?;
    Ok(n)
}

/// Splits a sorted edge stream into maximal valid segments.
///
/// Edges must be pushed in non-decreasing `(fid, tid, cost)` order; each
/// completed segment is handed to the sink together with the `(first_fid,
/// last_fid)` span it covers. Segments close when they reach
/// [`SEG_MAX_EDGES`] edges or when appending another edge would push the
/// encoded blob past [`SEG_MAX_BYTES`] — every emitted blob therefore fits
/// both caps exactly.
pub struct SegmentWriter<F: FnMut(i64, i64, Vec<u8>) -> Result<()>> {
    buf: Vec<(i64, i64, i64)>,
    /// Exact encoded size of the buffered edges (excluding the count
    /// header), maintained incrementally as edges are pushed.
    payload_bytes: usize,
    sink: F,
}

/// Exact encoded size of one edge given the `(fid, tid)` of the edge
/// preceding it in the segment (`None` for the segment's first edge). The
/// writer's sorted-input contract makes this match [`encode_edge_segment`]
/// byte for byte.
#[inline]
fn edge_encoded_len(prev: Option<(i64, i64)>, fid: i64, tid: i64, cost: i64) -> usize {
    let (prev_fid, prev_tid) = prev.unwrap_or((0, 0));
    let base_tid = if fid != prev_fid { 0 } else { prev_tid };
    varint_len(zigzag(fid.wrapping_sub(prev_fid)))
        + varint_len(zigzag(tid.wrapping_sub(base_tid)))
        + varint_len(zigzag(cost))
}

impl<F: FnMut(i64, i64, Vec<u8>) -> Result<()>> SegmentWriter<F> {
    /// A writer feeding completed segments to `sink(first_fid, last_fid,
    /// blob)`.
    pub fn new(sink: F) -> Self {
        SegmentWriter {
            buf: Vec::with_capacity(SEG_MAX_EDGES),
            payload_bytes: 0,
            sink,
        }
    }

    /// Appends one edge; may flush a completed segment to the sink.
    pub fn push(&mut self, fid: i64, tid: i64, cost: i64) -> Result<()> {
        debug_assert!(
            self.buf.last().is_none_or(|&last| last <= (fid, tid, cost)),
            "SegmentWriter input must be sorted"
        );
        let prev = self.buf.last().map(|&(f, t, _)| (f, t));
        let mut add = edge_encoded_len(prev, fid, tid, cost);
        let header = varint_len((self.buf.len() + 1) as u64);
        if !self.buf.is_empty() && header + self.payload_bytes + add > SEG_MAX_BYTES {
            self.flush()?;
            add = edge_encoded_len(None, fid, tid, cost);
        }
        self.buf.push((fid, tid, cost));
        self.payload_bytes += add;
        if self.buf.len() >= SEG_MAX_EDGES {
            self.flush()?;
        }
        Ok(())
    }

    /// Flushes any buffered edges as a final (possibly short) segment.
    pub fn flush(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let first_fid = self.buf.first().unwrap().0;
        let last_fid = self.buf.last().unwrap().0;
        let blob = encode_edge_segment(&self.buf);
        debug_assert_eq!(
            blob.len(),
            varint_len(self.buf.len() as u64) + self.payload_bytes,
            "incremental size tracking diverged from the encoder"
        );
        self.buf.clear();
        self.payload_bytes = 0;
        (self.sink)(first_fid, last_fid, blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0, 1, -1, 42, -42, i64::MAX, i64::MIN, i64::MAX - 1] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn empty_segment_roundtrips() {
        let blob = encode_edge_segment(&[]);
        assert_eq!(segment_edge_count(&blob).unwrap(), 0);
        assert_eq!(decode_edge_segment(&blob).unwrap(), vec![]);
    }

    #[test]
    fn single_edge_roundtrips() {
        let edges = vec![(7, 9, 3)];
        let blob = encode_edge_segment(&edges);
        assert_eq!(decode_edge_segment(&blob).unwrap(), edges);
    }

    #[test]
    fn unsorted_input_decodes_sorted() {
        let edges = vec![(5, 2, 1), (1, 9, 4), (5, 1, 2), (1, 9, 4)];
        let blob = encode_edge_segment(&edges);
        let mut expect = edges.clone();
        expect.sort_unstable();
        assert_eq!(decode_edge_segment(&blob).unwrap(), expect);
    }

    #[test]
    fn adjacency_run_compresses_well() {
        // A realistic run: consecutive fids, small tids/costs.
        let edges: Vec<(i64, i64, i64)> = (0..SEG_MAX_EDGES as i64)
            .map(|i| (i / 4, i % 97, 1 + i % 10))
            .collect();
        let blob = encode_edge_segment(&edges);
        // 3 bytes/edge typical; allow slack but stay far below row cost.
        assert!(blob.len() < edges.len() * 4, "blob {} bytes", blob.len());
        let mut expect = edges.clone();
        expect.sort_unstable();
        assert_eq!(decode_edge_segment(&blob).unwrap(), expect);
    }

    #[test]
    fn weight_extremes_roundtrip() {
        let edges = vec![
            (0, 0, i64::MIN),
            (0, 1, i64::MAX),
            (i64::MAX, i64::MIN, 0),
            (i64::MIN, 5, -1),
        ];
        let blob = encode_edge_segment(&edges);
        let mut expect = edges.clone();
        expect.sort_unstable();
        assert_eq!(decode_edge_segment(&blob).unwrap(), expect);
    }

    #[test]
    fn decode_into_chunk_matches_vec_decode() {
        let edges: Vec<(i64, i64, i64)> = (0..40).map(|i| (i % 5, i * 3, i)).collect();
        let blob = encode_edge_segment(&edges);
        let mut chunk = Chunk::with_width(3);
        let n = decode_edge_segment_into_chunk(&blob, &mut chunk).unwrap();
        assert_eq!(n, edges.len());
        let via_vec = decode_edge_segment(&blob).unwrap();
        assert_eq!(chunk.len(), via_vec.len());
        for (r, &(f, t, c)) in via_vec.iter().enumerate() {
            assert_eq!(chunk.get(0, r).as_i64(), Some(f));
            assert_eq!(chunk.get(1, r).as_i64(), Some(t));
            assert_eq!(chunk.get(2, r).as_i64(), Some(c));
        }
    }

    #[test]
    fn truncated_blob_is_error() {
        let blob = encode_edge_segment(&[(1, 2, 3), (4, 5, 6)]);
        assert!(decode_edge_segment(&blob[..blob.len() - 1]).is_err());
    }

    #[test]
    fn trailing_garbage_is_error() {
        let mut blob = encode_edge_segment(&[(1, 2, 3)]);
        blob.push(0x00);
        assert!(decode_edge_segment(&blob).is_err());
    }

    #[test]
    fn writer_splits_and_preserves_stream() {
        let edges: Vec<(i64, i64, i64)> = (0..1000).map(|i| (i / 50, i % 50, 1)).collect();
        let mut segs: Vec<(i64, i64, Vec<u8>)> = Vec::new();
        let mut w = SegmentWriter::new(|lo, hi, blob| {
            segs.push((lo, hi, blob));
            Ok(())
        });
        for &(f, t, c) in &edges {
            w.push(f, t, c).unwrap();
        }
        w.flush().unwrap();
        assert!(segs.len() >= edges.len() / SEG_MAX_EDGES);
        let mut decoded = Vec::new();
        for (lo, hi, blob) in &segs {
            let part = decode_edge_segment(blob).unwrap();
            assert_eq!(part.first().unwrap().0, *lo);
            assert_eq!(part.last().unwrap().0, *hi);
            assert!(blob.len() <= SEG_MAX_BYTES);
            assert!(part.len() <= SEG_MAX_EDGES);
            decoded.extend(part);
        }
        assert_eq!(decoded, edges);
    }
}
