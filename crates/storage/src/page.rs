//! Fixed-size pages, the unit of disk I/O and buffering.

use std::fmt;

/// Size of every page in bytes. 8 KiB matches common RDBMS defaults
/// (PostgreSQL uses 8 KiB; the paper's DBMS-x likewise pages its tables).
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within a disk backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel meaning "no page" (used e.g. for B+tree leaf chaining).
    pub const INVALID: PageId = PageId(u64::MAX);

    /// Returns true unless this is the [`PageId::INVALID`] sentinel.
    pub fn is_valid(self) -> bool {
        self != PageId::INVALID
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "page#{}", self.0)
        } else {
            write!(f, "page#invalid")
        }
    }
}

/// An in-memory page image.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        }
    }

    /// Immutable view of the raw bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable view of the raw bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            data: Box::new(*self.data),
        }
    }
}

/// Little-endian scalar accessors used by the slotted-page and B+tree
/// layouts. Offsets are asserted in debug builds only; layout code is
/// responsible for staying in bounds.
pub mod codec {
    /// Reads a `u16` at `off`.
    #[inline]
    pub fn get_u16(buf: &[u8], off: usize) -> u16 {
        u16::from_le_bytes([buf[off], buf[off + 1]])
    }

    /// Writes a `u16` at `off`.
    #[inline]
    pub fn put_u16(buf: &mut [u8], off: usize, v: u16) {
        buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u32` at `off`.
    #[inline]
    pub fn get_u32(buf: &[u8], off: usize) -> u32 {
        u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
    }

    /// Writes a `u32` at `off`.
    #[inline]
    pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
        buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a `u64` at `off`.
    #[inline]
    pub fn get_u64(buf: &[u8], off: usize) -> u64 {
        u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
    }

    /// Writes a `u64` at `off`.
    #[inline]
    pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
        buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_all_zero() {
        let p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn codec_roundtrip() {
        let mut p = Page::zeroed();
        codec::put_u16(p.bytes_mut(), 0, 0xBEEF);
        codec::put_u32(p.bytes_mut(), 2, 0xDEADBEEF);
        codec::put_u64(p.bytes_mut(), 6, u64::MAX - 7);
        assert_eq!(codec::get_u16(p.bytes(), 0), 0xBEEF);
        assert_eq!(codec::get_u32(p.bytes(), 2), 0xDEADBEEF);
        assert_eq!(codec::get_u64(p.bytes(), 6), u64::MAX - 7);
    }

    #[test]
    fn invalid_page_id() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
        assert_eq!(format!("{}", PageId(3)), "page#3");
    }
}
