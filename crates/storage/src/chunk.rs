//! Typed columnar batches (`Chunk`) — the unit of batch-at-a-time
//! execution.
//!
//! A [`Chunk`] holds up to ~[`CHUNK_CAPACITY`] rows as column vectors. The
//! all-integer case — every FEM working table — is stored as a dense
//! `Vec<i64>` plus a [`NullMask`] bitmap, so downstream operators (filters,
//! arithmetic, joins, aggregation) run tight typed loops with no per-cell
//! enum dispatch. Columns that ever see a non-integer value fall back to a
//! generic [`Value`] vector; the fallback is per column, so a mixed table
//! still vectorizes its integer columns (DESIGN.md §11).
//!
//! Chunks are reusable: [`Chunk::reset`] clears the data but keeps both the
//! allocations and each column's representation (a column demoted to
//! generic stays generic, avoiding re-promotion churn across batches).

use crate::value::Value;

/// Target rows per batch. Chosen so an 8-column integer chunk (~64 KiB)
/// stays L2-resident while amortizing per-batch overhead.
pub const CHUNK_CAPACITY: usize = 1024;

/// A validity bitmap: bit set ⇒ the row is NULL.
#[derive(Debug, Clone, Default)]
pub struct NullMask {
    words: Vec<u64>,
    len: usize,
    set: usize,
}

impl NullMask {
    /// An empty mask.
    pub fn new() -> NullMask {
        NullMask::default()
    }

    /// A mask of `len` rows, none of them NULL.
    pub fn all_valid(len: usize) -> NullMask {
        NullMask {
            words: vec![0; len.div_ceil(64)],
            len,
            set: 0,
        }
    }

    /// Number of rows tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one row's validity.
    pub fn push(&mut self, is_null: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if is_null {
            self.words[word] |= 1u64 << (self.len % 64);
            self.set += 1;
        }
        self.len += 1;
    }

    /// Whether row `i` is NULL.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Marks an already-tracked row `i` as NULL.
    #[inline]
    pub fn set_null(&mut self, i: usize) {
        debug_assert!(i < self.len);
        let bit = 1u64 << (i % 64);
        if self.words[i / 64] & bit == 0 {
            self.words[i / 64] |= bit;
            self.set += 1;
        }
    }

    /// True when at least one row is NULL.
    #[inline]
    pub fn any(&self) -> bool {
        self.set > 0
    }

    /// Number of NULL rows.
    pub fn count(&self) -> usize {
        self.set
    }

    /// Clears the mask, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
        self.set = 0;
    }
}

/// One column of a [`Chunk`]: dense integers with a null bitmap, or the
/// generic fallback.
#[derive(Debug, Clone)]
pub enum Column {
    /// Integer column; `nulls.get(i)` ⇒ `vals[i]` is a placeholder 0.
    Int { vals: Vec<i64>, nulls: NullMask },
    /// Any non-integer (or mixed) column.
    Generic(Vec<Value>),
}

impl Default for Column {
    fn default() -> Self {
        Column::new_int()
    }
}

impl Column {
    /// A fresh (optimistically integer-typed) column.
    pub fn new_int() -> Column {
        Column::Int {
            vals: Vec::new(),
            nulls: NullMask::new(),
        }
    }

    /// A fresh generic column.
    pub fn new_generic() -> Column {
        Column::Generic(Vec::new())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int { vals, .. } => vals.len(),
            Column::Generic(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Demotes an integer column to the generic representation in place.
    fn demote(&mut self) {
        if let Column::Int { vals, nulls } = self {
            let out: Vec<Value> = vals
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    if nulls.get(i) {
                        Value::Null
                    } else {
                        Value::Int(v)
                    }
                })
                .collect();
            *self = Column::Generic(out);
        }
    }

    /// Appends a known-integer value (the typed hot path).
    #[inline]
    pub fn push_int(&mut self, v: i64) {
        match self {
            Column::Int { vals, nulls } => {
                vals.push(v);
                nulls.push(false);
            }
            Column::Generic(g) => g.push(Value::Int(v)),
        }
    }

    /// Appends a NULL.
    #[inline]
    pub fn push_null(&mut self) {
        match self {
            Column::Int { vals, nulls } => {
                vals.push(0);
                nulls.push(true);
            }
            Column::Generic(g) => g.push(Value::Null),
        }
    }

    /// Appends any value, demoting to generic when it is not Int/Null.
    pub fn push(&mut self, v: Value) {
        match v {
            Value::Int(i) => self.push_int(i),
            Value::Null => self.push_null(),
            other => {
                self.demote();
                match self {
                    Column::Generic(g) => g.push(other),
                    Column::Int { .. } => unreachable!("just demoted"),
                }
            }
        }
    }

    /// Value at row `i` (clones text).
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        match self {
            Column::Int { vals, nulls } => {
                if nulls.get(i) {
                    Value::Null
                } else {
                    Value::Int(vals[i])
                }
            }
            Column::Generic(v) => v[i].clone(),
        }
    }

    /// Whether row `i` is NULL (no value clone).
    #[inline]
    pub fn is_null_at(&self, i: usize) -> bool {
        match self {
            Column::Int { nulls, .. } => nulls.get(i),
            Column::Generic(v) => v[i].is_null(),
        }
    }

    /// Clears the data, keeping allocations and the representation.
    pub fn clear(&mut self) {
        match self {
            Column::Int { vals, nulls } => {
                vals.clear();
                nulls.clear();
            }
            Column::Generic(v) => v.clear(),
        }
    }

    /// A new column holding `self[i]` for each `i` in `idx`.
    pub fn gather(&self, idx: &[u32]) -> Column {
        match self {
            Column::Int { vals, nulls } => {
                let mut out_vals = Vec::with_capacity(idx.len());
                let mut out_nulls = NullMask::new();
                if nulls.any() {
                    for &i in idx {
                        out_vals.push(vals[i as usize]);
                        out_nulls.push(nulls.get(i as usize));
                    }
                } else {
                    for &i in idx {
                        out_vals.push(vals[i as usize]);
                        out_nulls.push(false);
                    }
                }
                Column::Int {
                    vals: out_vals,
                    nulls: out_nulls,
                }
            }
            Column::Generic(v) => {
                Column::Generic(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }
}

/// A batch of rows in columnar layout. `len` is authoritative — a chunk
/// may have zero columns but a positive row count (`SELECT` without FROM).
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    cols: Vec<Column>,
    len: usize,
}

impl Chunk {
    /// An empty chunk with no columns yet (columns appear with the first
    /// pushed row).
    pub fn new() -> Chunk {
        Chunk::default()
    }

    /// An empty chunk with `width` pre-created integer-typed columns.
    pub fn with_width(width: usize) -> Chunk {
        Chunk {
            cols: (0..width).map(|_| Column::new_int()).collect(),
            len: 0,
        }
    }

    /// Builds a chunk directly from columns (all must share one length).
    pub fn from_columns(cols: Vec<Column>, len: usize) -> Chunk {
        debug_assert!(cols.iter().all(|c| c.len() == len));
        Chunk { cols, len }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Column `c`.
    #[inline]
    pub fn col(&self, c: usize) -> &Column {
        &self.cols[c]
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// Mutable column `c` — used with [`Chunk::commit_row`] by decoders
    /// that append cell-by-cell. If the caller errors between `col_mut`
    /// pushes and `commit_row`, the chunk is left inconsistent and must be
    /// discarded (statement errors abort the batch anyway).
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut Column {
        &mut self.cols[c]
    }

    /// Completes one row appended cell-by-cell through [`Chunk::col_mut`].
    #[inline]
    pub fn commit_row(&mut self) {
        debug_assert!(self.cols.iter().all(|c| c.len() == self.len + 1));
        self.len += 1;
    }

    /// Value at `(col, row)`.
    #[inline]
    pub fn get(&self, c: usize, r: usize) -> Value {
        self.cols[c].get(r)
    }

    /// Clears all rows, keeping column allocations and representations.
    pub fn reset(&mut self) {
        for c in &mut self.cols {
            c.clear();
        }
        self.len = 0;
    }

    /// Clears the chunk for reuse by an *unrelated* consumer: row data is
    /// dropped, integer columns keep their allocations, and columns that
    /// were demoted to generic revert to the typed representation (the
    /// stickiness that is right within one scan would pessimize the next
    /// borrower).
    pub fn reset_for_reuse(&mut self) {
        for c in &mut self.cols {
            if matches!(c, Column::Generic(_)) {
                *c = Column::new_int();
            } else {
                c.clear();
            }
        }
        self.len = 0;
    }

    /// Ensures the chunk has exactly `width` columns (creating
    /// integer-typed ones); only valid while the chunk is empty.
    pub fn set_width(&mut self, width: usize) {
        debug_assert_eq!(self.len, 0, "cannot reshape a non-empty chunk");
        self.cols.resize_with(width, Column::new_int);
    }

    /// Appends one row. The first row fixes the width; later rows must
    /// match it.
    pub fn push_row(&mut self, row: &[Value]) {
        if self.len == 0 && self.cols.len() != row.len() {
            self.set_width(row.len());
        }
        debug_assert_eq!(self.cols.len(), row.len(), "row arity mismatch");
        for (c, v) in self.cols.iter_mut().zip(row) {
            c.push(v.clone());
        }
        self.len += 1;
    }

    /// Appends an empty row to a zero-column chunk.
    pub fn push_empty_row(&mut self) {
        debug_assert!(self.cols.is_empty());
        self.len += 1;
    }

    /// Materializes row `r` as values.
    pub fn row(&self, r: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.get(r)).collect()
    }

    /// Materializes every row (the row-at-a-time boundary).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len).map(|r| self.row(r)).collect()
    }

    /// Appends the rows of `other` selected by `idx`.
    pub fn append_gather(&mut self, other: &Chunk, idx: &[u32]) {
        if self.len == 0 && self.cols.len() != other.cols.len() {
            self.set_width(other.cols.len());
        }
        debug_assert_eq!(self.cols.len(), other.cols.len());
        for (dst, src) in self.cols.iter_mut().zip(&other.cols) {
            for &i in idx {
                dst.push(src.get(i as usize));
            }
        }
        self.len += idx.len();
    }

    /// A new chunk holding the rows selected by `idx` (column-wise gather).
    pub fn gather(&self, idx: &[u32]) -> Chunk {
        Chunk {
            cols: self.cols.iter().map(|c| c.gather(idx)).collect(),
            len: idx.len(),
        }
    }

    /// Appends one extra column (must match the row count).
    pub fn push_column(&mut self, col: Column) {
        debug_assert_eq!(col.len(), self.len);
        self.cols.push(col);
    }

    /// Replaces column `i` (must match the row count).
    pub fn set_column(&mut self, i: usize, col: Column) {
        debug_assert_eq!(col.len(), self.len);
        self.cols[i] = col;
    }

    /// Appends all rows of `other` (vertical concatenation).
    pub fn append(&mut self, other: &Chunk) {
        let idx: Vec<u32> = (0..other.len() as u32).collect();
        self.append_gather(other, &idx);
    }

    /// Horizontal concatenation: `self`'s columns followed by `other`'s.
    /// Both must hold the same number of rows.
    pub fn hcat(mut self, other: Chunk) -> Chunk {
        debug_assert_eq!(self.len, other.len);
        self.cols.extend(other.cols);
        self
    }
}

/// Builds a chunk from materialized rows.
pub fn chunk_from_rows(rows: &[Vec<Value>]) -> Chunk {
    let mut c = Chunk::new();
    for row in rows {
        c.push_row(row);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_mask_tracks_bits() {
        let mut m = NullMask::new();
        for i in 0..130 {
            m.push(i % 3 == 0);
        }
        assert_eq!(m.len(), 130);
        assert!(m.any());
        for i in 0..130 {
            assert_eq!(m.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(m.count(), (0..130).filter(|i| i % 3 == 0).count());
        m.clear();
        assert!(!m.any());
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn int_column_roundtrip_with_nulls() {
        let mut c = Column::new_int();
        c.push(Value::Int(7));
        c.push(Value::Null);
        c.push_int(-3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(7));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(-3));
        assert!(c.is_null_at(1) && !c.is_null_at(0));
        assert!(matches!(c, Column::Int { .. }));
    }

    #[test]
    fn text_push_demotes_preserving_prior_rows() {
        let mut c = Column::new_int();
        c.push(Value::Int(1));
        c.push(Value::Null);
        c.push(Value::Text("x".into()));
        c.push(Value::Float(2.5));
        assert!(matches!(c, Column::Generic(_)));
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Text("x".into()));
        assert_eq!(c.get(3), Value::Float(2.5));
        // Demoted columns stay generic across clear (sticky representation).
        c.clear();
        assert!(matches!(c, Column::Generic(_)));
    }

    #[test]
    fn chunk_push_rows_and_gather() {
        let mut ch = Chunk::new();
        for i in 0..10i64 {
            ch.push_row(&[Value::Int(i), Value::Int(i * 2)]);
        }
        assert_eq!(ch.len(), 10);
        assert_eq!(ch.width(), 2);
        let g = ch.gather(&[1, 3, 9]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.get(1, 2), Value::Int(18));
        let rows = g.to_rows();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn chunk_reset_keeps_width() {
        let mut ch = Chunk::new();
        ch.push_row(&[Value::Int(1)]);
        ch.reset();
        assert_eq!(ch.len(), 0);
        assert_eq!(ch.width(), 1);
        ch.push_row(&[Value::Int(2)]);
        assert_eq!(ch.get(0, 0), Value::Int(2));
    }

    #[test]
    fn zero_column_chunk_counts_rows() {
        let mut ch = Chunk::new();
        ch.push_empty_row();
        ch.push_empty_row();
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.width(), 0);
        assert_eq!(ch.row(0), Vec::<Value>::new());
    }

    #[test]
    fn append_gather_concatenates() {
        let mut a = Chunk::new();
        a.push_row(&[Value::Int(1)]);
        let mut b = Chunk::new();
        for i in 10..20i64 {
            b.push_row(&[Value::Int(i)]);
        }
        a.append_gather(&b, &[0, 5]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(0, 1), Value::Int(10));
        assert_eq!(a.get(0, 2), Value::Int(15));
    }
}
