//! Raw B+tree node layout over a page image.
//!
//! ```text
//! offset  field
//! 0       node type: 1 = leaf, 2 = interior
//! 1       (reserved)
//! 2..4    cell count               (u16)
//! 4..6    cell area start offset   (u16, cells grow downward)
//! 6..8    dead cell bytes          (u16, reclaimable by compaction)
//! 8..16   leaf: next-leaf page id / interior: leftmost child page id
//! 16..    slot directory: u16 cell offset per cell, sorted by key
//! ```
//!
//! Leaf cell:      `[u16 klen][u16 vlen][key][value]`
//! Interior cell:  `[u16 klen][key][u64 child-page-id]`
//!
//! Interior fan-out semantics: keys below `key(0)` descend into the leftmost
//! child; keys in `[key(i), key(i+1))` descend into `child(i)`; keys at or
//! above the last key descend into the last child.

use crate::page::{codec, PAGE_SIZE};

pub const TYPE_LEAF: u8 = 1;
pub const TYPE_INTERIOR: u8 = 2;

const OFF_TYPE: usize = 0;
const OFF_NUM: usize = 2;
const OFF_CELL_START: usize = 4;
const OFF_DEAD: usize = 6;
const OFF_LINK: usize = 8; // next leaf / leftmost child
pub const HDR_SIZE: usize = 16;
const SLOT_SIZE: usize = 2;

/// Largest key+value payload a single cell may carry. Bounded so that every
/// node fits at least four cells, keeping splits well defined.
pub const MAX_CELL_PAYLOAD: usize = (PAGE_SIZE - HDR_SIZE) / 4 - 8;

pub type Buf = [u8; PAGE_SIZE];

pub fn init_leaf(buf: &mut Buf) {
    buf[OFF_TYPE] = TYPE_LEAF;
    codec::put_u16(buf, OFF_NUM, 0);
    codec::put_u16(buf, OFF_CELL_START, PAGE_SIZE as u16);
    codec::put_u16(buf, OFF_DEAD, 0);
    codec::put_u64(buf, OFF_LINK, u64::MAX);
}

pub fn init_interior(buf: &mut Buf, leftmost_child: u64) {
    buf[OFF_TYPE] = TYPE_INTERIOR;
    codec::put_u16(buf, OFF_NUM, 0);
    codec::put_u16(buf, OFF_CELL_START, PAGE_SIZE as u16);
    codec::put_u16(buf, OFF_DEAD, 0);
    codec::put_u64(buf, OFF_LINK, leftmost_child);
}

#[inline]
pub fn is_leaf(buf: &Buf) -> bool {
    buf[OFF_TYPE] == TYPE_LEAF
}

#[inline]
pub fn num_cells(buf: &Buf) -> usize {
    codec::get_u16(buf, OFF_NUM) as usize
}

#[inline]
pub fn next_leaf(buf: &Buf) -> u64 {
    debug_assert!(is_leaf(buf));
    codec::get_u64(buf, OFF_LINK)
}

#[inline]
pub fn set_next_leaf(buf: &mut Buf, pid: u64) {
    debug_assert!(is_leaf(buf));
    codec::put_u64(buf, OFF_LINK, pid);
}

#[inline]
pub fn leftmost_child(buf: &Buf) -> u64 {
    debug_assert!(!is_leaf(buf));
    codec::get_u64(buf, OFF_LINK)
}

#[inline]
fn cell_off(buf: &Buf, i: usize) -> usize {
    codec::get_u16(buf, HDR_SIZE + i * SLOT_SIZE) as usize
}

/// Key bytes of cell `i` (either node type).
pub fn key_at(buf: &Buf, i: usize) -> &[u8] {
    let off = cell_off(buf, i);
    let klen = codec::get_u16(buf, off) as usize;
    let kstart = if is_leaf(buf) { off + 4 } else { off + 2 };
    &buf[kstart..kstart + klen]
}

/// Value bytes of leaf cell `i`.
pub fn leaf_val_at(buf: &Buf, i: usize) -> &[u8] {
    debug_assert!(is_leaf(buf));
    let off = cell_off(buf, i);
    let klen = codec::get_u16(buf, off) as usize;
    let vlen = codec::get_u16(buf, off + 2) as usize;
    let vstart = off + 4 + klen;
    &buf[vstart..vstart + vlen]
}

/// Child page id stored in interior cell `i`.
pub fn interior_cell_child(buf: &Buf, i: usize) -> u64 {
    debug_assert!(!is_leaf(buf));
    let off = cell_off(buf, i);
    let klen = codec::get_u16(buf, off) as usize;
    codec::get_u64(buf, off + 2 + klen)
}

/// Child to descend into for `key` (see module docs for semantics).
pub fn child_for(buf: &Buf, key: &[u8]) -> u64 {
    child_for_idx(buf, key).0
}

/// Like [`child_for`], also returning the child's logical position in
/// `0..=num_cells` (0 = leftmost) — used by delete to remember its path.
pub fn child_for_idx(buf: &Buf, key: &[u8]) -> (u64, usize) {
    let (idx, found) = lower_bound(buf, key);
    // Cells with key <= `key` route right of themselves.
    let child_idx = if found { idx + 1 } else { idx };
    (child_at(buf, child_idx), child_idx)
}

/// Replaces an interior node's leftmost child pointer.
pub fn set_leftmost_child(buf: &mut Buf, pid: u64) {
    debug_assert!(!is_leaf(buf));
    codec::put_u64(buf, OFF_LINK, pid);
}

/// Child page id at logical position `i` in `0..=num_cells` (0 = leftmost).
pub fn child_at(buf: &Buf, i: usize) -> u64 {
    if i == 0 {
        leftmost_child(buf)
    } else {
        interior_cell_child(buf, i - 1)
    }
}

/// Binary search: index of the first cell with `key_at(idx) >= key`, plus
/// whether it is an exact match.
pub fn lower_bound(buf: &Buf, key: &[u8]) -> (usize, bool) {
    let n = num_cells(buf);
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        match key_at(buf, mid).cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            _ => hi = mid,
        }
    }
    let found = lo < n && key_at(buf, lo) == key;
    (lo, found)
}

/// Contiguous free bytes between the slot directory and the cell area, plus
/// dead bytes reclaimable by [`compact`].
pub fn free_space(buf: &Buf) -> usize {
    let n = num_cells(buf);
    let cell_start = codec::get_u16(buf, OFF_CELL_START) as usize;
    let dead = codec::get_u16(buf, OFF_DEAD) as usize;
    cell_start - (HDR_SIZE + n * SLOT_SIZE) + dead
}

/// Rewrites live cells tightly against the page end, zeroing dead space.
pub fn compact(buf: &mut Buf) {
    let n = num_cells(buf);
    let leaf = is_leaf(buf);
    let mut cells: Vec<Vec<u8>> = Vec::with_capacity(n);
    for i in 0..n {
        let off = cell_off(buf, i);
        let klen = codec::get_u16(buf, off) as usize;
        let size = if leaf {
            let vlen = codec::get_u16(buf, off + 2) as usize;
            4 + klen + vlen
        } else {
            2 + klen + 8
        };
        cells.push(buf[off..off + size].to_vec());
    }
    let mut cell_start = PAGE_SIZE;
    for (i, cell) in cells.iter().enumerate() {
        cell_start -= cell.len();
        buf[cell_start..cell_start + cell.len()].copy_from_slice(cell);
        codec::put_u16(buf, HDR_SIZE + i * SLOT_SIZE, cell_start as u16);
    }
    codec::put_u16(buf, OFF_CELL_START, cell_start as u16);
    codec::put_u16(buf, OFF_DEAD, 0);
}

fn write_cell(buf: &mut Buf, i: usize, cell: &[u8], n: usize) {
    // Caller guarantees total space (including dead bytes). Compact when
    // the contiguous gap between slot directory and cell area is too small
    // — `cell_start` may even sit below the slot area end when dead cells
    // pack low, hence the saturating arithmetic.
    let slot_area_end = HDR_SIZE + (n + 1) * SLOT_SIZE;
    let cell_start = codec::get_u16(buf, OFF_CELL_START) as usize;
    if cell_start.saturating_sub(slot_area_end) < cell.len() {
        compact(buf);
    }
    let cell_start = codec::get_u16(buf, OFF_CELL_START) as usize - cell.len();
    buf[cell_start..cell_start + cell.len()].copy_from_slice(cell);
    codec::put_u16(buf, OFF_CELL_START, cell_start as u16);
    // Shift slots [i..n) right by one.
    let src = HDR_SIZE + i * SLOT_SIZE;
    let end = HDR_SIZE + n * SLOT_SIZE;
    buf.copy_within(src..end, src + SLOT_SIZE);
    codec::put_u16(buf, src, cell_start as u16);
    codec::put_u16(buf, OFF_NUM, (n + 1) as u16);
}

/// Inserts a leaf cell at slot `i`; returns false when the page is full.
pub fn leaf_insert_at(buf: &mut Buf, i: usize, key: &[u8], val: &[u8]) -> bool {
    let n = num_cells(buf);
    let size = 4 + key.len() + val.len();
    if free_space(buf) < size + SLOT_SIZE {
        return false;
    }
    let mut cell = Vec::with_capacity(size);
    cell.extend_from_slice(&(key.len() as u16).to_le_bytes());
    cell.extend_from_slice(&(val.len() as u16).to_le_bytes());
    cell.extend_from_slice(key);
    cell.extend_from_slice(val);
    write_cell(buf, i, &cell, n);
    true
}

/// Inserts an interior cell at slot `i`; returns false when full.
pub fn interior_insert_at(buf: &mut Buf, i: usize, key: &[u8], child: u64) -> bool {
    let n = num_cells(buf);
    let size = 2 + key.len() + 8;
    if free_space(buf) < size + SLOT_SIZE {
        return false;
    }
    let mut cell = Vec::with_capacity(size);
    cell.extend_from_slice(&(key.len() as u16).to_le_bytes());
    cell.extend_from_slice(key);
    cell.extend_from_slice(&child.to_le_bytes());
    write_cell(buf, i, &cell, n);
    true
}

/// Removes cell `i`, leaving its bytes as dead space.
pub fn remove_at(buf: &mut Buf, i: usize) {
    let n = num_cells(buf);
    debug_assert!(i < n);
    let off = cell_off(buf, i);
    let klen = codec::get_u16(buf, off) as usize;
    let size = if is_leaf(buf) {
        let vlen = codec::get_u16(buf, off + 2) as usize;
        4 + klen + vlen
    } else {
        2 + klen + 8
    };
    let dead = codec::get_u16(buf, OFF_DEAD) as usize;
    codec::put_u16(buf, OFF_DEAD, (dead + size) as u16);
    // Shift slots left over the removed one.
    let src = HDR_SIZE + (i + 1) * SLOT_SIZE;
    let end = HDR_SIZE + n * SLOT_SIZE;
    buf.copy_within(src..end, src - SLOT_SIZE);
    codec::put_u16(buf, OFF_NUM, (n - 1) as u16);
}

/// Collects every leaf cell as owned `(key, value)` pairs.
pub fn leaf_cells(buf: &Buf) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..num_cells(buf))
        .map(|i| (key_at(buf, i).to_vec(), leaf_val_at(buf, i).to_vec()))
        .collect()
}

/// Collects every interior cell as owned `(key, child)` pairs.
pub fn interior_cells(buf: &Buf) -> Vec<(Vec<u8>, u64)> {
    (0..num_cells(buf))
        .map(|i| (key_at(buf, i).to_vec(), interior_cell_child(buf, i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_leaf() -> Box<Buf> {
        let mut b: Box<Buf> = vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap();
        init_leaf(&mut b);
        b
    }

    #[test]
    fn leaf_insert_and_search() {
        let mut b = fresh_leaf();
        assert!(leaf_insert_at(&mut b, 0, b"b", b"2"));
        assert!(leaf_insert_at(&mut b, 0, b"a", b"1"));
        assert!(leaf_insert_at(&mut b, 2, b"c", b"3"));
        assert_eq!(num_cells(&b), 3);
        assert_eq!(key_at(&b, 0), b"a");
        assert_eq!(key_at(&b, 1), b"b");
        assert_eq!(key_at(&b, 2), b"c");
        assert_eq!(leaf_val_at(&b, 1), b"2");
        assert_eq!(lower_bound(&b, b"b"), (1, true));
        assert_eq!(lower_bound(&b, b"bb"), (2, false));
        assert_eq!(lower_bound(&b, b"z"), (3, false));
        assert_eq!(lower_bound(&b, b"0"), (0, false));
    }

    #[test]
    fn leaf_remove_creates_dead_space_compaction_reclaims() {
        let mut b = fresh_leaf();
        for i in 0..10u8 {
            let k = [b'a' + i];
            assert!(leaf_insert_at(&mut b, i as usize, &k, &[i; 100]));
        }
        let free_before = free_space(&b);
        remove_at(&mut b, 5);
        assert_eq!(num_cells(&b), 9);
        assert!(free_space(&b) > free_before);
        compact(&mut b);
        assert_eq!(num_cells(&b), 9);
        assert_eq!(key_at(&b, 5), b"g"); // 'f' was removed
        assert_eq!(leaf_val_at(&b, 5), &[6u8; 100]);
    }

    #[test]
    fn leaf_fills_up_then_rejects() {
        let mut b = fresh_leaf();
        let mut i = 0usize;
        loop {
            let key = format!("{i:08}");
            if !leaf_insert_at(&mut b, i, key.as_bytes(), &[0u8; 64]) {
                break;
            }
            i += 1;
        }
        assert!(i > 50, "should fit many cells, got {i}");
        // All still readable in order.
        for j in 0..i {
            assert_eq!(key_at(&b, j), format!("{j:08}").as_bytes());
        }
    }

    #[test]
    fn interior_child_routing() {
        let mut b: Box<Buf> = vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap();
        init_interior(&mut b, 100);
        assert!(interior_insert_at(&mut b, 0, b"m", 200));
        assert!(interior_insert_at(&mut b, 1, b"t", 300));
        // key < "m" -> leftmost; "m" <= key < "t" -> 200; key >= "t" -> 300.
        assert_eq!(child_for(&b, b"a"), 100);
        assert_eq!(child_for(&b, b"m"), 200);
        assert_eq!(child_for(&b, b"p"), 200);
        assert_eq!(child_for(&b, b"t"), 300);
        assert_eq!(child_for(&b, b"z"), 300);
        assert_eq!(child_at(&b, 0), 100);
        assert_eq!(child_at(&b, 1), 200);
        assert_eq!(child_at(&b, 2), 300);
    }

    #[test]
    fn next_leaf_link_roundtrip() {
        let mut b = fresh_leaf();
        assert_eq!(next_leaf(&b), u64::MAX);
        set_next_leaf(&mut b, 42);
        assert_eq!(next_leaf(&b), 42);
    }

    #[test]
    fn insert_after_fragmentation_triggers_inline_compact() {
        let mut b = fresh_leaf();
        // Fill, then delete every other cell, then insert something that
        // only fits after compaction.
        let mut i = 0usize;
        while leaf_insert_at(&mut b, i, format!("{i:06}").as_bytes(), &[1u8; 120]) {
            i += 1;
        }
        let mut j = 0;
        while j < num_cells(&b) {
            remove_at(&mut b, j);
            j += 1;
        }
        assert!(free_space(&b) > 200);
        assert!(leaf_insert_at(&mut b, 0, b"000000a", &[2u8; 150]));
        let (idx, found) = lower_bound(&b, b"000000a");
        assert!(found);
        assert_eq!(leaf_val_at(&b, idx), &[2u8; 150]);
    }
}
