//! Disk-resident B+tree.
//!
//! Serves two roles in the engine, mirroring the index configurations the
//! paper evaluates in Fig 8(c):
//!
//! * **index-organized (clustered) table** — full rows stored as leaf
//!   values, keyed by the clustering columns (`CluIndex`);
//! * **secondary index** — key = indexed columns (+ record id suffix for
//!   non-unique indexes), value = heap record id (`Index`).
//!
//! The root page id is stable for the lifetime of the tree: when the root
//! splits, its content moves to a fresh page and the root is rewritten as an
//! interior node in place, so catalog entries never need fixing up.
//!
//! Deletion removes leaf cells without rebalancing (see DESIGN.md §5); the
//! workloads here are insert/update heavy, and empty leaves remain chained
//! and are skipped by scans.

pub mod node;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{PageId, PAGE_SIZE};
use node::MAX_CELL_PAYLOAD;
use std::ops::Bound;

/// A B+tree keyed by order-preserving byte strings (see [`crate::value`]).
///
/// `Clone` copies only the handle (root page id + cached length); both
/// clones address the same pages, so cloning is only sound when at most
/// one clone keeps writing — e.g. catalog templates cloned into
/// copy-on-write snapshot sessions (DESIGN.md §10).
#[derive(Clone)]
pub struct BTree {
    root: PageId,
    len: u64,
}

enum Ins {
    Done(Option<Vec<u8>>),
    Split {
        sep: Vec<u8>,
        right: u64,
        old: Option<Vec<u8>>,
    },
}

impl BTree {
    /// Allocates an empty tree (a single leaf root).
    pub fn create(pool: &mut BufferPool) -> Result<BTree> {
        let root = pool.allocate_page()?;
        pool.write_page(root, node::init_leaf)?;
        Ok(BTree { root, len: 0 })
    }

    /// Re-attaches to an existing tree (root page + entry count come from
    /// the catalog).
    pub fn open(root: PageId, len: u64) -> BTree {
        BTree { root, len }
    }

    /// The (stable) root page id.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point lookup.
    pub fn get(&self, pool: &mut BufferPool, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut pid = self.root;
        loop {
            enum Step {
                Descend(u64),
                Leaf(Option<Vec<u8>>),
            }
            let step = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    let (idx, found) = node::lower_bound(b, key);
                    Step::Leaf(found.then(|| node::leaf_val_at(b, idx).to_vec()))
                } else {
                    Step::Descend(node::child_for(b, key))
                }
            })?;
            match step {
                Step::Descend(c) => pid = PageId(c),
                Step::Leaf(v) => return Ok(v),
            }
        }
    }

    /// True when `key` is present (no value copy).
    pub fn contains(&self, pool: &mut BufferPool, key: &[u8]) -> Result<bool> {
        let mut pid = self.root;
        loop {
            let step = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    Err(node::lower_bound(b, key).1)
                } else {
                    Ok(node::child_for(b, key))
                }
            })?;
            match step {
                Ok(c) => pid = PageId(c),
                Err(found) => return Ok(found),
            }
        }
    }

    /// Inserts a batch of entries, sorting them first so consecutive
    /// descents share their path's pages in the buffer pool (one batch →
    /// mostly-sequential leaf touches instead of random ones). Returns
    /// the number of *new* keys (replacements don't count).
    pub fn insert_batch(
        &mut self,
        pool: &mut BufferPool,
        mut entries: Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<u64> {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut fresh = 0u64;
        for (k, v) in &entries {
            if self.insert(pool, k, v)?.is_none() {
                fresh += 1;
            }
        }
        Ok(fresh)
    }

    /// Inserts or replaces; returns the previous value if any.
    pub fn insert(
        &mut self,
        pool: &mut BufferPool,
        key: &[u8],
        val: &[u8],
    ) -> Result<Option<Vec<u8>>> {
        if key.len() + val.len() > MAX_CELL_PAYLOAD {
            return Err(StorageError::RecordTooLarge {
                size: key.len() + val.len(),
                max: MAX_CELL_PAYLOAD,
            });
        }
        let res = insert_rec(pool, self.root, key, val)?;
        let old = match res {
            Ins::Done(old) => old,
            Ins::Split { sep, right, old } => {
                // Root split: relocate the root's content so the root page
                // id stays stable, then turn the root into an interior node.
                let left = pool.allocate_page()?;
                let img: Box<[u8; PAGE_SIZE]> = pool.read_page(self.root, |b| Box::new(*b))?;
                pool.write_page(left, move |b| *b = *img)?;
                pool.write_page(self.root, |b| {
                    node::init_interior(b, left.0);
                    let ok = node::interior_insert_at(b, 0, &sep, right);
                    debug_assert!(ok, "fresh interior root must fit one cell");
                })?;
                old
            }
        };
        if old.is_none() {
            self.len += 1;
        }
        Ok(old)
    }

    /// Removes `key`; returns its previous value if present.
    ///
    /// A leaf emptied by the removal is reclaimed immediately: it is
    /// unlinked from the leaf chain, its parent entry is dropped, and the
    /// page is returned to the pool — so long batched-retirement delete
    /// runs do not leave scans walking chains of dead leaves (the
    /// DESIGN.md §5 caveat, retired in §11). A parent whose *only* child
    /// is the emptied leaf keeps it (the tree always has a root-to-leaf
    /// spine); such stragglers are rare and bounded by the tree height.
    pub fn delete(&mut self, pool: &mut BufferPool, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut path: Vec<(PageId, usize)> = Vec::new();
        let mut pid = self.root;
        loop {
            let next = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    None
                } else {
                    Some(node::child_for_idx(b, key))
                }
            })?;
            match next {
                Some((c, pos)) => {
                    path.push((pid, pos));
                    pid = PageId(c);
                }
                None => break,
            }
        }
        let (old, emptied) = pool.write_page(pid, |b| {
            let (idx, found) = node::lower_bound(b, key);
            if found {
                let v = node::leaf_val_at(b, idx).to_vec();
                node::remove_at(b, idx);
                (Some(v), node::num_cells(b) == 0)
            } else {
                (None, false)
            }
        })?;
        if old.is_some() {
            self.len -= 1;
            if emptied && pid != self.root {
                self.unlink_empty_leaf(pool, pid, &path)?;
            }
        }
        Ok(old)
    }

    /// Detaches the empty leaf `leaf` (whose root-to-parent path is
    /// `path`) from the tree and the leaf chain, then frees its page.
    fn unlink_empty_leaf(
        &mut self,
        pool: &mut BufferPool,
        leaf: PageId,
        path: &[(PageId, usize)],
    ) -> Result<()> {
        let &(parent, pos) = path.last().expect("non-root leaf has a parent");
        // A parent without separator cells has this leaf as its only
        // child; removing it would leave the parent childless, so the
        // empty leaf stays (scans skip it).
        if pool.read_page(parent, node::num_cells)? == 0 {
            return Ok(());
        }
        // Leaf chain: the predecessor (if any) must skip the victim.
        let next = pool.read_page(leaf, node::next_leaf)?;
        if let Some(pred) = predecessor_leaf(pool, path)? {
            pool.write_page(pred, |b| node::set_next_leaf(b, next))?;
        }
        // Drop the parent's entry. Removing cell `pos-1` (or promoting
        // cell 0's child to leftmost) merges the victim's — empty — key
        // range into its left neighbour, which keeps routing consistent.
        pool.write_page(parent, |b| {
            if pos == 0 {
                let new_leftmost = node::interior_cell_child(b, 0);
                node::set_leftmost_child(b, new_leftmost);
                node::remove_at(b, 0);
            } else {
                node::remove_at(b, pos - 1);
            }
        })?;
        pool.free_page(leaf);
        Ok(())
    }

    /// In-order scan of `[lo, hi]`; `f` returns `false` to stop early.
    pub fn scan_range(
        &self,
        pool: &mut BufferPool,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        // Descend to the leaf that would contain the lower bound.
        let mut pid = self.root;
        loop {
            let next = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    None
                } else {
                    Some(match lo {
                        Bound::Included(k) | Bound::Excluded(k) => node::child_for(b, k),
                        Bound::Unbounded => node::child_at(b, 0),
                    })
                }
            })?;
            match next {
                Some(c) => pid = PageId(c),
                None => break,
            }
        }
        let mut first_leaf = true;
        loop {
            let (stop, next) = pool.read_page(pid, |b| {
                let start = if first_leaf {
                    match lo {
                        Bound::Included(k) => node::lower_bound(b, k).0,
                        Bound::Excluded(k) => {
                            let (i, found) = node::lower_bound(b, k);
                            if found {
                                i + 1
                            } else {
                                i
                            }
                        }
                        Bound::Unbounded => 0,
                    }
                } else {
                    0
                };
                for i in start..node::num_cells(b) {
                    let k = node::key_at(b, i);
                    let past_hi = match hi {
                        Bound::Included(h) => k > h,
                        Bound::Excluded(h) => k >= h,
                        Bound::Unbounded => false,
                    };
                    if past_hi {
                        return (true, u64::MAX);
                    }
                    if !f(k, node::leaf_val_at(b, i)) {
                        return (true, u64::MAX);
                    }
                }
                (false, node::next_leaf(b))
            })?;
            if stop || next == u64::MAX {
                return Ok(());
            }
            pid = PageId(next);
            first_leaf = false;
        }
    }

    /// Scans all entries whose key starts with `prefix` (contiguous thanks
    /// to the order-preserving encoding); `f` returns `false` to stop.
    pub fn scan_prefix(
        &self,
        pool: &mut BufferPool,
        prefix: &[u8],
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        self.scan_range(pool, Bound::Included(prefix), Bound::Unbounded, |k, v| {
            if !k.starts_with(prefix) {
                return false;
            }
            f(k, v)
        })
    }

    /// Every page id reachable from the root (root first).
    fn collect_pages(&self, pool: &mut BufferPool) -> Result<Vec<PageId>> {
        let mut out = vec![self.root];
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            let children = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    Vec::new()
                } else {
                    (0..=node::num_cells(b))
                        .map(|i| PageId(node::child_at(b, i)))
                        .collect()
                }
            })?;
            out.extend_from_slice(&children);
            stack.extend_from_slice(&children);
        }
        Ok(out)
    }

    /// Removes every entry, releasing all pages except the root (which is
    /// re-initialised as an empty leaf).
    pub fn clear(&mut self, pool: &mut BufferPool) -> Result<()> {
        let pages = self.collect_pages(pool)?;
        for pid in pages.into_iter().skip(1) {
            pool.free_page(pid);
        }
        pool.write_page(self.root, node::init_leaf)?;
        self.len = 0;
        Ok(())
    }

    /// Destroys the tree, releasing every page including the root.
    pub fn destroy(mut self, pool: &mut BufferPool) -> Result<()> {
        self.clear(pool)?;
        pool.free_page(self.root);
        Ok(())
    }

    /// Number of pages reachable from the root (tests and diagnostics —
    /// the empty-leaf-reclamation regression asserts this shrinks).
    pub fn reachable_pages(&self, pool: &mut BufferPool) -> Result<usize> {
        Ok(self.collect_pages(pool)?.len())
    }

    /// Number of leaves on the leaf chain, walked exactly like a full
    /// scan does (tests and diagnostics).
    pub fn chain_leaves(&self, pool: &mut BufferPool) -> Result<usize> {
        let mut pid = self.root;
        loop {
            let next = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    None
                } else {
                    Some(node::child_at(b, 0))
                }
            })?;
            match next {
                Some(c) => pid = PageId(c),
                None => break,
            }
        }
        let mut n = 1usize;
        loop {
            let next = pool.read_page(pid, node::next_leaf)?;
            if next == u64::MAX {
                return Ok(n);
            }
            pid = PageId(next);
            n += 1;
        }
    }

    /// A batched-scan cursor positioned at the first entry. The tree must
    /// not be mutated while the cursor is in use.
    pub fn batch_cursor(&self, pool: &mut BufferPool) -> Result<BTreeScanCursor> {
        let mut pid = self.root;
        loop {
            let next = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    None
                } else {
                    Some(node::child_at(b, 0))
                }
            })?;
            match next {
                Some(c) => pid = PageId(c),
                None => break,
            }
        }
        Ok(BTreeScanCursor { pid: pid.0, idx: 0 })
    }

    /// Builds the tree bottom-up from strictly-increasing `(key, value)`
    /// entries: leaves fill left-to-right at maximum density and interior
    /// levels grow above them, with no per-key root-to-leaf descent. The
    /// tree must be empty; the root page id stays stable (catalog entries
    /// keep pointing at it). Errors if keys are out of order or duplicated.
    pub fn bulk_build(
        &mut self,
        pool: &mut BufferPool,
        entries: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> Result<u64> {
        let mut b = BTreeBulkBuilder::for_tree(self, pool)?;
        for (k, v) in entries {
            b.push(pool, &k, &v)?;
        }
        self.bulk_finish(pool, b)
    }

    /// Completes a streamed bulk build: the caller drove
    /// [`BTreeBulkBuilder::push`] itself (typically with reusable key/value
    /// buffers, avoiding a per-entry allocation) and hands the builder back
    /// so the tree's length is accounted. The builder must have been created
    /// by [`BTreeBulkBuilder::for_tree`] on this tree.
    pub fn bulk_finish(&mut self, pool: &mut BufferPool, builder: BTreeBulkBuilder) -> Result<u64> {
        if builder.root != self.root {
            return Err(StorageError::Corrupt(
                "bulk_finish: builder targets a different tree".into(),
            ));
        }
        let n = builder.finish(pool)?;
        self.len = n;
        Ok(n)
    }

    /// Tree height (1 = root is a leaf); used by tests and diagnostics.
    pub fn height(&self, pool: &mut BufferPool) -> Result<usize> {
        let mut h = 1;
        let mut pid = self.root;
        loop {
            let next = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    None
                } else {
                    Some(node::child_at(b, 0))
                }
            })?;
            match next {
                Some(c) => {
                    pid = PageId(c);
                    h += 1;
                }
                None => return Ok(h),
            }
        }
    }
}

/// Rightmost leaf of the subtree immediately left of the path's leaf, or
/// `None` when the leaf is the globally leftmost one (the leaf chain has
/// no stored head — scans find their first leaf by descending, so a
/// headless victim needs no chain fix-up).
fn predecessor_leaf(pool: &mut BufferPool, path: &[(PageId, usize)]) -> Result<Option<PageId>> {
    for &(anc, pos) in path.iter().rev() {
        if pos == 0 {
            continue;
        }
        let mut pid = PageId(pool.read_page(anc, |b| node::child_at(b, pos - 1))?);
        loop {
            let next = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    None
                } else {
                    Some(node::child_at(b, node::num_cells(b)))
                }
            })?;
            match next {
                Some(c) => pid = PageId(c),
                None => return Ok(Some(pid)),
            }
        }
    }
    Ok(None)
}

/// Resumable batched scan over a [`BTree`]'s leaf chain
/// (see [`BTree::batch_cursor`]). Leaf values are decoded as rows.
#[derive(Debug, Clone, Copy)]
pub struct BTreeScanCursor {
    pid: u64,
    idx: usize,
}

impl BTreeScanCursor {
    /// Decodes up to `max` further entries' values into `chunk`
    /// (appending), also recording their keys into `keys` when given.
    /// Returns `false` once the tree is exhausted.
    pub fn next_batch(
        &mut self,
        pool: &mut BufferPool,
        chunk: &mut crate::chunk::Chunk,
        mut keys: Option<&mut Vec<Vec<u8>>>,
        max: usize,
    ) -> Result<bool> {
        let mut added = 0usize;
        while self.pid != u64::MAX {
            if added >= max {
                return Ok(true);
            }
            let start = self.idx;
            let keys_ref = &mut keys;
            let (next_idx, next_pid, leaf_done) = pool.read_page(PageId(self.pid), |b| {
                let n = node::num_cells(b);
                let mut i = start;
                while i < n {
                    if added >= max {
                        return Ok::<_, StorageError>((i, 0, false));
                    }
                    crate::row::decode_row_into_chunk(node::leaf_val_at(b, i), chunk)?;
                    if let Some(keys) = keys_ref.as_deref_mut() {
                        keys.push(node::key_at(b, i).to_vec());
                    }
                    i += 1;
                    added += 1;
                }
                Ok((0, node::next_leaf(b), true))
            })??;
            if leaf_done {
                self.pid = next_pid;
                self.idx = 0;
            } else {
                self.idx = next_idx;
            }
        }
        Ok(false)
    }
}

/// One partially-built interior node during a bulk build.
struct BulkLevel {
    img: Box<node::Buf>,
    /// Separator that will accompany this node's page id when it is
    /// attached to its parent; `None` for the leftmost node of its level.
    pending_sep: Option<Vec<u8>>,
    cells: usize,
}

/// Streaming bottom-up B+tree builder (see [`BTree::bulk_build`]).
///
/// Keeps O(height) memory: one in-progress page image per level. Leaves
/// are emitted left-to-right and chained as they flush; each flush pushes
/// `(first-key-of-subtree, page-id)` one level up, so no key ever takes a
/// root-to-leaf descent. `push` and `finish` borrow the pool per call, so
/// callers can interleave building with other pool work (e.g. reading the
/// source heap).
pub struct BTreeBulkBuilder {
    root: PageId,
    leaf: Box<node::Buf>,
    leaf_cells: usize,
    leaf_pending_sep: Option<Vec<u8>>,
    prev_leaf: Option<PageId>,
    levels: Vec<BulkLevel>,
    last_key: Option<Vec<u8>>,
    count: u64,
}

impl BTreeBulkBuilder {
    /// A builder targeting `tree`'s (stable) root page. The tree must be
    /// empty; until [`finish`](Self::finish) runs it stays an empty leaf.
    pub fn for_tree(tree: &BTree, pool: &mut BufferPool) -> Result<BTreeBulkBuilder> {
        if !tree.is_empty() {
            return Err(StorageError::Corrupt(
                "bulk_build requires an empty tree".into(),
            ));
        }
        // Ensure the root really is an empty leaf (a cleared tree is).
        let ok = pool.read_page(tree.root, |b| node::is_leaf(b) && node::num_cells(b) == 0)?;
        if !ok {
            return Err(StorageError::Corrupt(
                "bulk_build requires an empty leaf root".into(),
            ));
        }
        let mut leaf: Box<node::Buf> = Box::new([0u8; PAGE_SIZE]);
        node::init_leaf(&mut leaf);
        Ok(BTreeBulkBuilder {
            root: tree.root,
            leaf,
            leaf_cells: 0,
            leaf_pending_sep: None,
            prev_leaf: None,
            levels: Vec::new(),
            last_key: None,
            count: 0,
        })
    }

    /// Appends the next entry; keys must arrive strictly increasing.
    pub fn push(&mut self, pool: &mut BufferPool, key: &[u8], val: &[u8]) -> Result<()> {
        if key.len() + val.len() > MAX_CELL_PAYLOAD {
            return Err(StorageError::RecordTooLarge {
                size: key.len() + val.len(),
                max: MAX_CELL_PAYLOAD,
            });
        }
        if let Some(last) = &self.last_key {
            if key <= last.as_slice() {
                return Err(StorageError::Corrupt(
                    "bulk_build keys must be strictly increasing".into(),
                ));
            }
        }
        if !node::leaf_insert_at(&mut self.leaf, self.leaf_cells, key, val) {
            self.flush_leaf(pool)?;
            node::init_leaf(&mut self.leaf);
            self.leaf_cells = 0;
            self.leaf_pending_sep = Some(key.to_vec());
            let ok = node::leaf_insert_at(&mut self.leaf, 0, key, val);
            debug_assert!(ok, "fresh leaf must fit one bounded cell");
        }
        self.leaf_cells += 1;
        // Reuse the last-key buffer: one allocation for the whole build
        // instead of one per entry.
        match &mut self.last_key {
            Some(buf) => {
                buf.clear();
                buf.extend_from_slice(key);
            }
            slot => *slot = Some(key.to_vec()),
        }
        self.count += 1;
        Ok(())
    }

    /// Writes the current leaf image out and links it into the leaf chain.
    fn flush_leaf(&mut self, pool: &mut BufferPool) -> Result<()> {
        let pid = pool.allocate_page()?;
        let img = self.leaf.clone();
        pool.write_page(pid, move |b| *b = *img)?;
        if let Some(prev) = self.prev_leaf {
            pool.write_page(prev, |b| node::set_next_leaf(b, pid.0))?;
        }
        self.prev_leaf = Some(pid);
        let sep = self.leaf_pending_sep.take();
        self.attach(pool, 0, sep, pid)
    }

    /// Attaches a flushed child page to the in-progress node at `level`,
    /// creating the level (a new tree tier) or flushing it upward when
    /// full.
    fn attach(
        &mut self,
        pool: &mut BufferPool,
        level: usize,
        sep: Option<Vec<u8>>,
        child: PageId,
    ) -> Result<()> {
        if level == self.levels.len() {
            // First child flushed from below: starts a new top tier, with
            // the child as the leftmost subtree (no separator yet).
            debug_assert!(sep.is_none(), "first flush at a level carries no separator");
            let mut img: Box<node::Buf> = Box::new([0u8; PAGE_SIZE]);
            node::init_interior(&mut img, child.0);
            self.levels.push(BulkLevel {
                img,
                pending_sep: None,
                cells: 0,
            });
            return Ok(());
        }
        let sep = sep.expect("non-first child must carry its subtree's first key");
        let lvl = &mut self.levels[level];
        if node::interior_insert_at(&mut lvl.img, lvl.cells, &sep, child.0) {
            lvl.cells += 1;
            return Ok(());
        }
        // Full: emit this node, promote it, and restart the level with the
        // incoming child as the new node's leftmost subtree. `sep` becomes
        // the new node's pending separator for *its* eventual promotion.
        self.flush_level(pool, level)?;
        let lvl = &mut self.levels[level];
        node::init_interior(&mut lvl.img, child.0);
        lvl.cells = 0;
        lvl.pending_sep = Some(sep);
        Ok(())
    }

    /// Writes the in-progress node at `level` out and attaches it one
    /// level up.
    fn flush_level(&mut self, pool: &mut BufferPool, level: usize) -> Result<()> {
        let pid = pool.allocate_page()?;
        let img = self.levels[level].img.clone();
        pool.write_page(pid, move |b| *b = *img)?;
        let sep = self.levels[level].pending_sep.take();
        self.attach(pool, level + 1, sep, pid)
    }

    /// Completes the build: flushes the partial right spine bottom-up and
    /// installs the top node's image into the (stable) root page. Returns
    /// the number of entries built.
    pub fn finish(mut self, pool: &mut BufferPool) -> Result<u64> {
        if self.count == 0 {
            return Ok(0);
        }
        if self.prev_leaf.is_none() {
            // Everything fit in one leaf: it becomes the root.
            let img = self.leaf;
            pool.write_page(self.root, move |b| *b = *img)?;
            return Ok(self.count);
        }
        self.flush_leaf(pool)?;
        let mut i = 0;
        while i + 1 < self.levels.len() {
            self.flush_level(pool, i)?;
            i += 1;
        }
        let top = self.levels.pop().expect("multi-leaf build has a top level");
        debug_assert!(
            top.cells > 0,
            "top level always receives the right spine's last child"
        );
        let img = top.img;
        pool.write_page(self.root, move |b| *b = *img)?;
        Ok(self.count)
    }
}

fn insert_rec(pool: &mut BufferPool, pid: PageId, key: &[u8], val: &[u8]) -> Result<Ins> {
    let leaf = pool.read_page(pid, node::is_leaf)?;
    if leaf {
        enum Outcome {
            Done(Option<Vec<u8>>),
            NeedSplit(Option<Vec<u8>>),
        }
        let outcome = pool.write_page(pid, |b| {
            let (idx, found) = node::lower_bound(b, key);
            let old = if found {
                let v = node::leaf_val_at(b, idx).to_vec();
                node::remove_at(b, idx);
                Some(v)
            } else {
                None
            };
            if node::leaf_insert_at(b, idx, key, val) {
                Outcome::Done(old)
            } else {
                Outcome::NeedSplit(old)
            }
        })?;
        let old = match outcome {
            Outcome::Done(old) => return Ok(Ins::Done(old)),
            Outcome::NeedSplit(old) => old,
        };
        // Split: gather cells (the replaced key, if any, is already gone),
        // add the new entry, and distribute across two leaves.
        let (mut cells, next) =
            pool.read_page(pid, |b| (node::leaf_cells(b), node::next_leaf(b)))?;
        let pos = match cells.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(_) => unreachable!("duplicate was removed above"),
            Err(p) => p,
        };
        cells.insert(pos, (key.to_vec(), val.to_vec()));
        let mid = split_point(cells.iter().map(|(k, v)| 4 + k.len() + v.len()));
        let right_pid = pool.allocate_page()?;
        let sep = cells[mid].0.clone();
        pool.write_page(pid, |b| {
            node::init_leaf(b);
            for (i, (k, v)) in cells[..mid].iter().enumerate() {
                let ok = node::leaf_insert_at(b, i, k, v);
                debug_assert!(ok);
            }
            node::set_next_leaf(b, right_pid.0);
        })?;
        pool.write_page(right_pid, |b| {
            node::init_leaf(b);
            for (i, (k, v)) in cells[mid..].iter().enumerate() {
                let ok = node::leaf_insert_at(b, i, k, v);
                debug_assert!(ok);
            }
            node::set_next_leaf(b, next);
        })?;
        return Ok(Ins::Split {
            sep,
            right: right_pid.0,
            old,
        });
    }

    let child = pool.read_page(pid, |b| node::child_for(b, key))?;
    match insert_rec(pool, PageId(child), key, val)? {
        Ins::Done(old) => Ok(Ins::Done(old)),
        Ins::Split { sep, right, old } => {
            let fitted = pool.write_page(pid, |b| {
                let (idx, _) = node::lower_bound(b, &sep);
                node::interior_insert_at(b, idx, &sep, right)
            })?;
            if fitted {
                return Ok(Ins::Done(old));
            }
            // Split this interior node; the middle key moves up.
            let (mut cells, leftmost) =
                pool.read_page(pid, |b| (node::interior_cells(b), node::leftmost_child(b)))?;
            let pos = match cells.binary_search_by(|(k, _)| k.as_slice().cmp(&sep)) {
                Ok(p) => p, // separators are unique in practice; tolerate
                Err(p) => p,
            };
            cells.insert(pos, (sep, right));
            let mid = split_point(cells.iter().map(|(k, _)| 2 + k.len() + 8));
            let (up_key, up_child) = cells[mid].clone();
            let right_pid = pool.allocate_page()?;
            pool.write_page(pid, |b| {
                node::init_interior(b, leftmost);
                for (i, (k, c)) in cells[..mid].iter().enumerate() {
                    let ok = node::interior_insert_at(b, i, k, *c);
                    debug_assert!(ok);
                }
            })?;
            pool.write_page(right_pid, |b| {
                node::init_interior(b, up_child);
                for (i, (k, c)) in cells[mid + 1..].iter().enumerate() {
                    let ok = node::interior_insert_at(b, i, k, *c);
                    debug_assert!(ok);
                }
            })?;
            Ok(Ins::Split {
                sep: up_key,
                right: right_pid.0,
                old,
            })
        }
    }
}

/// Number of cells to keep in the left node: the smallest count whose
/// cumulative bytes reach half the total. Byte-balanced splits keep fill
/// factors healthy for skewed payloads; both sides stay non-empty.
fn split_point(sizes: impl ExactSizeIterator<Item = usize> + Clone) -> usize {
    let n = sizes.len();
    debug_assert!(n >= 2, "cannot split fewer than two cells");
    let total: usize = sizes.clone().sum();
    let mut acc = 0usize;
    for (i, s) in sizes.enumerate() {
        acc += s;
        if acc * 2 >= total {
            return (i + 1).clamp(1, n - 1);
        }
    }
    n / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn pool() -> BufferPool {
        BufferPool::in_memory(64)
    }

    fn k(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn empty_tree_get_none() {
        let mut p = pool();
        let t = BTree::create(&mut p).unwrap();
        assert!(t.get(&mut p, b"x").unwrap().is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn insert_get_single() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        assert!(t.insert(&mut p, b"k", b"v").unwrap().is_none());
        assert_eq!(t.get(&mut p, b"k").unwrap().unwrap(), b"v");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn replace_returns_old_value() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        t.insert(&mut p, b"k", b"v1").unwrap();
        let old = t.insert(&mut p, b"k", b"v2").unwrap();
        assert_eq!(old.unwrap(), b"v1");
        assert_eq!(t.get(&mut p, b"k").unwrap().unwrap(), b"v2");
        assert_eq!(t.len(), 1, "replace must not grow len");
    }

    #[test]
    fn sequential_inserts_split_root() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        let n = 2000u64;
        for i in 0..n {
            t.insert(&mut p, &k(i), format!("val{i}").as_bytes())
                .unwrap();
        }
        assert_eq!(t.len(), n);
        assert!(t.height(&mut p).unwrap() >= 2);
        for i in 0..n {
            assert_eq!(
                t.get(&mut p, &k(i)).unwrap().unwrap(),
                format!("val{i}").as_bytes(),
                "key {i}"
            );
        }
        assert!(t.get(&mut p, &k(n)).unwrap().is_none());
    }

    #[test]
    fn reverse_and_random_inserts_match_oracle() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        let mut oracle = BTreeMap::new();
        // Reverse order
        for i in (0..500u64).rev() {
            t.insert(&mut p, &k(i), &k(i * 3)).unwrap();
            oracle.insert(k(i), k(i * 3));
        }
        // Pseudo-random interleaved updates
        let mut x = 99u64;
        for _ in 0..1500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = k((x >> 40) % 800);
            let val = k(x % 1000);
            t.insert(&mut p, &key, &val).unwrap();
            oracle.insert(key, val);
        }
        assert_eq!(t.len(), oracle.len() as u64);
        for (key, val) in &oracle {
            assert_eq!(&t.get(&mut p, key).unwrap().unwrap(), val);
        }
    }

    #[test]
    fn full_scan_is_sorted_and_complete() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        let mut x = 7u64;
        let mut keys = Vec::new();
        for _ in 0..1000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let key = k(x);
            t.insert(&mut p, &key, b"").unwrap();
            keys.push(key);
        }
        keys.sort();
        keys.dedup();
        let mut seen = Vec::new();
        t.scan_range(&mut p, Bound::Unbounded, Bound::Unbounded, |k, _| {
            seen.push(k.to_vec());
            true
        })
        .unwrap();
        assert_eq!(seen, keys);
    }

    #[test]
    fn range_scan_bounds() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        for i in 0..100u64 {
            t.insert(&mut p, &k(i), &k(i)).unwrap();
        }
        let collect = |p: &mut BufferPool, t: &BTree, lo: Bound<&[u8]>, hi: Bound<&[u8]>| {
            let mut out = Vec::new();
            t.scan_range(p, lo, hi, |key, _| {
                out.push(u64::from_be_bytes(key.try_into().unwrap()));
                true
            })
            .unwrap();
            out
        };
        let lo = k(10);
        let hi = k(20);
        assert_eq!(
            collect(&mut p, &t, Bound::Included(&lo), Bound::Included(&hi)),
            (10..=20).collect::<Vec<_>>()
        );
        assert_eq!(
            collect(&mut p, &t, Bound::Excluded(&lo), Bound::Excluded(&hi)),
            (11..20).collect::<Vec<_>>()
        );
        assert_eq!(
            collect(&mut p, &t, Bound::Unbounded, Bound::Excluded(&lo)),
            (0..10).collect::<Vec<_>>()
        );
        assert_eq!(
            collect(&mut p, &t, Bound::Included(&k(95)), Bound::Unbounded),
            (95..100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scan_early_stop() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        for i in 0..100u64 {
            t.insert(&mut p, &k(i), b"").unwrap();
        }
        let mut n = 0;
        t.scan_range(&mut p, Bound::Unbounded, Bound::Unbounded, |_, _| {
            n += 1;
            n < 7
        })
        .unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn prefix_scan() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        // Composite keys: (group, seq).
        for g in 0..10u8 {
            for s in 0..20u8 {
                t.insert(&mut p, &[g, s], &[g + s]).unwrap();
            }
        }
        let mut seen = Vec::new();
        t.scan_prefix(&mut p, &[4], |key, _| {
            seen.push(key[1]);
            true
        })
        .unwrap();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn delete_then_reinsert() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        for i in 0..300u64 {
            t.insert(&mut p, &k(i), &k(i)).unwrap();
        }
        for i in (0..300u64).step_by(2) {
            assert!(t.delete(&mut p, &k(i)).unwrap().is_some(), "delete {i}");
        }
        assert_eq!(t.len(), 150);
        for i in 0..300u64 {
            let got = t.get(&mut p, &k(i)).unwrap();
            if i % 2 == 0 {
                assert!(got.is_none(), "key {i} should be gone");
            } else {
                assert!(got.is_some(), "key {i} should remain");
            }
        }
        // Deleting a missing key is a no-op.
        assert!(t.delete(&mut p, &k(0)).unwrap().is_none());
        // Re-insert over the holes.
        for i in (0..300u64).step_by(2) {
            t.insert(&mut p, &k(i), b"again").unwrap();
        }
        assert_eq!(t.len(), 300);
        assert_eq!(t.get(&mut p, &k(42)).unwrap().unwrap(), b"again");
    }

    #[test]
    fn clear_releases_pages_and_tree_reusable() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        for i in 0..2000u64 {
            t.insert(&mut p, &k(i), &[0u8; 32]).unwrap();
        }
        let pages_before = p.num_disk_pages();
        t.clear(&mut p).unwrap();
        assert!(t.is_empty());
        assert!(t.get(&mut p, &k(5)).unwrap().is_none());
        // Freed pages are recycled: rebuilding should not grow the file.
        for i in 0..2000u64 {
            t.insert(&mut p, &k(i), &[0u8; 32]).unwrap();
        }
        assert!(
            p.num_disk_pages() <= pages_before + 1,
            "pages should be recycled ({} -> {})",
            pages_before,
            p.num_disk_pages()
        );
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        let err = t.insert(&mut p, b"k", &vec![0u8; PAGE_SIZE]);
        assert!(matches!(err, Err(StorageError::RecordTooLarge { .. })));
    }

    #[test]
    fn fully_deleted_range_releases_leaves() {
        let mut p = BufferPool::in_memory(256);
        let mut t = BTree::create(&mut p).unwrap();
        for i in 0..5000u64 {
            t.insert(&mut p, &k(i), &[7u8; 40]).unwrap();
        }
        let pages_before = t.reachable_pages(&mut p).unwrap();
        let leaves_before = t.chain_leaves(&mut p).unwrap();
        assert!(leaves_before > 20, "need many leaves for the test");
        // Retire a large contiguous range completely (the batched-FEM
        // retirement pattern), then everything.
        for i in 1000..4000u64 {
            assert!(t.delete(&mut p, &k(i)).unwrap().is_some());
        }
        let leaves_mid = t.chain_leaves(&mut p).unwrap();
        assert!(
            leaves_mid < leaves_before / 2,
            "empty leaves must leave the chain ({leaves_before} -> {leaves_mid})"
        );
        // Remaining keys intact and in order.
        let mut seen = Vec::new();
        t.scan_range(&mut p, Bound::Unbounded, Bound::Unbounded, |key, _| {
            seen.push(u64::from_be_bytes(key.try_into().unwrap()));
            true
        })
        .unwrap();
        let expect: Vec<u64> = (0..1000).chain(4000..5000).collect();
        assert_eq!(seen, expect);
        // Point lookups still route correctly across the collapsed range.
        assert!(t.get(&mut p, &k(999)).unwrap().is_some());
        assert!(t.get(&mut p, &k(2500)).unwrap().is_none());
        assert!(t.get(&mut p, &k(4000)).unwrap().is_some());
        for i in 0..5000u64 {
            t.delete(&mut p, &k(i)).unwrap();
        }
        assert!(t.is_empty());
        let pages_after = t.reachable_pages(&mut p).unwrap();
        assert!(
            pages_after < pages_before / 4,
            "a fully-deleted tree must shed its pages ({pages_before} -> {pages_after})"
        );
        let leaves_after = t.chain_leaves(&mut p).unwrap();
        assert!(
            leaves_after <= t.height(&mut p).unwrap(),
            "at most one straggler leaf per level ({leaves_after})"
        );
        // The tree remains fully usable: freed pages are recycled.
        for i in 0..5000u64 {
            t.insert(&mut p, &k(i), &[8u8; 40]).unwrap();
        }
        assert_eq!(t.len(), 5000);
        assert_eq!(t.get(&mut p, &k(4321)).unwrap().unwrap(), vec![8u8; 40]);
    }

    #[test]
    fn delete_reclaim_interleaved_with_reinserts_matches_oracle() {
        let mut p = BufferPool::in_memory(64);
        let mut t = BTree::create(&mut p).unwrap();
        let mut oracle = BTreeMap::new();
        let mut x = 11u64;
        for round in 0..6000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = k((x >> 33) % 700);
            if round % 3 == 0 {
                t.delete(&mut p, &key).unwrap();
                oracle.remove(&key);
            } else {
                t.insert(&mut p, &key, &k(x)).unwrap();
                oracle.insert(key, k(x));
            }
        }
        assert_eq!(t.len(), oracle.len() as u64);
        let mut seen = Vec::new();
        t.scan_range(&mut p, Bound::Unbounded, Bound::Unbounded, |key, v| {
            seen.push((key.to_vec(), v.to_vec()));
            true
        })
        .unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> =
            oracle.iter().map(|(a, b)| (a.clone(), b.clone())).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn insert_batch_counts_fresh_keys() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        t.insert(&mut p, &k(5), b"old").unwrap();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..10u64).map(|i| (k(i), k(i))).collect();
        let fresh = t.insert_batch(&mut p, entries).unwrap();
        assert_eq!(fresh, 9, "key 5 was a replacement");
        assert_eq!(t.len(), 10);
        assert_eq!(t.get(&mut p, &k(5)).unwrap().unwrap(), k(5));
    }

    #[test]
    fn batch_cursor_matches_scan() {
        use crate::value::Value;
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        for i in 0..800i64 {
            t.insert(
                &mut p,
                &k(i as u64),
                &crate::row::encode_row(&[Value::Int(i), Value::Null]),
            )
            .unwrap();
        }
        let mut cursor = t.batch_cursor(&mut p).unwrap();
        let mut chunk = crate::chunk::Chunk::new();
        let mut keys = Vec::new();
        let mut rows = Vec::new();
        loop {
            chunk.reset();
            let more = cursor
                .next_batch(&mut p, &mut chunk, Some(&mut keys), 100)
                .unwrap();
            rows.extend(chunk.to_rows());
            if !more {
                break;
            }
        }
        assert_eq!(rows.len(), 800);
        assert_eq!(keys.len(), 800);
        for i in 0..800i64 {
            assert_eq!(rows[i as usize], vec![Value::Int(i), Value::Null]);
            assert_eq!(keys[i as usize], k(i as u64));
        }
    }

    #[test]
    fn bulk_build_matches_insert_built_tree() {
        for n in [0u64, 1, 3, 150, 151, 2000, 12345] {
            let mut p = BufferPool::in_memory(64);
            let mut t = BTree::create(&mut p).unwrap();
            let root_before = t.root();
            let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
                .map(|i| (k(i), format!("v{i}").into_bytes()))
                .collect();
            let built = t.bulk_build(&mut p, entries.clone()).unwrap();
            assert_eq!(built, n);
            assert_eq!(t.len(), n);
            assert_eq!(t.root(), root_before, "root pid must stay stable");
            // Full scan returns exactly the input, in order.
            let mut seen = Vec::new();
            t.scan_range(&mut p, Bound::Unbounded, Bound::Unbounded, |key, v| {
                seen.push((key.to_vec(), v.to_vec()));
                true
            })
            .unwrap();
            assert_eq!(seen, entries, "n={n}");
            // Point lookups route correctly through the built interiors.
            for i in (0..n).step_by(97) {
                assert_eq!(
                    t.get(&mut p, &k(i)).unwrap().unwrap(),
                    format!("v{i}").into_bytes()
                );
            }
            assert!(t.get(&mut p, &k(n)).unwrap().is_none());
        }
    }

    #[test]
    fn bulk_build_leaves_are_denser_than_split_built() {
        let n = 20_000u64;
        let mut p1 = BufferPool::in_memory(64);
        let mut bulk = BTree::create(&mut p1).unwrap();
        bulk.bulk_build(&mut p1, (0..n).map(|i| (k(i), k(i))))
            .unwrap();
        let mut p2 = BufferPool::in_memory(64);
        let mut split = BTree::create(&mut p2).unwrap();
        for i in 0..n {
            split.insert(&mut p2, &k(i), &k(i)).unwrap();
        }
        let bulk_pages = bulk.reachable_pages(&mut p1).unwrap();
        let split_pages = split.reachable_pages(&mut p2).unwrap();
        assert!(
            bulk_pages * 3 <= split_pages * 2,
            "bulk {bulk_pages} pages vs split {split_pages}"
        );
    }

    #[test]
    fn bulk_build_tree_accepts_later_inserts_and_deletes() {
        let mut p = BufferPool::in_memory(64);
        let mut t = BTree::create(&mut p).unwrap();
        t.bulk_build(&mut p, (0..5000u64).map(|i| (k(i * 2), k(i))))
            .unwrap();
        // Odd keys insert into full leaves, forcing splits everywhere.
        for i in 0..2000u64 {
            assert!(t.insert(&mut p, &k(i * 2 + 1), b"odd").unwrap().is_none());
        }
        assert_eq!(t.len(), 7000);
        assert_eq!(t.get(&mut p, &k(1999)).unwrap().unwrap(), b"odd");
        assert_eq!(t.get(&mut p, &k(4000)).unwrap().unwrap(), k(2000));
        for i in 0..1000u64 {
            assert!(t.delete(&mut p, &k(i * 2)).unwrap().is_some());
        }
        assert_eq!(t.len(), 6000);
        let mut count = 0u64;
        t.scan_range(&mut p, Bound::Unbounded, Bound::Unbounded, |_, _| {
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, 6000);
    }

    #[test]
    fn bulk_build_rejects_unsorted_and_nonempty() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        let err = t.bulk_build(&mut p, vec![(k(5), vec![]), (k(5), vec![])]);
        assert!(err.is_err(), "duplicate keys must be rejected");
        // The failed build leaves the tree unusable only transiently; a
        // fresh tree builds fine.
        let mut t2 = BTree::create(&mut p).unwrap();
        t2.insert(&mut p, &k(1), b"x").unwrap();
        let err = t2.bulk_build(&mut p, vec![(k(2), vec![])]);
        assert!(err.is_err(), "non-empty tree must be rejected");
        let mut t3 = BTree::create(&mut p).unwrap();
        let err = t3.bulk_build(&mut p, vec![(k(9), vec![]), (k(3), vec![])]);
        assert!(err.is_err(), "descending keys must be rejected");
    }

    #[test]
    fn bulk_build_through_tiny_pool_spills_cleanly() {
        let mut p = BufferPool::in_memory(3);
        let mut t = BTree::create(&mut p).unwrap();
        let n = 8000u64;
        t.bulk_build(&mut p, (0..n).map(|i| (k(i), k(i * 7))))
            .unwrap();
        let mut seen = 0u64;
        t.scan_range(&mut p, Bound::Unbounded, Bound::Unbounded, |key, v| {
            let i = u64::from_be_bytes(key.try_into().unwrap());
            assert_eq!(i, seen);
            assert_eq!(v, k(i * 7));
            seen += 1;
            true
        })
        .unwrap();
        assert_eq!(seen, n);
    }

    #[test]
    fn works_through_tiny_buffer_pool() {
        // Exercise eviction paths during structural changes.
        let mut p = BufferPool::in_memory(3);
        let mut t = BTree::create(&mut p).unwrap();
        let mut oracle = BTreeMap::new();
        let mut x = 5u64;
        for _ in 0..3000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = k(x >> 32);
            t.insert(&mut p, &key, &k(x)).unwrap();
            oracle.insert(key, k(x));
        }
        for (key, val) in &oracle {
            assert_eq!(
                &t.get(&mut p, key).unwrap().unwrap(),
                val,
                "through evictions"
            );
        }
        let mut count = 0u64;
        t.scan_range(&mut p, Bound::Unbounded, Bound::Unbounded, |_, _| {
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, oracle.len() as u64);
    }
    #[test]
    fn full_scan_keeps_root_resident() {
        // The 2Q pool's reason to exist, seen from the tree: point probes
        // heat the root into the protected tier, and a full-table scan —
        // which parades every leaf through the probationary tier exactly
        // once — must not evict it.
        let mut p = BufferPool::in_memory(8);
        let mut t = BTree::create(&mut p).unwrap();
        for i in 0..4000u64 {
            t.insert(&mut p, &k(i), &k(i)).unwrap();
        }
        assert!(t.height(&mut p).unwrap() >= 2, "need a real interior");
        for i in (0..4000u64).step_by(997) {
            t.get(&mut p, &k(i)).unwrap().unwrap(); // every probe re-touches the root
        }
        let mut count = 0u64;
        t.scan_range(&mut p, Bound::Unbounded, Bound::Unbounded, |_, _| {
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, 4000);
        p.reset_stats();
        p.read_page(t.root, |_| ()).unwrap();
        let s = p.stats();
        assert_eq!(
            s.buffer_misses, 0,
            "the scan must not have evicted the hot root"
        );
        assert_eq!(s.buffer_hits, 1);
    }
}
