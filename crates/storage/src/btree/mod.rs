//! Disk-resident B+tree.
//!
//! Serves two roles in the engine, mirroring the index configurations the
//! paper evaluates in Fig 8(c):
//!
//! * **index-organized (clustered) table** — full rows stored as leaf
//!   values, keyed by the clustering columns (`CluIndex`);
//! * **secondary index** — key = indexed columns (+ record id suffix for
//!   non-unique indexes), value = heap record id (`Index`).
//!
//! The root page id is stable for the lifetime of the tree: when the root
//! splits, its content moves to a fresh page and the root is rewritten as an
//! interior node in place, so catalog entries never need fixing up.
//!
//! Deletion removes leaf cells without rebalancing (see DESIGN.md §5); the
//! workloads here are insert/update heavy, and empty leaves remain chained
//! and are skipped by scans.

pub mod node;

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{PageId, PAGE_SIZE};
use node::MAX_CELL_PAYLOAD;
use std::ops::Bound;

/// A B+tree keyed by order-preserving byte strings (see [`crate::value`]).
///
/// `Clone` copies only the handle (root page id + cached length); both
/// clones address the same pages, so cloning is only sound when at most
/// one clone keeps writing — e.g. catalog templates cloned into
/// copy-on-write snapshot sessions (DESIGN.md §10).
#[derive(Clone)]
pub struct BTree {
    root: PageId,
    len: u64,
}

enum Ins {
    Done(Option<Vec<u8>>),
    Split {
        sep: Vec<u8>,
        right: u64,
        old: Option<Vec<u8>>,
    },
}

impl BTree {
    /// Allocates an empty tree (a single leaf root).
    pub fn create(pool: &mut BufferPool) -> Result<BTree> {
        let root = pool.allocate_page()?;
        pool.write_page(root, node::init_leaf)?;
        Ok(BTree { root, len: 0 })
    }

    /// Re-attaches to an existing tree (root page + entry count come from
    /// the catalog).
    pub fn open(root: PageId, len: u64) -> BTree {
        BTree { root, len }
    }

    /// The (stable) root page id.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point lookup.
    pub fn get(&self, pool: &mut BufferPool, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut pid = self.root;
        loop {
            enum Step {
                Descend(u64),
                Leaf(Option<Vec<u8>>),
            }
            let step = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    let (idx, found) = node::lower_bound(b, key);
                    Step::Leaf(found.then(|| node::leaf_val_at(b, idx).to_vec()))
                } else {
                    Step::Descend(node::child_for(b, key))
                }
            })?;
            match step {
                Step::Descend(c) => pid = PageId(c),
                Step::Leaf(v) => return Ok(v),
            }
        }
    }

    /// True when `key` is present (no value copy).
    pub fn contains(&self, pool: &mut BufferPool, key: &[u8]) -> Result<bool> {
        let mut pid = self.root;
        loop {
            let step = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    Err(node::lower_bound(b, key).1)
                } else {
                    Ok(node::child_for(b, key))
                }
            })?;
            match step {
                Ok(c) => pid = PageId(c),
                Err(found) => return Ok(found),
            }
        }
    }

    /// Inserts or replaces; returns the previous value if any.
    pub fn insert(
        &mut self,
        pool: &mut BufferPool,
        key: &[u8],
        val: &[u8],
    ) -> Result<Option<Vec<u8>>> {
        if key.len() + val.len() > MAX_CELL_PAYLOAD {
            return Err(StorageError::RecordTooLarge {
                size: key.len() + val.len(),
                max: MAX_CELL_PAYLOAD,
            });
        }
        let res = insert_rec(pool, self.root, key, val)?;
        let old = match res {
            Ins::Done(old) => old,
            Ins::Split { sep, right, old } => {
                // Root split: relocate the root's content so the root page
                // id stays stable, then turn the root into an interior node.
                let left = pool.allocate_page()?;
                let img: Box<[u8; PAGE_SIZE]> = pool.read_page(self.root, |b| Box::new(*b))?;
                pool.write_page(left, move |b| *b = *img)?;
                pool.write_page(self.root, |b| {
                    node::init_interior(b, left.0);
                    let ok = node::interior_insert_at(b, 0, &sep, right);
                    debug_assert!(ok, "fresh interior root must fit one cell");
                })?;
                old
            }
        };
        if old.is_none() {
            self.len += 1;
        }
        Ok(old)
    }

    /// Removes `key`; returns its previous value if present.
    pub fn delete(&mut self, pool: &mut BufferPool, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut pid = self.root;
        loop {
            let next = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    None
                } else {
                    Some(node::child_for(b, key))
                }
            })?;
            match next {
                Some(c) => pid = PageId(c),
                None => break,
            }
        }
        let old = pool.write_page(pid, |b| {
            let (idx, found) = node::lower_bound(b, key);
            if found {
                let v = node::leaf_val_at(b, idx).to_vec();
                node::remove_at(b, idx);
                Some(v)
            } else {
                None
            }
        })?;
        if old.is_some() {
            self.len -= 1;
        }
        Ok(old)
    }

    /// In-order scan of `[lo, hi]`; `f` returns `false` to stop early.
    pub fn scan_range(
        &self,
        pool: &mut BufferPool,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        // Descend to the leaf that would contain the lower bound.
        let mut pid = self.root;
        loop {
            let next = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    None
                } else {
                    Some(match lo {
                        Bound::Included(k) | Bound::Excluded(k) => node::child_for(b, k),
                        Bound::Unbounded => node::child_at(b, 0),
                    })
                }
            })?;
            match next {
                Some(c) => pid = PageId(c),
                None => break,
            }
        }
        let mut first_leaf = true;
        loop {
            let (stop, next) = pool.read_page(pid, |b| {
                let start = if first_leaf {
                    match lo {
                        Bound::Included(k) => node::lower_bound(b, k).0,
                        Bound::Excluded(k) => {
                            let (i, found) = node::lower_bound(b, k);
                            if found {
                                i + 1
                            } else {
                                i
                            }
                        }
                        Bound::Unbounded => 0,
                    }
                } else {
                    0
                };
                for i in start..node::num_cells(b) {
                    let k = node::key_at(b, i);
                    let past_hi = match hi {
                        Bound::Included(h) => k > h,
                        Bound::Excluded(h) => k >= h,
                        Bound::Unbounded => false,
                    };
                    if past_hi {
                        return (true, u64::MAX);
                    }
                    if !f(k, node::leaf_val_at(b, i)) {
                        return (true, u64::MAX);
                    }
                }
                (false, node::next_leaf(b))
            })?;
            if stop || next == u64::MAX {
                return Ok(());
            }
            pid = PageId(next);
            first_leaf = false;
        }
    }

    /// Scans all entries whose key starts with `prefix` (contiguous thanks
    /// to the order-preserving encoding); `f` returns `false` to stop.
    pub fn scan_prefix(
        &self,
        pool: &mut BufferPool,
        prefix: &[u8],
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        self.scan_range(pool, Bound::Included(prefix), Bound::Unbounded, |k, v| {
            if !k.starts_with(prefix) {
                return false;
            }
            f(k, v)
        })
    }

    /// Every page id reachable from the root (root first).
    fn collect_pages(&self, pool: &mut BufferPool) -> Result<Vec<PageId>> {
        let mut out = vec![self.root];
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            let children = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    Vec::new()
                } else {
                    (0..=node::num_cells(b))
                        .map(|i| PageId(node::child_at(b, i)))
                        .collect()
                }
            })?;
            out.extend_from_slice(&children);
            stack.extend_from_slice(&children);
        }
        Ok(out)
    }

    /// Removes every entry, releasing all pages except the root (which is
    /// re-initialised as an empty leaf).
    pub fn clear(&mut self, pool: &mut BufferPool) -> Result<()> {
        let pages = self.collect_pages(pool)?;
        for pid in pages.into_iter().skip(1) {
            pool.free_page(pid);
        }
        pool.write_page(self.root, node::init_leaf)?;
        self.len = 0;
        Ok(())
    }

    /// Destroys the tree, releasing every page including the root.
    pub fn destroy(mut self, pool: &mut BufferPool) -> Result<()> {
        self.clear(pool)?;
        pool.free_page(self.root);
        Ok(())
    }

    /// Tree height (1 = root is a leaf); used by tests and diagnostics.
    pub fn height(&self, pool: &mut BufferPool) -> Result<usize> {
        let mut h = 1;
        let mut pid = self.root;
        loop {
            let next = pool.read_page(pid, |b| {
                if node::is_leaf(b) {
                    None
                } else {
                    Some(node::child_at(b, 0))
                }
            })?;
            match next {
                Some(c) => {
                    pid = PageId(c);
                    h += 1;
                }
                None => return Ok(h),
            }
        }
    }
}

fn insert_rec(pool: &mut BufferPool, pid: PageId, key: &[u8], val: &[u8]) -> Result<Ins> {
    let leaf = pool.read_page(pid, node::is_leaf)?;
    if leaf {
        enum Outcome {
            Done(Option<Vec<u8>>),
            NeedSplit(Option<Vec<u8>>),
        }
        let outcome = pool.write_page(pid, |b| {
            let (idx, found) = node::lower_bound(b, key);
            let old = if found {
                let v = node::leaf_val_at(b, idx).to_vec();
                node::remove_at(b, idx);
                Some(v)
            } else {
                None
            };
            if node::leaf_insert_at(b, idx, key, val) {
                Outcome::Done(old)
            } else {
                Outcome::NeedSplit(old)
            }
        })?;
        let old = match outcome {
            Outcome::Done(old) => return Ok(Ins::Done(old)),
            Outcome::NeedSplit(old) => old,
        };
        // Split: gather cells (the replaced key, if any, is already gone),
        // add the new entry, and distribute across two leaves.
        let (mut cells, next) =
            pool.read_page(pid, |b| (node::leaf_cells(b), node::next_leaf(b)))?;
        let pos = match cells.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(_) => unreachable!("duplicate was removed above"),
            Err(p) => p,
        };
        cells.insert(pos, (key.to_vec(), val.to_vec()));
        let mid = split_point(cells.iter().map(|(k, v)| 4 + k.len() + v.len()));
        let right_pid = pool.allocate_page()?;
        let sep = cells[mid].0.clone();
        pool.write_page(pid, |b| {
            node::init_leaf(b);
            for (i, (k, v)) in cells[..mid].iter().enumerate() {
                let ok = node::leaf_insert_at(b, i, k, v);
                debug_assert!(ok);
            }
            node::set_next_leaf(b, right_pid.0);
        })?;
        pool.write_page(right_pid, |b| {
            node::init_leaf(b);
            for (i, (k, v)) in cells[mid..].iter().enumerate() {
                let ok = node::leaf_insert_at(b, i, k, v);
                debug_assert!(ok);
            }
            node::set_next_leaf(b, next);
        })?;
        return Ok(Ins::Split {
            sep,
            right: right_pid.0,
            old,
        });
    }

    let child = pool.read_page(pid, |b| node::child_for(b, key))?;
    match insert_rec(pool, PageId(child), key, val)? {
        Ins::Done(old) => Ok(Ins::Done(old)),
        Ins::Split { sep, right, old } => {
            let fitted = pool.write_page(pid, |b| {
                let (idx, _) = node::lower_bound(b, &sep);
                node::interior_insert_at(b, idx, &sep, right)
            })?;
            if fitted {
                return Ok(Ins::Done(old));
            }
            // Split this interior node; the middle key moves up.
            let (mut cells, leftmost) =
                pool.read_page(pid, |b| (node::interior_cells(b), node::leftmost_child(b)))?;
            let pos = match cells.binary_search_by(|(k, _)| k.as_slice().cmp(&sep)) {
                Ok(p) => p, // separators are unique in practice; tolerate
                Err(p) => p,
            };
            cells.insert(pos, (sep, right));
            let mid = split_point(cells.iter().map(|(k, _)| 2 + k.len() + 8));
            let (up_key, up_child) = cells[mid].clone();
            let right_pid = pool.allocate_page()?;
            pool.write_page(pid, |b| {
                node::init_interior(b, leftmost);
                for (i, (k, c)) in cells[..mid].iter().enumerate() {
                    let ok = node::interior_insert_at(b, i, k, *c);
                    debug_assert!(ok);
                }
            })?;
            pool.write_page(right_pid, |b| {
                node::init_interior(b, up_child);
                for (i, (k, c)) in cells[mid + 1..].iter().enumerate() {
                    let ok = node::interior_insert_at(b, i, k, *c);
                    debug_assert!(ok);
                }
            })?;
            Ok(Ins::Split {
                sep: up_key,
                right: right_pid.0,
                old,
            })
        }
    }
}

/// Number of cells to keep in the left node: the smallest count whose
/// cumulative bytes reach half the total. Byte-balanced splits keep fill
/// factors healthy for skewed payloads; both sides stay non-empty.
fn split_point(sizes: impl ExactSizeIterator<Item = usize> + Clone) -> usize {
    let n = sizes.len();
    debug_assert!(n >= 2, "cannot split fewer than two cells");
    let total: usize = sizes.clone().sum();
    let mut acc = 0usize;
    for (i, s) in sizes.enumerate() {
        acc += s;
        if acc * 2 >= total {
            return (i + 1).clamp(1, n - 1);
        }
    }
    n / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn pool() -> BufferPool {
        BufferPool::in_memory(64)
    }

    fn k(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn empty_tree_get_none() {
        let mut p = pool();
        let t = BTree::create(&mut p).unwrap();
        assert!(t.get(&mut p, b"x").unwrap().is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn insert_get_single() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        assert!(t.insert(&mut p, b"k", b"v").unwrap().is_none());
        assert_eq!(t.get(&mut p, b"k").unwrap().unwrap(), b"v");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn replace_returns_old_value() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        t.insert(&mut p, b"k", b"v1").unwrap();
        let old = t.insert(&mut p, b"k", b"v2").unwrap();
        assert_eq!(old.unwrap(), b"v1");
        assert_eq!(t.get(&mut p, b"k").unwrap().unwrap(), b"v2");
        assert_eq!(t.len(), 1, "replace must not grow len");
    }

    #[test]
    fn sequential_inserts_split_root() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        let n = 2000u64;
        for i in 0..n {
            t.insert(&mut p, &k(i), format!("val{i}").as_bytes())
                .unwrap();
        }
        assert_eq!(t.len(), n);
        assert!(t.height(&mut p).unwrap() >= 2);
        for i in 0..n {
            assert_eq!(
                t.get(&mut p, &k(i)).unwrap().unwrap(),
                format!("val{i}").as_bytes(),
                "key {i}"
            );
        }
        assert!(t.get(&mut p, &k(n)).unwrap().is_none());
    }

    #[test]
    fn reverse_and_random_inserts_match_oracle() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        let mut oracle = BTreeMap::new();
        // Reverse order
        for i in (0..500u64).rev() {
            t.insert(&mut p, &k(i), &k(i * 3)).unwrap();
            oracle.insert(k(i), k(i * 3));
        }
        // Pseudo-random interleaved updates
        let mut x = 99u64;
        for _ in 0..1500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = k((x >> 40) % 800);
            let val = k(x % 1000);
            t.insert(&mut p, &key, &val).unwrap();
            oracle.insert(key, val);
        }
        assert_eq!(t.len(), oracle.len() as u64);
        for (key, val) in &oracle {
            assert_eq!(&t.get(&mut p, key).unwrap().unwrap(), val);
        }
    }

    #[test]
    fn full_scan_is_sorted_and_complete() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        let mut x = 7u64;
        let mut keys = Vec::new();
        for _ in 0..1000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let key = k(x);
            t.insert(&mut p, &key, b"").unwrap();
            keys.push(key);
        }
        keys.sort();
        keys.dedup();
        let mut seen = Vec::new();
        t.scan_range(&mut p, Bound::Unbounded, Bound::Unbounded, |k, _| {
            seen.push(k.to_vec());
            true
        })
        .unwrap();
        assert_eq!(seen, keys);
    }

    #[test]
    fn range_scan_bounds() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        for i in 0..100u64 {
            t.insert(&mut p, &k(i), &k(i)).unwrap();
        }
        let collect = |p: &mut BufferPool, t: &BTree, lo: Bound<&[u8]>, hi: Bound<&[u8]>| {
            let mut out = Vec::new();
            t.scan_range(p, lo, hi, |key, _| {
                out.push(u64::from_be_bytes(key.try_into().unwrap()));
                true
            })
            .unwrap();
            out
        };
        let lo = k(10);
        let hi = k(20);
        assert_eq!(
            collect(&mut p, &t, Bound::Included(&lo), Bound::Included(&hi)),
            (10..=20).collect::<Vec<_>>()
        );
        assert_eq!(
            collect(&mut p, &t, Bound::Excluded(&lo), Bound::Excluded(&hi)),
            (11..20).collect::<Vec<_>>()
        );
        assert_eq!(
            collect(&mut p, &t, Bound::Unbounded, Bound::Excluded(&lo)),
            (0..10).collect::<Vec<_>>()
        );
        assert_eq!(
            collect(&mut p, &t, Bound::Included(&k(95)), Bound::Unbounded),
            (95..100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scan_early_stop() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        for i in 0..100u64 {
            t.insert(&mut p, &k(i), b"").unwrap();
        }
        let mut n = 0;
        t.scan_range(&mut p, Bound::Unbounded, Bound::Unbounded, |_, _| {
            n += 1;
            n < 7
        })
        .unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn prefix_scan() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        // Composite keys: (group, seq).
        for g in 0..10u8 {
            for s in 0..20u8 {
                t.insert(&mut p, &[g, s], &[g + s]).unwrap();
            }
        }
        let mut seen = Vec::new();
        t.scan_prefix(&mut p, &[4], |key, _| {
            seen.push(key[1]);
            true
        })
        .unwrap();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn delete_then_reinsert() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        for i in 0..300u64 {
            t.insert(&mut p, &k(i), &k(i)).unwrap();
        }
        for i in (0..300u64).step_by(2) {
            assert!(t.delete(&mut p, &k(i)).unwrap().is_some(), "delete {i}");
        }
        assert_eq!(t.len(), 150);
        for i in 0..300u64 {
            let got = t.get(&mut p, &k(i)).unwrap();
            if i % 2 == 0 {
                assert!(got.is_none(), "key {i} should be gone");
            } else {
                assert!(got.is_some(), "key {i} should remain");
            }
        }
        // Deleting a missing key is a no-op.
        assert!(t.delete(&mut p, &k(0)).unwrap().is_none());
        // Re-insert over the holes.
        for i in (0..300u64).step_by(2) {
            t.insert(&mut p, &k(i), b"again").unwrap();
        }
        assert_eq!(t.len(), 300);
        assert_eq!(t.get(&mut p, &k(42)).unwrap().unwrap(), b"again");
    }

    #[test]
    fn clear_releases_pages_and_tree_reusable() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        for i in 0..2000u64 {
            t.insert(&mut p, &k(i), &[0u8; 32]).unwrap();
        }
        let pages_before = p.num_disk_pages();
        t.clear(&mut p).unwrap();
        assert!(t.is_empty());
        assert!(t.get(&mut p, &k(5)).unwrap().is_none());
        // Freed pages are recycled: rebuilding should not grow the file.
        for i in 0..2000u64 {
            t.insert(&mut p, &k(i), &[0u8; 32]).unwrap();
        }
        assert!(
            p.num_disk_pages() <= pages_before + 1,
            "pages should be recycled ({} -> {})",
            pages_before,
            p.num_disk_pages()
        );
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut p = pool();
        let mut t = BTree::create(&mut p).unwrap();
        let err = t.insert(&mut p, b"k", &vec![0u8; PAGE_SIZE]);
        assert!(matches!(err, Err(StorageError::RecordTooLarge { .. })));
    }

    #[test]
    fn works_through_tiny_buffer_pool() {
        // Exercise eviction paths during structural changes.
        let mut p = BufferPool::in_memory(3);
        let mut t = BTree::create(&mut p).unwrap();
        let mut oracle = BTreeMap::new();
        let mut x = 5u64;
        for _ in 0..3000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = k(x >> 32);
            t.insert(&mut p, &key, &k(x)).unwrap();
            oracle.insert(key, k(x));
        }
        for (key, val) in &oracle {
            assert_eq!(
                &t.get(&mut p, key).unwrap().unwrap(),
                val,
                "through evictions"
            );
        }
        let mut count = 0u64;
        t.scan_range(&mut p, Bound::Unbounded, Bound::Unbounded, |_, _| {
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, oracle.len() as u64);
    }
}
