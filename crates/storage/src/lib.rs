//! # fempath-storage
//!
//! Disk-backed storage engine used by the `fempath` relational graph system.
//!
//! The crate provides the physical layer a relational database needs:
//!
//! * [`Value`] / row encoding — typed column values with an order-preserving
//!   binary key encoding so index comparisons are plain `memcmp`s,
//! * [`Page`]-granular I/O through a [`DiskBackend`] (file-backed or
//!   in-memory),
//! * a pin-counted LRU [`BufferPool`] with hit/miss/eviction accounting
//!   (the paper's buffer-size experiments — Fig 8(b)/9(g) — sweep its
//!   capacity),
//! * slotted-page [`HeapFile`]s for unordered table storage, and
//! * a [`BTree`] used both as an index-organized ("clustered") table and as
//!   a secondary index — the `CluIndex` / `Index` configurations of Fig 8(c).
//!
//! Everything is single-writer *per session* by design: the paper's
//! workload is one client connection driving SQL statements, so the engine
//! favours simplicity and deterministic accounting over locking.
//! Concurrency comes from isolation instead: [`BufferPool::snapshot_pages`]
//! freezes a database into an `Arc`-shared read-only page image, and
//! [`SnapshotDisk`] gives each session a private copy-on-write view over
//! it (DESIGN.md §10).

#![forbid(unsafe_code)]

pub mod buffer;
pub mod chunk;
pub mod disk;
pub mod error;
pub mod heap;
pub mod page;
pub mod row;
pub mod segment;
pub mod stats;
pub mod value;

pub mod btree;

pub use btree::{BTree, BTreeBulkBuilder, BTreeScanCursor};
pub use buffer::BufferPool;
pub use chunk::{chunk_from_rows, Chunk, Column, NullMask, CHUNK_CAPACITY};
pub use disk::{DiskBackend, FileDisk, MemDisk, SnapshotDisk, SnapshotPages};
pub use error::{Result, StorageError};
pub use heap::{HeapFile, HeapScanCursor, RecordId};
pub use page::{Page, PageId, PAGE_SIZE};
pub use row::{
    decode_row, decode_row_into_chunk, encode_row, encode_row_from_chunk, encode_row_into,
};
pub use segment::{
    decode_edge_segment, decode_edge_segment_into_chunk, decode_edge_segment_with,
    encode_edge_segment, segment_edge_count, SegmentWriter, SEG_MAX_BYTES, SEG_MAX_EDGES,
};
pub use stats::IoStats;
pub use value::{decode_key, encode_key, encode_key_into, DataType, Value};
