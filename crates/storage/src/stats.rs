//! Physical I/O accounting.
//!
//! The paper's evaluation repeatedly appeals to I/O behaviour ("the
//! redundant I/O cost for accessing edges of multiple nodes when they are
//! stored in one data block", §4). These counters make that behaviour
//! observable: every buffer-pool hit, miss, eviction and disk transfer is
//! tallied so experiments can report physical reads alongside wall time.

/// Snapshot of buffer-pool / disk counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page requests satisfied from the buffer pool.
    pub buffer_hits: u64,
    /// Page requests that had to go to disk.
    pub buffer_misses: u64,
    /// Frames recycled to make room (subset of misses once the pool fills).
    pub evictions: u64,
    /// Physical page reads issued to the disk backend.
    pub disk_reads: u64,
    /// Physical page writes issued to the disk backend (eviction + flush).
    pub disk_writes: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Probationary frames re-referenced and moved to the protected tier
    /// (the 2Q policy's "second touch" signal).
    pub promotions: u64,
    /// Protected frames pushed back to probationary to hold the tier's
    /// size target.
    pub demotions: u64,
    /// Evictions that took a probationary (touched-once) frame — a high
    /// share here means scans are absorbing their own evictions instead
    /// of wiping the hot set.
    pub probationary_evictions: u64,
}

impl IoStats {
    /// Fraction of page requests served from memory, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.buffer_hits + self.buffer_misses;
        if total == 0 {
            return 1.0;
        }
        self.buffer_hits as f64 / total as f64
    }

    /// Total page requests.
    pub fn accesses(&self) -> u64 {
        self.buffer_hits + self.buffer_misses
    }

    /// Counter-wise difference (`self - earlier`), for windowed measurement.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            buffer_hits: self.buffer_hits - earlier.buffer_hits,
            buffer_misses: self.buffer_misses - earlier.buffer_misses,
            evictions: self.evictions - earlier.evictions,
            disk_reads: self.disk_reads - earlier.disk_reads,
            disk_writes: self.disk_writes - earlier.disk_writes,
            allocations: self.allocations - earlier.allocations,
            promotions: self.promotions - earlier.promotions,
            demotions: self.demotions - earlier.demotions,
            probationary_evictions: self.probationary_evictions - earlier.probationary_evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_empty_is_one() {
        assert_eq!(IoStats::default().hit_rate(), 1.0);
    }

    #[test]
    fn hit_rate_half() {
        let s = IoStats {
            buffer_hits: 5,
            buffer_misses: 5,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.accesses(), 10);
    }

    #[test]
    fn since_subtracts() {
        let a = IoStats {
            buffer_hits: 10,
            buffer_misses: 4,
            evictions: 1,
            disk_reads: 4,
            disk_writes: 2,
            allocations: 3,
            promotions: 5,
            demotions: 4,
            probationary_evictions: 1,
        };
        let b = IoStats {
            buffer_hits: 4,
            buffer_misses: 1,
            evictions: 0,
            disk_reads: 1,
            disk_writes: 1,
            allocations: 1,
            promotions: 2,
            demotions: 1,
            probationary_evictions: 0,
        };
        let d = a.since(&b);
        assert_eq!(d.buffer_hits, 6);
        assert_eq!(d.buffer_misses, 3);
        assert_eq!(d.evictions, 1);
        assert_eq!(d.disk_reads, 3);
        assert_eq!(d.disk_writes, 1);
        assert_eq!(d.allocations, 2);
        assert_eq!(d.promotions, 3);
        assert_eq!(d.demotions, 3);
        assert_eq!(d.probationary_evictions, 1);
    }
}
