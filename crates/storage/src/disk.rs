//! Disk backends: where pages physically live.
//!
//! Three implementations are provided: [`FileDisk`] (a single file, page
//! `i` at byte offset `i * PAGE_SIZE`) for realistic disk-resident runs,
//! [`MemDisk`] for tests and for modelling a fully-cached database, and
//! [`SnapshotDisk`] — a copy-on-write view over an `Arc`-shared frozen
//! page image, the storage half of the shared-snapshot / per-session
//! architecture (DESIGN.md §10).

use crate::error::{Result, StorageError};
use crate::page::{PageId, PAGE_SIZE};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// Abstraction over the physical medium holding pages. `Send` so a
/// database session owning a backend can move to a worker thread.
pub trait DiskBackend: Send {
    /// Reads page `pid` into `buf`.
    fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()>;

    /// Writes `buf` to page `pid`.
    fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()>;

    /// Allocates a fresh zeroed page and returns its id.
    fn allocate_page(&mut self) -> Result<PageId>;

    /// Number of pages ever allocated.
    fn num_pages(&self) -> u64;

    /// Flushes any backend buffering to stable storage.
    fn sync(&mut self) -> Result<()>;
}

/// A file-backed disk: one flat file of pages.
pub struct FileDisk {
    file: File,
    num_pages: u64,
}

impl FileDisk {
    /// Opens (creating if needed) the file at `path` as a page store.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileDisk {
            file,
            num_pages: len / PAGE_SIZE as u64,
        })
    }

    /// Creates a page store in a fresh temporary file that is unlinked on
    /// drop (the usual way benches and examples run "disk-resident").
    pub fn temp() -> Result<Self> {
        let mut path = std::env::temp_dir();
        let unique = format!(
            "fempath-{}-{:x}.db",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        );
        path.push(unique);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        // Unlink immediately: the fd keeps the storage alive, the name goes
        // away, so aborted runs leave nothing behind.
        let _ = std::fs::remove_file(&path);
        Ok(FileDisk { file, num_pages: 0 })
    }

    fn check(&self, pid: PageId) -> Result<u64> {
        if !pid.is_valid() || pid.0 >= self.num_pages {
            return Err(StorageError::InvalidPageId(pid.0));
        }
        Ok(pid.0 * PAGE_SIZE as u64)
    }
}

impl DiskBackend for FileDisk {
    fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let off = self.check(pid)?;
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        let off = self.check(pid)?;
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn allocate_page(&mut self) -> Result<PageId> {
        let pid = PageId(self.num_pages);
        self.num_pages += 1;
        self.file.seek(SeekFrom::Start(pid.0 * PAGE_SIZE as u64))?;
        self.file.write_all(&[0u8; PAGE_SIZE])?;
        Ok(pid)
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// An in-memory disk, useful for unit tests and all-in-buffer modelling.
#[derive(Default)]
pub struct MemDisk {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl MemDisk {
    /// An empty in-memory disk.
    pub fn new() -> Self {
        MemDisk::default()
    }

    fn check(&self, pid: PageId) -> Result<usize> {
        if !pid.is_valid() || pid.0 as usize >= self.pages.len() {
            return Err(StorageError::InvalidPageId(pid.0));
        }
        Ok(pid.0 as usize)
    }
}

impl DiskBackend for MemDisk {
    fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let i = self.check(pid)?;
        buf.copy_from_slice(&self.pages[i][..]);
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        let i = self.check(pid)?;
        self.pages[i].copy_from_slice(buf);
        Ok(())
    }

    fn allocate_page(&mut self) -> Result<PageId> {
        let pid = PageId(self.pages.len() as u64);
        self.pages
            .push(vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap());
        Ok(pid)
    }

    fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// An immutable page image shared between sessions. Produced by
/// [`crate::buffer::BufferPool::snapshot_pages`]; consumed by
/// [`SnapshotDisk`].
pub type SnapshotPages = Arc<Vec<Box<[u8; PAGE_SIZE]>>>;

/// A copy-on-write disk over a shared read-only page image.
///
/// Reads of base pages come straight from the shared snapshot (no copy
/// beyond the buffer-pool frame fill); the first write to any page —
/// base or fresh — lands in private storage owned by this backend.
/// Page ids are stable across the base/private split, so heap files and
/// B+trees frozen into the snapshot keep working unchanged, and pages a
/// session allocates (its private working tables) start past the end of
/// the base image. Many sessions can therefore share one graph image
/// while each mutates its own working state.
///
/// Private storage is split by access pattern (DESIGN.md §13): pages
/// allocated past the base image — the per-query working tables, by far
/// the hottest session-private pages — live in a dense `Vec` indexed by
/// `pid - base_len`, so every working-table page I/O is an array index;
/// the sparse `HashMap` overlay is kept only for the rare copy-on-write
/// of a base-image page.
pub struct SnapshotDisk {
    base: SnapshotPages,
    /// COW copies of base-image pages this session overwrote (sparse).
    cow: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    /// Session-private pages past the base image (dense;
    /// index = `pid - base.len()`).
    private: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl SnapshotDisk {
    /// A copy-on-write view over `base`.
    pub fn new(base: SnapshotPages) -> Self {
        SnapshotDisk {
            base,
            cow: HashMap::new(),
            private: Vec::new(),
        }
    }

    /// Number of pages in the shared base image.
    pub fn base_pages(&self) -> u64 {
        self.base.len() as u64
    }

    /// Number of pages this session has privately overlaid or allocated.
    pub fn private_pages(&self) -> usize {
        self.cow.len() + self.private.len()
    }

    fn check(&self, pid: PageId) -> Result<u64> {
        if !pid.is_valid() || pid.0 >= self.num_pages() {
            return Err(StorageError::InvalidPageId(pid.0));
        }
        Ok(pid.0)
    }
}

impl DiskBackend for SnapshotDisk {
    fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let pid = self.check(pid)?;
        let base_len = self.base.len() as u64;
        let page = if pid >= base_len {
            &self.private[(pid - base_len) as usize]
        } else if let Some(p) = self.cow.get(&pid) {
            p
        } else {
            &self.base[pid as usize]
        };
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        let pid = self.check(pid)?;
        let base_len = self.base.len() as u64;
        if pid >= base_len {
            self.private[(pid - base_len) as usize].copy_from_slice(buf);
        } else {
            match self.cow.entry(pid) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().copy_from_slice(buf);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(Box::new(*buf));
                }
            }
        }
        Ok(())
    }

    fn allocate_page(&mut self) -> Result<PageId> {
        let pid = PageId(self.num_pages());
        self.private
            .push(vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap());
        Ok(pid)
    }

    fn num_pages(&self) -> u64 {
        self.base.len() as u64 + self.private.len() as u64
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &mut dyn DiskBackend) {
        let p0 = disk.allocate_page().unwrap();
        let p1 = disk.allocate_page().unwrap();
        assert_ne!(p0, p1);
        assert_eq!(disk.num_pages(), 2);

        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAA;
        buf[PAGE_SIZE - 1] = 0x55;
        disk.write_page(p1, &buf).unwrap();

        let mut rd = [0u8; PAGE_SIZE];
        disk.read_page(p1, &mut rd).unwrap();
        assert_eq!(rd[0], 0xAA);
        assert_eq!(rd[PAGE_SIZE - 1], 0x55);

        // Fresh pages come back zeroed.
        disk.read_page(p0, &mut rd).unwrap();
        assert!(rd.iter().all(|&b| b == 0));

        // Out-of-range reads error.
        assert!(disk.read_page(PageId(99), &mut rd).is_err());
        assert!(disk.read_page(PageId::INVALID, &mut rd).is_err());
    }

    #[test]
    fn memdisk_basics() {
        exercise(&mut MemDisk::new());
    }

    #[test]
    fn filedisk_basics() {
        exercise(&mut FileDisk::temp().unwrap());
    }

    #[test]
    fn snapshot_disk_shares_base_and_overlays_writes() {
        // Build a 2-page base image.
        let mut base: Vec<Box<[u8; PAGE_SIZE]>> = Vec::new();
        for fill in [0x11u8, 0x22] {
            base.push(vec![fill; PAGE_SIZE].into_boxed_slice().try_into().unwrap());
        }
        let base: SnapshotPages = Arc::new(base);

        let mut a = SnapshotDisk::new(base.clone());
        let mut b = SnapshotDisk::new(base.clone());
        let mut buf = [0u8; PAGE_SIZE];

        // Both sessions see the base content.
        a.read_page(PageId(0), &mut buf).unwrap();
        assert_eq!(buf[0], 0x11);
        b.read_page(PageId(1), &mut buf).unwrap();
        assert_eq!(buf[0], 0x22);

        // A write in session `a` is private: `b` and the base stay intact.
        buf.fill(0xAA);
        a.write_page(PageId(0), &buf).unwrap();
        a.read_page(PageId(0), &mut buf).unwrap();
        assert_eq!(buf[0], 0xAA);
        b.read_page(PageId(0), &mut buf).unwrap();
        assert_eq!(buf[0], 0x11);
        assert_eq!(base[0][0], 0x11);

        // Fresh allocations start past the base image, per session.
        let pa = a.allocate_page().unwrap();
        let pb = b.allocate_page().unwrap();
        assert_eq!(pa, PageId(2));
        assert_eq!(pb, PageId(2));
        buf.fill(0x77);
        a.write_page(pa, &buf).unwrap();
        a.read_page(pa, &mut buf).unwrap();
        assert_eq!(buf[0], 0x77);
        // Session b's page 2 is its own zeroed page.
        b.read_page(pb, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0));
        assert_eq!(a.base_pages(), 2);
        assert_eq!(a.private_pages(), 2);
    }

    #[test]
    fn snapshot_disk_dense_private_pages_roundtrip() {
        // Working-table pages (allocated past the base image) live in the
        // dense private vector; overwriting a base page uses the sparse
        // COW map. Both must round-trip independently.
        let base: SnapshotPages = Arc::new(vec![vec![0x0Fu8; PAGE_SIZE]
            .into_boxed_slice()
            .try_into()
            .unwrap()]);
        let mut d = SnapshotDisk::new(base);
        let mut buf = [0u8; PAGE_SIZE];
        let pids: Vec<_> = (0..16).map(|_| d.allocate_page().unwrap()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            buf.fill(i as u8 + 1);
            d.write_page(pid, &buf).unwrap();
        }
        for (i, &pid) in pids.iter().enumerate() {
            d.read_page(pid, &mut buf).unwrap();
            assert_eq!(buf[0], i as u8 + 1);
        }
        assert_eq!(d.private_pages(), 16, "no COW entries yet");
        buf.fill(0xEE);
        d.write_page(PageId(0), &buf).unwrap();
        assert_eq!(d.private_pages(), 17, "base overwrite lands in the COW map");
        d.read_page(PageId(0), &mut buf).unwrap();
        assert_eq!(buf[0], 0xEE);
        // Private pages are unaffected by the base overwrite.
        d.read_page(pids[3], &mut buf).unwrap();
        assert_eq!(buf[0], 4);
        assert_eq!(d.num_pages(), 17);
    }

    #[test]
    fn filedisk_persists_across_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("fempath-test-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut d = FileDisk::open(&path).unwrap();
            let p = d.allocate_page().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[7] = 77;
            d.write_page(p, &buf).unwrap();
            d.sync().unwrap();
        }
        {
            let mut d = FileDisk::open(&path).unwrap();
            assert_eq!(d.num_pages(), 1);
            let mut buf = [0u8; PAGE_SIZE];
            d.read_page(PageId(0), &mut buf).unwrap();
            assert_eq!(buf[7], 77);
        }
        let _ = std::fs::remove_file(&path);
    }
}
