//! Disk backends: where pages physically live.
//!
//! Two implementations are provided: [`FileDisk`] (a single file, page
//! `i` at byte offset `i * PAGE_SIZE`) for realistic disk-resident runs, and
//! [`MemDisk`] for tests and for modelling a fully-cached database.

use crate::error::{Result, StorageError};
use crate::page::{PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Abstraction over the physical medium holding pages.
pub trait DiskBackend {
    /// Reads page `pid` into `buf`.
    fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()>;

    /// Writes `buf` to page `pid`.
    fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()>;

    /// Allocates a fresh zeroed page and returns its id.
    fn allocate_page(&mut self) -> Result<PageId>;

    /// Number of pages ever allocated.
    fn num_pages(&self) -> u64;

    /// Flushes any backend buffering to stable storage.
    fn sync(&mut self) -> Result<()>;
}

/// A file-backed disk: one flat file of pages.
pub struct FileDisk {
    file: File,
    num_pages: u64,
}

impl FileDisk {
    /// Opens (creating if needed) the file at `path` as a page store.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileDisk {
            file,
            num_pages: len / PAGE_SIZE as u64,
        })
    }

    /// Creates a page store in a fresh temporary file that is unlinked on
    /// drop (the usual way benches and examples run "disk-resident").
    pub fn temp() -> Result<Self> {
        let mut path = std::env::temp_dir();
        let unique = format!(
            "fempath-{}-{:x}.db",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        );
        path.push(unique);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        // Unlink immediately: the fd keeps the storage alive, the name goes
        // away, so aborted runs leave nothing behind.
        let _ = std::fs::remove_file(&path);
        Ok(FileDisk { file, num_pages: 0 })
    }

    fn check(&self, pid: PageId) -> Result<u64> {
        if !pid.is_valid() || pid.0 >= self.num_pages {
            return Err(StorageError::InvalidPageId(pid.0));
        }
        Ok(pid.0 * PAGE_SIZE as u64)
    }
}

impl DiskBackend for FileDisk {
    fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let off = self.check(pid)?;
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        let off = self.check(pid)?;
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    fn allocate_page(&mut self) -> Result<PageId> {
        let pid = PageId(self.num_pages);
        self.num_pages += 1;
        self.file.seek(SeekFrom::Start(pid.0 * PAGE_SIZE as u64))?;
        self.file.write_all(&[0u8; PAGE_SIZE])?;
        Ok(pid)
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// An in-memory disk, useful for unit tests and all-in-buffer modelling.
#[derive(Default)]
pub struct MemDisk {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl MemDisk {
    /// An empty in-memory disk.
    pub fn new() -> Self {
        MemDisk::default()
    }

    fn check(&self, pid: PageId) -> Result<usize> {
        if !pid.is_valid() || pid.0 as usize >= self.pages.len() {
            return Err(StorageError::InvalidPageId(pid.0));
        }
        Ok(pid.0 as usize)
    }
}

impl DiskBackend for MemDisk {
    fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let i = self.check(pid)?;
        buf.copy_from_slice(&self.pages[i][..]);
        Ok(())
    }

    fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        let i = self.check(pid)?;
        self.pages[i].copy_from_slice(buf);
        Ok(())
    }

    fn allocate_page(&mut self) -> Result<PageId> {
        let pid = PageId(self.pages.len() as u64);
        self.pages
            .push(vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap());
        Ok(pid)
    }

    fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &mut dyn DiskBackend) {
        let p0 = disk.allocate_page().unwrap();
        let p1 = disk.allocate_page().unwrap();
        assert_ne!(p0, p1);
        assert_eq!(disk.num_pages(), 2);

        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAA;
        buf[PAGE_SIZE - 1] = 0x55;
        disk.write_page(p1, &buf).unwrap();

        let mut rd = [0u8; PAGE_SIZE];
        disk.read_page(p1, &mut rd).unwrap();
        assert_eq!(rd[0], 0xAA);
        assert_eq!(rd[PAGE_SIZE - 1], 0x55);

        // Fresh pages come back zeroed.
        disk.read_page(p0, &mut rd).unwrap();
        assert!(rd.iter().all(|&b| b == 0));

        // Out-of-range reads error.
        assert!(disk.read_page(PageId(99), &mut rd).is_err());
        assert!(disk.read_page(PageId::INVALID, &mut rd).is_err());
    }

    #[test]
    fn memdisk_basics() {
        exercise(&mut MemDisk::new());
    }

    #[test]
    fn filedisk_basics() {
        exercise(&mut FileDisk::temp().unwrap());
    }

    #[test]
    fn filedisk_persists_across_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("fempath-test-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut d = FileDisk::open(&path).unwrap();
            let p = d.allocate_page().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[7] = 77;
            d.write_page(p, &buf).unwrap();
            d.sync().unwrap();
        }
        {
            let mut d = FileDisk::open(&path).unwrap();
            assert_eq!(d.num_pages(), 1);
            let mut buf = [0u8; PAGE_SIZE];
            d.read_page(PageId(0), &mut buf).unwrap();
            assert_eq!(buf[7], 77);
        }
        let _ = std::fs::remove_file(&path);
    }
}
