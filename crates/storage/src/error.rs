//! Error type shared by the storage layer.

use std::fmt;

/// Errors raised by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A page id was out of the range known to the disk backend.
    InvalidPageId(u64),
    /// A record id referenced a missing page/slot.
    InvalidRecordId { page: u64, slot: u16 },
    /// A record was too large to ever fit in a page.
    RecordTooLarge { size: usize, max: usize },
    /// Row or key bytes could not be decoded.
    Corrupt(String),
    /// A text value used in a key contained an interior NUL byte, which the
    /// order-preserving key encoding cannot represent.
    NulInTextKey,
    /// The buffer pool had no evictable frame (everything pinned).
    BufferExhausted,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::InvalidPageId(p) => write!(f, "invalid page id {p}"),
            StorageError::InvalidRecordId { page, slot } => {
                write!(f, "invalid record id (page {page}, slot {slot})")
            }
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds maximum {max}")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StorageError::NulInTextKey => {
                write!(f, "text value used in index key contains a NUL byte")
            }
            StorageError::BufferExhausted => {
                write!(f, "buffer pool exhausted: all frames pinned")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StorageError>;
