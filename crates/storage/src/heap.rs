//! Slotted-page heap files: unordered record storage.
//!
//! A heap file is a list of pages, each with a classic slot directory
//! growing from the header and cell payloads growing from the end of the
//! page. Records are addressed by [`RecordId`] (page index within the file +
//! slot). Records never move pages on update *unless* they grow beyond the
//! page's free space, in which case the caller is told the new location so
//! secondary indexes can be fixed up.
//!
//! Heap metadata (the list of page ids and per-page free space) is kept in
//! memory and rebuilt from the catalog on open; crash recovery is out of
//! scope (see DESIGN.md §5).

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{codec, PageId, PAGE_SIZE};

const HDR_NUM_SLOTS: usize = 0; // u16
const HDR_CELL_START: usize = 2; // u16
const HDR_DEAD: usize = 4; // u16 bytes of reclaimable cell space
const HDR_SIZE: usize = 6;
const SLOT_SIZE: usize = 4; // u16 offset + u16 length
const DEAD_SLOT: u16 = u16::MAX;

/// Largest record a heap page can hold.
pub const MAX_RECORD: usize = PAGE_SIZE - HDR_SIZE - SLOT_SIZE;

/// Stable address of a record: page index within the heap file + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    pub page: u32,
    pub slot: u16,
}

impl RecordId {
    /// Packs the rid into a single integer (used to store rids inside
    /// secondary-index payloads).
    pub fn to_u64(self) -> u64 {
        ((self.page as u64) << 16) | self.slot as u64
    }

    /// Inverse of [`RecordId::to_u64`].
    pub fn from_u64(v: u64) -> Self {
        RecordId {
            page: (v >> 16) as u32,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

/// An unordered record file over the buffer pool.
///
/// `Clone` duplicates only the in-memory metadata (page list, free-space
/// hints, row count) — both clones address the same pages, so cloning is
/// only sound when at most one clone keeps writing (e.g. catalog templates
/// cloned into copy-on-write snapshot sessions, DESIGN.md §10).
#[derive(Clone)]
pub struct HeapFile {
    pages: Vec<PageId>,
    /// Usable free bytes per page (contiguous + dead), kept in memory.
    free: Vec<u16>,
    len: u64,
}

fn init_page(buf: &mut [u8; PAGE_SIZE]) {
    codec::put_u16(buf, HDR_NUM_SLOTS, 0);
    codec::put_u16(buf, HDR_CELL_START, PAGE_SIZE as u16);
    codec::put_u16(buf, HDR_DEAD, 0);
}

fn page_free(buf: &[u8; PAGE_SIZE]) -> usize {
    let n = codec::get_u16(buf, HDR_NUM_SLOTS) as usize;
    let cell_start = codec::get_u16(buf, HDR_CELL_START) as usize;
    let dead = codec::get_u16(buf, HDR_DEAD) as usize;
    cell_start - (HDR_SIZE + n * SLOT_SIZE) + dead
}

/// Rewrites all live cells tightly against the end of the page, zeroing the
/// dead-byte counter. Slot numbers are preserved.
fn compact(buf: &mut [u8; PAGE_SIZE]) {
    let n = codec::get_u16(buf, HDR_NUM_SLOTS) as usize;
    let mut cells: Vec<(usize, Vec<u8>)> = Vec::with_capacity(n);
    for s in 0..n {
        let so = HDR_SIZE + s * SLOT_SIZE;
        let off = codec::get_u16(buf, so);
        if off == DEAD_SLOT {
            continue;
        }
        let len = codec::get_u16(buf, so + 2) as usize;
        cells.push((s, buf[off as usize..off as usize + len].to_vec()));
    }
    let mut cell_start = PAGE_SIZE;
    for (s, bytes) in cells {
        cell_start -= bytes.len();
        buf[cell_start..cell_start + bytes.len()].copy_from_slice(&bytes);
        let so = HDR_SIZE + s * SLOT_SIZE;
        codec::put_u16(buf, so, cell_start as u16);
        codec::put_u16(buf, so + 2, bytes.len() as u16);
    }
    codec::put_u16(buf, HDR_CELL_START, cell_start as u16);
    codec::put_u16(buf, HDR_DEAD, 0);
}

/// Inserts `bytes` into the page, reusing a dead slot when available.
/// Returns the slot number, or `None` if the page lacks space.
fn page_insert(buf: &mut [u8; PAGE_SIZE], bytes: &[u8]) -> Option<u16> {
    let n = codec::get_u16(buf, HDR_NUM_SLOTS) as usize;
    // Look for a reusable dead slot first so rid space stays dense.
    let mut slot = None;
    for s in 0..n {
        if codec::get_u16(buf, HDR_SIZE + s * SLOT_SIZE) == DEAD_SLOT {
            slot = Some(s);
            break;
        }
    }
    let needs_new_slot = slot.is_none();
    let needed = bytes.len() + if needs_new_slot { SLOT_SIZE } else { 0 };
    if page_free(buf) < needed {
        return None;
    }
    let cell_start = codec::get_u16(buf, HDR_CELL_START) as usize;
    let slot_area_end = HDR_SIZE + (n + usize::from(needs_new_slot)) * SLOT_SIZE;
    if cell_start.saturating_sub(slot_area_end) < bytes.len() {
        compact(buf);
    }
    let cell_start = codec::get_u16(buf, HDR_CELL_START) as usize - bytes.len();
    buf[cell_start..cell_start + bytes.len()].copy_from_slice(bytes);
    codec::put_u16(buf, HDR_CELL_START, cell_start as u16);
    let s = slot.unwrap_or(n);
    if needs_new_slot {
        codec::put_u16(buf, HDR_NUM_SLOTS, (n + 1) as u16);
    }
    let so = HDR_SIZE + s * SLOT_SIZE;
    codec::put_u16(buf, so, cell_start as u16);
    codec::put_u16(buf, so + 2, bytes.len() as u16);
    Some(s as u16)
}

/// Updates the record in `slot` within the page when possible: shrink or
/// same-size overwrites in place; growth re-inserts into this page's free
/// space under the same slot number. Returns `Ok(false)` when the record
/// no longer fits the page — its old cell is then already dead and the
/// caller must re-insert the bytes elsewhere.
fn page_update_in_place(buf: &mut [u8; PAGE_SIZE], rid: RecordId, bytes: &[u8]) -> Result<bool> {
    let n = codec::get_u16(buf, HDR_NUM_SLOTS);
    let slot = rid.slot;
    if slot >= n {
        return Err(StorageError::InvalidRecordId {
            page: rid.page as u64,
            slot,
        });
    }
    let so = HDR_SIZE + slot as usize * SLOT_SIZE;
    let off = codec::get_u16(buf, so);
    if off == DEAD_SLOT {
        return Err(StorageError::InvalidRecordId {
            page: rid.page as u64,
            slot,
        });
    }
    let old_len = codec::get_u16(buf, so + 2) as usize;
    if bytes.len() <= old_len {
        buf[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
        codec::put_u16(buf, so + 2, bytes.len() as u16);
        let dead = codec::get_u16(buf, HDR_DEAD);
        codec::put_u16(buf, HDR_DEAD, dead + (old_len - bytes.len()) as u16);
        return Ok(true);
    }
    let dead = codec::get_u16(buf, HDR_DEAD);
    codec::put_u16(buf, HDR_DEAD, dead + old_len as u16);
    codec::put_u16(buf, so, DEAD_SLOT);
    if page_free(buf) >= bytes.len() {
        let cell_start = codec::get_u16(buf, HDR_CELL_START) as usize;
        let slot_area_end = HDR_SIZE + n as usize * SLOT_SIZE;
        if cell_start.saturating_sub(slot_area_end) < bytes.len() {
            compact(buf);
        }
        let cell_start = codec::get_u16(buf, HDR_CELL_START) as usize - bytes.len();
        buf[cell_start..cell_start + bytes.len()].copy_from_slice(bytes);
        codec::put_u16(buf, HDR_CELL_START, cell_start as u16);
        codec::put_u16(buf, so, cell_start as u16);
        codec::put_u16(buf, so + 2, bytes.len() as u16);
        return Ok(true);
    }
    Ok(false)
}

/// Resumable batched scan position over a [`HeapFile`]
/// (see [`HeapFile::batch_cursor`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct HeapScanCursor {
    page_idx: usize,
    slot: u16,
}

impl HeapScanCursor {
    /// Decodes up to `max` further records into `chunk` (appending), also
    /// recording their ids into `rids` when given. Returns `false` once
    /// the file is exhausted. The underlying file must not be mutated
    /// between calls.
    pub fn next_batch(
        &mut self,
        heap: &HeapFile,
        pool: &mut BufferPool,
        chunk: &mut crate::chunk::Chunk,
        mut rids: Option<&mut Vec<RecordId>>,
        max: usize,
    ) -> Result<bool> {
        let mut added = 0usize;
        while self.page_idx < heap.pages.len() {
            if added >= max {
                return Ok(true);
            }
            let pid = heap.pages[self.page_idx];
            let page_idx = self.page_idx;
            let start_slot = self.slot;
            let rids_ref = &mut rids;
            let (next_slot, page_done) = pool.read_page(pid, |buf| {
                let n = codec::get_u16(buf, HDR_NUM_SLOTS);
                let mut slot = start_slot;
                while slot < n {
                    if added >= max {
                        return Ok::<_, StorageError>((slot, false));
                    }
                    let so = HDR_SIZE + slot as usize * SLOT_SIZE;
                    let off = codec::get_u16(buf, so);
                    if off != DEAD_SLOT {
                        let len = codec::get_u16(buf, so + 2) as usize;
                        crate::row::decode_row_into_chunk(
                            &buf[off as usize..off as usize + len],
                            chunk,
                        )?;
                        if let Some(rids) = rids_ref.as_deref_mut() {
                            rids.push(RecordId {
                                page: page_idx as u32,
                                slot,
                            });
                        }
                        added += 1;
                    }
                    slot += 1;
                }
                Ok((slot, true))
            })??;
            self.slot = next_slot;
            if page_done {
                self.page_idx += 1;
                self.slot = 0;
            }
        }
        Ok(false)
    }
}

impl HeapFile {
    /// Creates an empty heap file (no pages yet).
    pub fn create() -> Self {
        HeapFile {
            pages: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no live records exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages owned by the file.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// A resumable batched-scan cursor positioned at the start of the file.
    pub fn batch_cursor(&self) -> HeapScanCursor {
        HeapScanCursor::default()
    }

    /// Inserts a record, returning its id.
    pub fn insert(&mut self, pool: &mut BufferPool, bytes: &[u8]) -> Result<RecordId> {
        if bytes.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                size: bytes.len(),
                max: MAX_RECORD,
            });
        }
        // Try the last page first (append-mostly workloads), then any page
        // whose cached free space fits, then grow.
        let mut candidates: Vec<usize> = Vec::new();
        if let Some(last) = self.pages.len().checked_sub(1) {
            candidates.push(last);
        }
        for (i, &f) in self.free.iter().enumerate() {
            if f as usize >= bytes.len() + SLOT_SIZE && Some(i) != candidates.first().copied() {
                candidates.push(i);
            }
        }
        for page_idx in candidates {
            let pid = self.pages[page_idx];
            let slot = pool.write_page(pid, |buf| page_insert(buf, bytes))?;
            if let Some(slot) = slot {
                self.free[page_idx] = pool.read_page(pid, page_free)? as u16;
                self.len += 1;
                return Ok(RecordId {
                    page: page_idx as u32,
                    slot,
                });
            }
        }
        let pid = pool.allocate_page()?;
        let slot = pool.write_page(pid, |buf| {
            init_page(buf);
            page_insert(buf, bytes).expect("fresh page must fit a max-size record")
        })?;
        self.pages.push(pid);
        let f = pool.read_page(pid, page_free)? as u16;
        self.free.push(f);
        self.len += 1;
        Ok(RecordId {
            page: (self.pages.len() - 1) as u32,
            slot,
        })
    }

    fn pid_of(&self, rid: RecordId) -> Result<PageId> {
        self.pages
            .get(rid.page as usize)
            .copied()
            .ok_or(StorageError::InvalidRecordId {
                page: rid.page as u64,
                slot: rid.slot,
            })
    }

    /// Reads the record at `rid`.
    pub fn get(&self, pool: &mut BufferPool, rid: RecordId) -> Result<Vec<u8>> {
        let pid = self.pid_of(rid)?;
        pool.read_page(pid, |buf| {
            let n = codec::get_u16(buf, HDR_NUM_SLOTS);
            if rid.slot >= n {
                return Err(StorageError::InvalidRecordId {
                    page: rid.page as u64,
                    slot: rid.slot,
                });
            }
            let so = HDR_SIZE + rid.slot as usize * SLOT_SIZE;
            let off = codec::get_u16(buf, so);
            if off == DEAD_SLOT {
                return Err(StorageError::InvalidRecordId {
                    page: rid.page as u64,
                    slot: rid.slot,
                });
            }
            let len = codec::get_u16(buf, so + 2) as usize;
            Ok(buf[off as usize..off as usize + len].to_vec())
        })?
    }

    /// Deletes the record at `rid`.
    pub fn delete(&mut self, pool: &mut BufferPool, rid: RecordId) -> Result<()> {
        let pid = self.pid_of(rid)?;
        pool.write_page(pid, |buf| {
            let n = codec::get_u16(buf, HDR_NUM_SLOTS);
            if rid.slot >= n {
                return Err(StorageError::InvalidRecordId {
                    page: rid.page as u64,
                    slot: rid.slot,
                });
            }
            let so = HDR_SIZE + rid.slot as usize * SLOT_SIZE;
            let off = codec::get_u16(buf, so);
            if off == DEAD_SLOT {
                return Err(StorageError::InvalidRecordId {
                    page: rid.page as u64,
                    slot: rid.slot,
                });
            }
            let len = codec::get_u16(buf, so + 2);
            codec::put_u16(buf, so, DEAD_SLOT);
            let dead = codec::get_u16(buf, HDR_DEAD);
            codec::put_u16(buf, HDR_DEAD, dead + len);
            Ok(())
        })??;
        self.free[rid.page as usize] = pool.read_page(pid, page_free)? as u16;
        self.len -= 1;
        Ok(())
    }

    /// Updates the record at `rid` in place when possible. Returns the
    /// record's (possibly new) id; when it differs from `rid`, the caller
    /// must repair any secondary indexes pointing at the old id.
    pub fn update(
        &mut self,
        pool: &mut BufferPool,
        rid: RecordId,
        bytes: &[u8],
    ) -> Result<RecordId> {
        if bytes.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                size: bytes.len(),
                max: MAX_RECORD,
            });
        }
        let pid = self.pid_of(rid)?;
        let updated = pool.write_page(pid, |buf| page_update_in_place(buf, rid, bytes))??;
        self.free[rid.page as usize] = pool.read_page(pid, page_free)? as u16;
        if updated {
            return Ok(rid);
        }
        // Record moved to another page.
        self.len -= 1; // insert() will re-count it
        self.insert(pool, bytes)
    }

    /// Inserts many records with page-level batching: each buffer-pool
    /// write call packs as many consecutive records as fit into the target
    /// page, instead of one pin/unpin round trip per record.
    pub fn insert_batch(
        &mut self,
        pool: &mut BufferPool,
        rows: &[Vec<u8>],
    ) -> Result<Vec<RecordId>> {
        for r in rows {
            if r.len() > MAX_RECORD {
                return Err(StorageError::RecordTooLarge {
                    size: r.len(),
                    max: MAX_RECORD,
                });
            }
        }
        let mut out = Vec::with_capacity(rows.len());
        let mut i = 0usize;
        while i < rows.len() {
            // Pick the target page for rows[i] exactly like insert() would.
            let mut page_idx = None;
            if let Some(last) = self.pages.len().checked_sub(1) {
                if self.free[last] as usize >= rows[i].len() + SLOT_SIZE {
                    page_idx = Some(last);
                }
            }
            if page_idx.is_none() {
                page_idx = self
                    .free
                    .iter()
                    .position(|&f| f as usize >= rows[i].len() + SLOT_SIZE);
            }
            let page_idx = match page_idx {
                Some(p) => p,
                None => {
                    let pid = pool.allocate_page()?;
                    pool.write_page(pid, init_page)?;
                    self.pages.push(pid);
                    self.free.push((PAGE_SIZE - HDR_SIZE) as u16);
                    self.pages.len() - 1
                }
            };
            let pid = self.pages[page_idx];
            // One write call inserts as many consecutive rows as fit.
            let slots: Vec<u16> = pool.write_page(pid, |buf| {
                let mut slots = Vec::new();
                while i + slots.len() < rows.len() {
                    match page_insert(buf, &rows[i + slots.len()]) {
                        Some(s) => slots.push(s),
                        None => break,
                    }
                }
                slots
            })?;
            self.free[page_idx] = pool.read_page(pid, page_free)? as u16;
            if slots.is_empty() {
                // The cached free-space hint was optimistic (slot-directory
                // growth); retry this row through the single-record path,
                // which allocates as needed.
                out.push(self.insert(pool, &rows[i])?);
                i += 1;
                continue;
            }
            for slot in slots {
                out.push(RecordId {
                    page: page_idx as u32,
                    slot,
                });
                i += 1;
                self.len += 1;
            }
        }
        Ok(out)
    }

    /// Deletes many records with one buffer-pool write per touched page.
    pub fn delete_batch(&mut self, pool: &mut BufferPool, rids: &[RecordId]) -> Result<()> {
        let mut sorted: Vec<RecordId> = rids.to_vec();
        sorted.sort_unstable();
        let mut i = 0usize;
        while i < sorted.len() {
            let page = sorted[i].page;
            let end = sorted[i..]
                .iter()
                .position(|r| r.page != page)
                .map(|p| i + p)
                .unwrap_or(sorted.len());
            let pid = self.pid_of(sorted[i])?;
            let removed = pool.write_page(pid, |buf| {
                let n = codec::get_u16(buf, HDR_NUM_SLOTS);
                // Validate the whole page group — including duplicates,
                // which sorting made adjacent — before tombstoning
                // anything, so an error leaves this page untouched (the
                // single-record delete() mutates nothing on error too).
                let mut prev: Option<u16> = None;
                for rid in &sorted[i..end] {
                    let dup = prev == Some(rid.slot);
                    prev = Some(rid.slot);
                    let so = HDR_SIZE + rid.slot as usize * SLOT_SIZE;
                    if rid.slot >= n || dup || codec::get_u16(buf, so) == DEAD_SLOT {
                        return Err(StorageError::InvalidRecordId {
                            page: rid.page as u64,
                            slot: rid.slot,
                        });
                    }
                }
                let mut removed = 0u64;
                for rid in &sorted[i..end] {
                    let so = HDR_SIZE + rid.slot as usize * SLOT_SIZE;
                    let len = codec::get_u16(buf, so + 2);
                    codec::put_u16(buf, so, DEAD_SLOT);
                    let dead = codec::get_u16(buf, HDR_DEAD);
                    codec::put_u16(buf, HDR_DEAD, dead + len);
                    removed += 1;
                }
                Ok(removed)
            })??;
            self.free[page as usize] = pool.read_page(pid, page_free)? as u16;
            self.len -= removed;
            i = end;
        }
        Ok(())
    }

    /// Updates many records, one buffer-pool write per touched page for
    /// the in-place cases (the all-integer FEM rows never change size, so
    /// this is the steady state); records that outgrow their page fall
    /// back to the single-record move path. Returns the new id per input,
    /// in order.
    pub fn update_batch(
        &mut self,
        pool: &mut BufferPool,
        items: &[(RecordId, Vec<u8>)],
    ) -> Result<Vec<RecordId>> {
        for (_, bytes) in items {
            if bytes.len() > MAX_RECORD {
                return Err(StorageError::RecordTooLarge {
                    size: bytes.len(),
                    max: MAX_RECORD,
                });
            }
        }
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_unstable_by_key(|&k| items[k].0);
        let mut out = vec![
            RecordId {
                page: u32::MAX,
                slot: u16::MAX
            };
            items.len()
        ];
        let mut moved: Vec<usize> = Vec::new();
        let mut i = 0usize;
        while i < order.len() {
            let page = items[order[i]].0.page;
            let end = order[i..]
                .iter()
                .position(|&k| items[k].0.page != page)
                .map(|p| i + p)
                .unwrap_or(order.len());
            let pid = self.pid_of(items[order[i]].0)?;
            let leftovers: Vec<usize> = pool.write_page(pid, |buf| {
                let mut leftovers = Vec::new();
                for &k in &order[i..end] {
                    let (rid, bytes) = &items[k];
                    if !page_update_in_place(buf, *rid, bytes)? {
                        leftovers.push(k);
                    }
                }
                Ok::<_, StorageError>(leftovers)
            })??;
            self.free[page as usize] = pool.read_page(pid, page_free)? as u16;
            for &k in &order[i..end] {
                out[k] = items[k].0;
            }
            moved.extend(leftovers);
            i = end;
        }
        // Records that no longer fit their page: their old cell is already
        // dead (page_update_in_place freed it), so re-insert elsewhere.
        for k in moved {
            self.len -= 1; // insert() re-counts it
            out[k] = self.insert(pool, &items[k].1)?;
        }
        Ok(out)
    }

    /// Iterates live records in file order; `f` returns `false` to stop.
    pub fn scan(
        &self,
        pool: &mut BufferPool,
        mut f: impl FnMut(RecordId, &[u8]) -> bool,
    ) -> Result<()> {
        for (page_idx, &pid) in self.pages.iter().enumerate() {
            let keep_going = pool.read_page(pid, |buf| {
                let n = codec::get_u16(buf, HDR_NUM_SLOTS);
                for slot in 0..n {
                    let so = HDR_SIZE + slot as usize * SLOT_SIZE;
                    let off = codec::get_u16(buf, so);
                    if off == DEAD_SLOT {
                        continue;
                    }
                    let len = codec::get_u16(buf, so + 2) as usize;
                    let rid = RecordId {
                        page: page_idx as u32,
                        slot,
                    };
                    if !f(rid, &buf[off as usize..off as usize + len]) {
                        return false;
                    }
                }
                true
            })?;
            if !keep_going {
                break;
            }
        }
        Ok(())
    }

    /// Removes every record (pages are kept and reused).
    pub fn truncate(&mut self, pool: &mut BufferPool) -> Result<()> {
        for &pid in &self.pages {
            pool.write_page(pid, init_page)?;
        }
        for f in &mut self.free {
            *f = (PAGE_SIZE - HDR_SIZE) as u16;
        }
        self.len = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> BufferPool {
        BufferPool::in_memory(16)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let rid = h.insert(&mut p, b"hello").unwrap();
        assert_eq!(h.get(&mut p, rid).unwrap(), b"hello");
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn many_records_span_pages() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let payload = vec![7u8; 500];
        let rids: Vec<_> = (0..100)
            .map(|i| {
                let mut rec = payload.clone();
                rec[0] = i as u8;
                h.insert(&mut p, &rec).unwrap()
            })
            .collect();
        assert!(h.num_pages() > 1, "500B x100 must not fit one page");
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(&mut p, *rid).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn delete_then_get_fails_and_slot_reused() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let a = h.insert(&mut p, b"aaa").unwrap();
        let _b = h.insert(&mut p, b"bbb").unwrap();
        h.delete(&mut p, a).unwrap();
        assert!(h.get(&mut p, a).is_err());
        assert_eq!(h.len(), 1);
        let c = h.insert(&mut p, b"ccc").unwrap();
        assert_eq!(c, a, "dead slot should be reused");
        assert_eq!(h.get(&mut p, c).unwrap(), b"ccc");
    }

    #[test]
    fn update_in_place_shrink_and_grow() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let rid = h.insert(&mut p, b"0123456789").unwrap();
        let r2 = h.update(&mut p, rid, b"abc").unwrap();
        assert_eq!(r2, rid);
        assert_eq!(h.get(&mut p, rid).unwrap(), b"abc");
        let r3 = h.update(&mut p, rid, b"abcdefghijklmnop").unwrap();
        assert_eq!(r3, rid, "grow within page keeps rid");
        assert_eq!(h.get(&mut p, rid).unwrap(), b"abcdefghijklmnop");
    }

    #[test]
    fn update_that_overflows_page_moves_record() {
        let mut p = pool();
        let mut h = HeapFile::create();
        // Fill a page almost completely.
        let rid = h.insert(&mut p, &vec![1u8; 4000]).unwrap();
        let _fill = h.insert(&mut p, &vec![2u8; 4000]).unwrap();
        let big = vec![3u8; 5000];
        let new_rid = h.update(&mut p, rid, &big).unwrap();
        assert_ne!(new_rid, rid);
        assert_eq!(h.get(&mut p, new_rid).unwrap(), big);
        assert!(h.get(&mut p, rid).is_err());
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn scan_sees_live_records_only() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let rids: Vec<_> = (0u8..10).map(|i| h.insert(&mut p, &[i]).unwrap()).collect();
        h.delete(&mut p, rids[3]).unwrap();
        h.delete(&mut p, rids[7]).unwrap();
        let mut seen = Vec::new();
        h.scan(&mut p, |_, bytes| {
            seen.push(bytes[0]);
            true
        })
        .unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn scan_early_stop() {
        let mut p = pool();
        let mut h = HeapFile::create();
        for i in 0u8..10 {
            h.insert(&mut p, &[i]).unwrap();
        }
        let mut count = 0;
        h.scan(&mut p, |_, _| {
            count += 1;
            count < 4
        })
        .unwrap();
        assert_eq!(count, 4);
    }

    #[test]
    fn truncate_clears_everything() {
        let mut p = pool();
        let mut h = HeapFile::create();
        for i in 0u8..50 {
            h.insert(&mut p, &vec![i; 300]).unwrap();
        }
        let pages_before = h.num_pages();
        h.truncate(&mut p).unwrap();
        assert_eq!(h.len(), 0);
        assert_eq!(h.num_pages(), pages_before, "pages are retained");
        let mut any = false;
        h.scan(&mut p, |_, _| {
            any = true;
            true
        })
        .unwrap();
        assert!(!any);
        // Reusable after truncate.
        let rid = h.insert(&mut p, b"fresh").unwrap();
        assert_eq!(h.get(&mut p, rid).unwrap(), b"fresh");
    }

    #[test]
    fn record_too_large_rejected() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let err = h.insert(&mut p, &vec![0u8; PAGE_SIZE]);
        assert!(matches!(err, Err(StorageError::RecordTooLarge { .. })));
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut p = pool();
        let mut h = HeapFile::create();
        // Alternate insert/delete to fragment the first page, then insert a
        // record that only fits after compaction.
        let mut rids = Vec::new();
        for i in 0..16 {
            rids.push(h.insert(&mut p, &vec![i as u8; 400]).unwrap());
        }
        let first_page_rids: Vec<_> = rids.iter().filter(|r| r.page == 0).copied().collect();
        for r in first_page_rids.iter().skip(1) {
            h.delete(&mut p, *r).unwrap();
        }
        // A 3000-byte record now fits in page 0 only via compaction.
        let rid = h.insert(&mut p, &vec![9u8; 3000]).unwrap();
        assert_eq!(h.get(&mut p, rid).unwrap(), vec![9u8; 3000]);
    }

    #[test]
    fn insert_batch_matches_scan_and_spans_pages() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let rows: Vec<Vec<u8>> = (0..200u32)
            .map(|i| crate::row::encode_row(&[crate::value::Value::Int(i as i64)]))
            .collect();
        let rids = h.insert_batch(&mut p, &rows).unwrap();
        assert_eq!(rids.len(), 200);
        assert_eq!(h.len(), 200);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(&mut p, *rid).unwrap(), rows[i]);
        }
        // Batch + single-record inserts interleave correctly.
        let solo = h.insert(&mut p, &rows[0]).unwrap();
        assert_eq!(h.get(&mut p, solo).unwrap(), rows[0]);
        assert_eq!(h.len(), 201);
    }

    #[test]
    fn insert_batch_large_records_allocate_pages() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let rows: Vec<Vec<u8>> = (0..30).map(|i| vec![i as u8; 1500]).collect();
        let rids = h.insert_batch(&mut p, &rows).unwrap();
        assert!(h.num_pages() > 1);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(&mut p, *rid).unwrap()[0], i as u8);
        }
        let err = h.insert_batch(&mut p, &[vec![0u8; PAGE_SIZE]]);
        assert!(matches!(err, Err(StorageError::RecordTooLarge { .. })));
    }

    #[test]
    fn delete_batch_page_grouped() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let rows: Vec<Vec<u8>> = (0..100u32).map(|i| vec![i as u8; 200]).collect();
        let rids = h.insert_batch(&mut p, &rows).unwrap();
        let victims: Vec<RecordId> = rids.iter().step_by(2).copied().collect();
        h.delete_batch(&mut p, &victims).unwrap();
        assert_eq!(h.len(), 50);
        let mut seen = Vec::new();
        h.scan(&mut p, |_, b| {
            seen.push(b[0]);
            true
        })
        .unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).filter(|i| i % 2 == 1).collect::<Vec<u8>>());
        // Deleting an already-dead record is an error (parity with delete).
        assert!(h.delete_batch(&mut p, &[victims[0]]).is_err());
        // A bad batch leaves the page group untouched: duplicate rids in
        // one batch error without tombstoning either occurrence.
        let live = rids[1];
        let len_before = h.len();
        assert!(h.delete_batch(&mut p, &[live, live]).is_err());
        assert_eq!(h.len(), len_before, "failed batch must not change len");
        assert!(h.get(&mut p, live).is_ok(), "record must still be live");
    }

    #[test]
    fn update_batch_in_place_and_moving() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let rids = h
            .insert_batch(
                &mut p,
                &(0..50).map(|i| vec![i as u8; 100]).collect::<Vec<_>>(),
            )
            .unwrap();
        // Same-size updates stay put.
        let items: Vec<(RecordId, Vec<u8>)> = rids.iter().map(|&r| (r, vec![0xAB; 100])).collect();
        let out = h.update_batch(&mut p, &items).unwrap();
        assert_eq!(out, rids);
        for rid in &rids {
            assert_eq!(h.get(&mut p, *rid).unwrap(), vec![0xAB; 100]);
        }
        // Growing updates that overflow their page move.
        let mut big = HeapFile::create();
        let r0 = big.insert(&mut p, &vec![1u8; 4000]).unwrap();
        let _fill = big.insert(&mut p, &vec![2u8; 4000]).unwrap();
        let out = big.update_batch(&mut p, &[(r0, vec![3u8; 5000])]).unwrap();
        assert_ne!(out[0], r0);
        assert_eq!(big.get(&mut p, out[0]).unwrap(), vec![3u8; 5000]);
        assert_eq!(big.len(), 2);
    }

    #[test]
    fn batch_cursor_matches_scan() {
        use crate::value::Value;
        let mut p = pool();
        let mut h = HeapFile::create();
        let rows: Vec<Vec<u8>> = (0..700i64)
            .map(|i| crate::row::encode_row(&[Value::Int(i), Value::Int(i * 2)]))
            .collect();
        let rids = h.insert_batch(&mut p, &rows).unwrap();
        h.delete(&mut p, rids[10]).unwrap();
        h.delete(&mut p, rids[500]).unwrap();

        let mut cursor = h.batch_cursor();
        let mut chunk = crate::chunk::Chunk::new();
        let mut got_rids = Vec::new();
        let mut all: Vec<Vec<Value>> = Vec::new();
        loop {
            chunk.reset();
            let more = cursor
                .next_batch(&h, &mut p, &mut chunk, Some(&mut got_rids), 256)
                .unwrap();
            all.extend(chunk.to_rows());
            if !more {
                break;
            }
        }
        let mut expect = Vec::new();
        let mut expect_rids = Vec::new();
        h.scan(&mut p, |rid, b| {
            expect.push(crate::row::decode_row(b).unwrap());
            expect_rids.push(rid);
            true
        })
        .unwrap();
        assert_eq!(all, expect);
        assert_eq!(got_rids, expect_rids);
        assert!(matches!(chunk.col(0), crate::chunk::Column::Int { .. }));
    }

    #[test]
    fn rid_u64_roundtrip() {
        let rid = RecordId {
            page: 123456,
            slot: 789,
        };
        assert_eq!(RecordId::from_u64(rid.to_u64()), rid);
    }
}
