//! Slotted-page heap files: unordered record storage.
//!
//! A heap file is a list of pages, each with a classic slot directory
//! growing from the header and cell payloads growing from the end of the
//! page. Records are addressed by [`RecordId`] (page index within the file +
//! slot). Records never move pages on update *unless* they grow beyond the
//! page's free space, in which case the caller is told the new location so
//! secondary indexes can be fixed up.
//!
//! Heap metadata (the list of page ids and per-page free space) is kept in
//! memory and rebuilt from the catalog on open; crash recovery is out of
//! scope (see DESIGN.md §5).

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::page::{codec, PageId, PAGE_SIZE};

const HDR_NUM_SLOTS: usize = 0; // u16
const HDR_CELL_START: usize = 2; // u16
const HDR_DEAD: usize = 4; // u16 bytes of reclaimable cell space
const HDR_SIZE: usize = 6;
const SLOT_SIZE: usize = 4; // u16 offset + u16 length
const DEAD_SLOT: u16 = u16::MAX;

/// Largest record a heap page can hold.
pub const MAX_RECORD: usize = PAGE_SIZE - HDR_SIZE - SLOT_SIZE;

/// Stable address of a record: page index within the heap file + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    pub page: u32,
    pub slot: u16,
}

impl RecordId {
    /// Packs the rid into a single integer (used to store rids inside
    /// secondary-index payloads).
    pub fn to_u64(self) -> u64 {
        ((self.page as u64) << 16) | self.slot as u64
    }

    /// Inverse of [`RecordId::to_u64`].
    pub fn from_u64(v: u64) -> Self {
        RecordId {
            page: (v >> 16) as u32,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

/// An unordered record file over the buffer pool.
///
/// `Clone` duplicates only the in-memory metadata (page list, free-space
/// hints, row count) — both clones address the same pages, so cloning is
/// only sound when at most one clone keeps writing (e.g. catalog templates
/// cloned into copy-on-write snapshot sessions, DESIGN.md §10).
#[derive(Clone)]
pub struct HeapFile {
    pages: Vec<PageId>,
    /// Usable free bytes per page (contiguous + dead), kept in memory.
    free: Vec<u16>,
    len: u64,
}

fn init_page(buf: &mut [u8; PAGE_SIZE]) {
    codec::put_u16(buf, HDR_NUM_SLOTS, 0);
    codec::put_u16(buf, HDR_CELL_START, PAGE_SIZE as u16);
    codec::put_u16(buf, HDR_DEAD, 0);
}

fn page_free(buf: &[u8; PAGE_SIZE]) -> usize {
    let n = codec::get_u16(buf, HDR_NUM_SLOTS) as usize;
    let cell_start = codec::get_u16(buf, HDR_CELL_START) as usize;
    let dead = codec::get_u16(buf, HDR_DEAD) as usize;
    cell_start - (HDR_SIZE + n * SLOT_SIZE) + dead
}

/// Rewrites all live cells tightly against the end of the page, zeroing the
/// dead-byte counter. Slot numbers are preserved.
fn compact(buf: &mut [u8; PAGE_SIZE]) {
    let n = codec::get_u16(buf, HDR_NUM_SLOTS) as usize;
    let mut cells: Vec<(usize, Vec<u8>)> = Vec::with_capacity(n);
    for s in 0..n {
        let so = HDR_SIZE + s * SLOT_SIZE;
        let off = codec::get_u16(buf, so);
        if off == DEAD_SLOT {
            continue;
        }
        let len = codec::get_u16(buf, so + 2) as usize;
        cells.push((s, buf[off as usize..off as usize + len].to_vec()));
    }
    let mut cell_start = PAGE_SIZE;
    for (s, bytes) in cells {
        cell_start -= bytes.len();
        buf[cell_start..cell_start + bytes.len()].copy_from_slice(&bytes);
        let so = HDR_SIZE + s * SLOT_SIZE;
        codec::put_u16(buf, so, cell_start as u16);
        codec::put_u16(buf, so + 2, bytes.len() as u16);
    }
    codec::put_u16(buf, HDR_CELL_START, cell_start as u16);
    codec::put_u16(buf, HDR_DEAD, 0);
}

/// Inserts `bytes` into the page, reusing a dead slot when available.
/// Returns the slot number, or `None` if the page lacks space.
fn page_insert(buf: &mut [u8; PAGE_SIZE], bytes: &[u8]) -> Option<u16> {
    let n = codec::get_u16(buf, HDR_NUM_SLOTS) as usize;
    // Look for a reusable dead slot first so rid space stays dense.
    let mut slot = None;
    for s in 0..n {
        if codec::get_u16(buf, HDR_SIZE + s * SLOT_SIZE) == DEAD_SLOT {
            slot = Some(s);
            break;
        }
    }
    let needs_new_slot = slot.is_none();
    let needed = bytes.len() + if needs_new_slot { SLOT_SIZE } else { 0 };
    if page_free(buf) < needed {
        return None;
    }
    let cell_start = codec::get_u16(buf, HDR_CELL_START) as usize;
    let slot_area_end = HDR_SIZE + (n + usize::from(needs_new_slot)) * SLOT_SIZE;
    if cell_start.saturating_sub(slot_area_end) < bytes.len() {
        compact(buf);
    }
    let cell_start = codec::get_u16(buf, HDR_CELL_START) as usize - bytes.len();
    buf[cell_start..cell_start + bytes.len()].copy_from_slice(bytes);
    codec::put_u16(buf, HDR_CELL_START, cell_start as u16);
    let s = slot.unwrap_or(n);
    if needs_new_slot {
        codec::put_u16(buf, HDR_NUM_SLOTS, (n + 1) as u16);
    }
    let so = HDR_SIZE + s * SLOT_SIZE;
    codec::put_u16(buf, so, cell_start as u16);
    codec::put_u16(buf, so + 2, bytes.len() as u16);
    Some(s as u16)
}

impl HeapFile {
    /// Creates an empty heap file (no pages yet).
    pub fn create() -> Self {
        HeapFile {
            pages: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no live records exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages owned by the file.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Inserts a record, returning its id.
    pub fn insert(&mut self, pool: &mut BufferPool, bytes: &[u8]) -> Result<RecordId> {
        if bytes.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                size: bytes.len(),
                max: MAX_RECORD,
            });
        }
        // Try the last page first (append-mostly workloads), then any page
        // whose cached free space fits, then grow.
        let mut candidates: Vec<usize> = Vec::new();
        if let Some(last) = self.pages.len().checked_sub(1) {
            candidates.push(last);
        }
        for (i, &f) in self.free.iter().enumerate() {
            if f as usize >= bytes.len() + SLOT_SIZE && Some(i) != candidates.first().copied() {
                candidates.push(i);
            }
        }
        for page_idx in candidates {
            let pid = self.pages[page_idx];
            let slot = pool.write_page(pid, |buf| page_insert(buf, bytes))?;
            if let Some(slot) = slot {
                self.free[page_idx] = pool.read_page(pid, page_free)? as u16;
                self.len += 1;
                return Ok(RecordId {
                    page: page_idx as u32,
                    slot,
                });
            }
        }
        let pid = pool.allocate_page()?;
        let slot = pool.write_page(pid, |buf| {
            init_page(buf);
            page_insert(buf, bytes).expect("fresh page must fit a max-size record")
        })?;
        self.pages.push(pid);
        let f = pool.read_page(pid, page_free)? as u16;
        self.free.push(f);
        self.len += 1;
        Ok(RecordId {
            page: (self.pages.len() - 1) as u32,
            slot,
        })
    }

    fn pid_of(&self, rid: RecordId) -> Result<PageId> {
        self.pages
            .get(rid.page as usize)
            .copied()
            .ok_or(StorageError::InvalidRecordId {
                page: rid.page as u64,
                slot: rid.slot,
            })
    }

    /// Reads the record at `rid`.
    pub fn get(&self, pool: &mut BufferPool, rid: RecordId) -> Result<Vec<u8>> {
        let pid = self.pid_of(rid)?;
        pool.read_page(pid, |buf| {
            let n = codec::get_u16(buf, HDR_NUM_SLOTS);
            if rid.slot >= n {
                return Err(StorageError::InvalidRecordId {
                    page: rid.page as u64,
                    slot: rid.slot,
                });
            }
            let so = HDR_SIZE + rid.slot as usize * SLOT_SIZE;
            let off = codec::get_u16(buf, so);
            if off == DEAD_SLOT {
                return Err(StorageError::InvalidRecordId {
                    page: rid.page as u64,
                    slot: rid.slot,
                });
            }
            let len = codec::get_u16(buf, so + 2) as usize;
            Ok(buf[off as usize..off as usize + len].to_vec())
        })?
    }

    /// Deletes the record at `rid`.
    pub fn delete(&mut self, pool: &mut BufferPool, rid: RecordId) -> Result<()> {
        let pid = self.pid_of(rid)?;
        pool.write_page(pid, |buf| {
            let n = codec::get_u16(buf, HDR_NUM_SLOTS);
            if rid.slot >= n {
                return Err(StorageError::InvalidRecordId {
                    page: rid.page as u64,
                    slot: rid.slot,
                });
            }
            let so = HDR_SIZE + rid.slot as usize * SLOT_SIZE;
            let off = codec::get_u16(buf, so);
            if off == DEAD_SLOT {
                return Err(StorageError::InvalidRecordId {
                    page: rid.page as u64,
                    slot: rid.slot,
                });
            }
            let len = codec::get_u16(buf, so + 2);
            codec::put_u16(buf, so, DEAD_SLOT);
            let dead = codec::get_u16(buf, HDR_DEAD);
            codec::put_u16(buf, HDR_DEAD, dead + len);
            Ok(())
        })??;
        self.free[rid.page as usize] = pool.read_page(pid, page_free)? as u16;
        self.len -= 1;
        Ok(())
    }

    /// Updates the record at `rid` in place when possible. Returns the
    /// record's (possibly new) id; when it differs from `rid`, the caller
    /// must repair any secondary indexes pointing at the old id.
    pub fn update(
        &mut self,
        pool: &mut BufferPool,
        rid: RecordId,
        bytes: &[u8],
    ) -> Result<RecordId> {
        if bytes.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                size: bytes.len(),
                max: MAX_RECORD,
            });
        }
        let pid = self.pid_of(rid)?;
        let updated = pool.write_page(pid, |buf| {
            let n = codec::get_u16(buf, HDR_NUM_SLOTS);
            if rid.slot >= n {
                return Err(StorageError::InvalidRecordId {
                    page: rid.page as u64,
                    slot: rid.slot,
                });
            }
            let so = HDR_SIZE + rid.slot as usize * SLOT_SIZE;
            let off = codec::get_u16(buf, so);
            if off == DEAD_SLOT {
                return Err(StorageError::InvalidRecordId {
                    page: rid.page as u64,
                    slot: rid.slot,
                });
            }
            let old_len = codec::get_u16(buf, so + 2) as usize;
            if bytes.len() <= old_len {
                // Shrink (or equal): overwrite in place, account slack as dead.
                buf[off as usize..off as usize + bytes.len()].copy_from_slice(bytes);
                codec::put_u16(buf, so + 2, bytes.len() as u16);
                let dead = codec::get_u16(buf, HDR_DEAD);
                codec::put_u16(buf, HDR_DEAD, dead + (old_len - bytes.len()) as u16);
                return Ok(true);
            }
            // Grow: free the old cell, then re-insert into the same page if
            // space allows, keeping the same slot number.
            let dead = codec::get_u16(buf, HDR_DEAD);
            codec::put_u16(buf, HDR_DEAD, dead + old_len as u16);
            codec::put_u16(buf, so, DEAD_SLOT);
            if page_free(buf) >= bytes.len() {
                let cell_start = codec::get_u16(buf, HDR_CELL_START) as usize;
                let slot_area_end = HDR_SIZE + n as usize * SLOT_SIZE;
                if cell_start.saturating_sub(slot_area_end) < bytes.len() {
                    compact(buf);
                }
                let cell_start = codec::get_u16(buf, HDR_CELL_START) as usize - bytes.len();
                buf[cell_start..cell_start + bytes.len()].copy_from_slice(bytes);
                codec::put_u16(buf, HDR_CELL_START, cell_start as u16);
                codec::put_u16(buf, so, cell_start as u16);
                codec::put_u16(buf, so + 2, bytes.len() as u16);
                return Ok(true);
            }
            Ok(false)
        })??;
        self.free[rid.page as usize] = pool.read_page(pid, page_free)? as u16;
        if updated {
            return Ok(rid);
        }
        // Record moved to another page.
        self.len -= 1; // insert() will re-count it
        self.insert(pool, bytes)
    }

    /// Iterates live records in file order; `f` returns `false` to stop.
    pub fn scan(
        &self,
        pool: &mut BufferPool,
        mut f: impl FnMut(RecordId, &[u8]) -> bool,
    ) -> Result<()> {
        for (page_idx, &pid) in self.pages.iter().enumerate() {
            let keep_going = pool.read_page(pid, |buf| {
                let n = codec::get_u16(buf, HDR_NUM_SLOTS);
                for slot in 0..n {
                    let so = HDR_SIZE + slot as usize * SLOT_SIZE;
                    let off = codec::get_u16(buf, so);
                    if off == DEAD_SLOT {
                        continue;
                    }
                    let len = codec::get_u16(buf, so + 2) as usize;
                    let rid = RecordId {
                        page: page_idx as u32,
                        slot,
                    };
                    if !f(rid, &buf[off as usize..off as usize + len]) {
                        return false;
                    }
                }
                true
            })?;
            if !keep_going {
                break;
            }
        }
        Ok(())
    }

    /// Removes every record (pages are kept and reused).
    pub fn truncate(&mut self, pool: &mut BufferPool) -> Result<()> {
        for &pid in &self.pages {
            pool.write_page(pid, init_page)?;
        }
        for f in &mut self.free {
            *f = (PAGE_SIZE - HDR_SIZE) as u16;
        }
        self.len = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> BufferPool {
        BufferPool::in_memory(16)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let rid = h.insert(&mut p, b"hello").unwrap();
        assert_eq!(h.get(&mut p, rid).unwrap(), b"hello");
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn many_records_span_pages() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let payload = vec![7u8; 500];
        let rids: Vec<_> = (0..100)
            .map(|i| {
                let mut rec = payload.clone();
                rec[0] = i as u8;
                h.insert(&mut p, &rec).unwrap()
            })
            .collect();
        assert!(h.num_pages() > 1, "500B x100 must not fit one page");
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(&mut p, *rid).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn delete_then_get_fails_and_slot_reused() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let a = h.insert(&mut p, b"aaa").unwrap();
        let _b = h.insert(&mut p, b"bbb").unwrap();
        h.delete(&mut p, a).unwrap();
        assert!(h.get(&mut p, a).is_err());
        assert_eq!(h.len(), 1);
        let c = h.insert(&mut p, b"ccc").unwrap();
        assert_eq!(c, a, "dead slot should be reused");
        assert_eq!(h.get(&mut p, c).unwrap(), b"ccc");
    }

    #[test]
    fn update_in_place_shrink_and_grow() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let rid = h.insert(&mut p, b"0123456789").unwrap();
        let r2 = h.update(&mut p, rid, b"abc").unwrap();
        assert_eq!(r2, rid);
        assert_eq!(h.get(&mut p, rid).unwrap(), b"abc");
        let r3 = h.update(&mut p, rid, b"abcdefghijklmnop").unwrap();
        assert_eq!(r3, rid, "grow within page keeps rid");
        assert_eq!(h.get(&mut p, rid).unwrap(), b"abcdefghijklmnop");
    }

    #[test]
    fn update_that_overflows_page_moves_record() {
        let mut p = pool();
        let mut h = HeapFile::create();
        // Fill a page almost completely.
        let rid = h.insert(&mut p, &vec![1u8; 4000]).unwrap();
        let _fill = h.insert(&mut p, &vec![2u8; 4000]).unwrap();
        let big = vec![3u8; 5000];
        let new_rid = h.update(&mut p, rid, &big).unwrap();
        assert_ne!(new_rid, rid);
        assert_eq!(h.get(&mut p, new_rid).unwrap(), big);
        assert!(h.get(&mut p, rid).is_err());
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn scan_sees_live_records_only() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let rids: Vec<_> = (0u8..10).map(|i| h.insert(&mut p, &[i]).unwrap()).collect();
        h.delete(&mut p, rids[3]).unwrap();
        h.delete(&mut p, rids[7]).unwrap();
        let mut seen = Vec::new();
        h.scan(&mut p, |_, bytes| {
            seen.push(bytes[0]);
            true
        })
        .unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn scan_early_stop() {
        let mut p = pool();
        let mut h = HeapFile::create();
        for i in 0u8..10 {
            h.insert(&mut p, &[i]).unwrap();
        }
        let mut count = 0;
        h.scan(&mut p, |_, _| {
            count += 1;
            count < 4
        })
        .unwrap();
        assert_eq!(count, 4);
    }

    #[test]
    fn truncate_clears_everything() {
        let mut p = pool();
        let mut h = HeapFile::create();
        for i in 0u8..50 {
            h.insert(&mut p, &vec![i; 300]).unwrap();
        }
        let pages_before = h.num_pages();
        h.truncate(&mut p).unwrap();
        assert_eq!(h.len(), 0);
        assert_eq!(h.num_pages(), pages_before, "pages are retained");
        let mut any = false;
        h.scan(&mut p, |_, _| {
            any = true;
            true
        })
        .unwrap();
        assert!(!any);
        // Reusable after truncate.
        let rid = h.insert(&mut p, b"fresh").unwrap();
        assert_eq!(h.get(&mut p, rid).unwrap(), b"fresh");
    }

    #[test]
    fn record_too_large_rejected() {
        let mut p = pool();
        let mut h = HeapFile::create();
        let err = h.insert(&mut p, &vec![0u8; PAGE_SIZE]);
        assert!(matches!(err, Err(StorageError::RecordTooLarge { .. })));
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut p = pool();
        let mut h = HeapFile::create();
        // Alternate insert/delete to fragment the first page, then insert a
        // record that only fits after compaction.
        let mut rids = Vec::new();
        for i in 0..16 {
            rids.push(h.insert(&mut p, &vec![i as u8; 400]).unwrap());
        }
        let first_page_rids: Vec<_> = rids.iter().filter(|r| r.page == 0).copied().collect();
        for r in first_page_rids.iter().skip(1) {
            h.delete(&mut p, *r).unwrap();
        }
        // A 3000-byte record now fits in page 0 only via compaction.
        let rid = h.insert(&mut p, &vec![9u8; 3000]).unwrap();
        assert_eq!(h.get(&mut p, rid).unwrap(), vec![9u8; 3000]);
    }

    #[test]
    fn rid_u64_roundtrip() {
        let rid = RecordId {
            page: 123456,
            slot: 789,
        };
        assert_eq!(RecordId::from_u64(rid.to_u64()), rid);
    }
}
