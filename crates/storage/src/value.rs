//! Typed column values and their order-preserving key encoding.
//!
//! Index keys are compared as raw byte strings (`memcmp`), so the encoding
//! must preserve the logical ordering of values:
//!
//! * `Null` sorts before everything (tag `0x00`),
//! * `Int` is encoded big-endian with the sign bit flipped (tag `0x01`),
//! * `Float` uses the classic total-order trick — flip all bits for
//!   negatives, flip only the sign bit for non-negatives (tag `0x02`),
//! * `Text` is the UTF-8 bytes followed by a `0x00` terminator (tag `0x03`);
//!   interior NULs are rejected so the terminator stays unambiguous.
//!
//! Composite keys are simply concatenations; every component encoding is
//! prefix-free, so concatenation preserves lexicographic order.

use crate::error::{Result, StorageError};
use std::cmp::Ordering;
use std::fmt;

/// Column data types understood by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Text => write!(f, "TEXT"),
        }
    }
}

/// A single column value.
///
/// `Int`/`Float` compare numerically with each other; `Null` compares below
/// everything; `Text` compares above numbers. This total order is what both
/// the executor's sort and the B+tree key encoding implement.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
}

impl Eq for Value {}

impl Value {
    /// Type tag used to rank values of different types in the total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Text(_) => 2,
        }
    }

    /// Returns true when the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by arithmetic and comparisons; `None` for
    /// non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view; floats with no fractional part convert losslessly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The data type of this value, if it has one (`Null` does not).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// Total-order comparison (used for ORDER BY, MIN/MAX, and as the
    /// reference semantics the key encoding must agree with).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

const TAG_NULL: u8 = 0x00;
const TAG_INT: u8 = 0x01;
const TAG_FLOAT: u8 = 0x02;
const TAG_TEXT: u8 = 0x03;

/// Appends the order-preserving encoding of `v` to `out`.
pub fn encode_key_into(out: &mut Vec<u8>, v: &Value) -> Result<()> {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            // Flip the sign bit so two's-complement order becomes unsigned
            // byte order.
            let flipped = (*i as u64) ^ (1u64 << 63);
            out.extend_from_slice(&flipped.to_be_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            let bits = f.to_bits();
            let flipped = if bits & (1u64 << 63) != 0 {
                !bits
            } else {
                bits ^ (1u64 << 63)
            };
            out.extend_from_slice(&flipped.to_be_bytes());
        }
        Value::Text(s) => {
            if s.as_bytes().contains(&0) {
                return Err(StorageError::NulInTextKey);
            }
            out.push(TAG_TEXT);
            out.extend_from_slice(s.as_bytes());
            out.push(0);
        }
    }
    Ok(())
}

/// Encodes a composite key from a slice of values.
pub fn encode_key(values: &[Value]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(values.len() * 9);
    for v in values {
        encode_key_into(&mut out, v)?;
    }
    Ok(out)
}

/// Decodes one value from `bytes`, returning it and the remaining slice.
pub fn decode_key_one(bytes: &[u8]) -> Result<(Value, &[u8])> {
    let (&tag, rest) = bytes
        .split_first()
        .ok_or_else(|| StorageError::Corrupt("empty key".into()))?;
    match tag {
        TAG_NULL => Ok((Value::Null, rest)),
        TAG_INT => {
            if rest.len() < 8 {
                return Err(StorageError::Corrupt("short int key".into()));
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&rest[..8]);
            let flipped = u64::from_be_bytes(b) ^ (1u64 << 63);
            Ok((Value::Int(flipped as i64), &rest[8..]))
        }
        TAG_FLOAT => {
            if rest.len() < 8 {
                return Err(StorageError::Corrupt("short float key".into()));
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&rest[..8]);
            let flipped = u64::from_be_bytes(b);
            let bits = if flipped & (1u64 << 63) != 0 {
                flipped ^ (1u64 << 63)
            } else {
                !flipped
            };
            Ok((Value::Float(f64::from_bits(bits)), &rest[8..]))
        }
        TAG_TEXT => {
            let end = rest
                .iter()
                .position(|&b| b == 0)
                .ok_or_else(|| StorageError::Corrupt("unterminated text key".into()))?;
            let s = std::str::from_utf8(&rest[..end])
                .map_err(|_| StorageError::Corrupt("non-utf8 text key".into()))?;
            Ok((Value::Text(s.to_string()), &rest[end + 1..]))
        }
        t => Err(StorageError::Corrupt(format!("unknown key tag {t}"))),
    }
}

/// Decodes a full composite key back into values.
pub fn decode_key(mut bytes: &[u8]) -> Result<Vec<Value>> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let (v, rest) = decode_key_one(bytes)?;
        out.push(v);
        bytes = rest;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let enc = encode_key(std::slice::from_ref(&v)).unwrap();
        let dec = decode_key(&enc).unwrap();
        assert_eq!(dec, vec![v]);
    }

    #[test]
    fn int_roundtrip() {
        for v in [i64::MIN, -1, 0, 1, 42, i64::MAX] {
            roundtrip(Value::Int(v));
        }
    }

    #[test]
    fn float_roundtrip() {
        for v in [-1.5, 0.0, 3.25, f64::MIN, f64::MAX] {
            roundtrip(Value::Float(v));
        }
    }

    #[test]
    fn text_roundtrip() {
        roundtrip(Value::Text("hello".into()));
        roundtrip(Value::Text(String::new()));
    }

    #[test]
    fn null_roundtrip() {
        roundtrip(Value::Null);
    }

    #[test]
    fn int_encoding_preserves_order() {
        let vals = [i64::MIN, -100, -1, 0, 1, 7, 100, i64::MAX];
        for w in vals.windows(2) {
            let a = encode_key(&[Value::Int(w[0])]).unwrap();
            let b = encode_key(&[Value::Int(w[1])]).unwrap();
            assert!(a < b, "{} should encode below {}", w[0], w[1]);
        }
    }

    #[test]
    fn float_encoding_preserves_order() {
        let vals = [
            f64::NEG_INFINITY,
            -2.5,
            -0.0,
            0.0,
            1.0e-9,
            2.5,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            let a = encode_key(&[Value::Float(w[0])]).unwrap();
            let b = encode_key(&[Value::Float(w[1])]).unwrap();
            assert!(a <= b, "{} should encode <= {}", w[0], w[1]);
        }
    }

    #[test]
    fn text_encoding_preserves_order() {
        let vals = ["", "a", "ab", "b", "ba"];
        for w in vals.windows(2) {
            let a = encode_key(&[Value::Text(w[0].into())]).unwrap();
            let b = encode_key(&[Value::Text(w[1].into())]).unwrap();
            assert!(a < b, "{:?} should encode below {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn composite_key_order_matches_tuple_order() {
        let a = encode_key(&[Value::Int(1), Value::Int(99)]).unwrap();
        let b = encode_key(&[Value::Int(2), Value::Int(0)]).unwrap();
        assert!(a < b);
        // Prefix-free: shorter text key sorts before longer with same prefix.
        let c = encode_key(&[Value::Text("ab".into()), Value::Int(0)]).unwrap();
        let d = encode_key(&[Value::Text("b".into()), Value::Int(0)]).unwrap();
        assert!(c < d);
    }

    #[test]
    fn nul_in_text_key_rejected() {
        let err = encode_key(&[Value::Text("a\0b".into())]);
        assert!(matches!(err, Err(StorageError::NulInTextKey)));
    }

    #[test]
    fn null_sorts_first() {
        let n = encode_key(&[Value::Null]).unwrap();
        let i = encode_key(&[Value::Int(i64::MIN)]).unwrap();
        assert!(n < i);
    }

    #[test]
    fn value_total_order_mixed_numeric() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(
            Value::Text("a".into()).total_cmp(&Value::Int(i64::MAX)),
            Ordering::Greater
        );
    }
}
