//! Compact row (tuple) serialization for heap pages and B+tree payloads.
//!
//! Unlike the key encoding in [`crate::value`], row bytes do not need to be
//! order-preserving — they only need to round-trip — so the layout favours
//! decode speed: a tag byte per column followed by a fixed/length-prefixed
//! payload.

use crate::error::{Result, StorageError};
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;

/// Serializes a row into `out` (clearing it first).
pub fn encode_row_into(out: &mut Vec<u8>, row: &[Value]) {
    out.clear();
    debug_assert!(row.len() <= u16::MAX as usize);
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for v in row {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&f.to_le_bytes());
            }
            Value::Text(s) => {
                out.push(TAG_TEXT);
                debug_assert!(s.len() <= u32::MAX as usize);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

/// Serializes a row, returning a fresh buffer.
pub fn encode_row(row: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + row.len() * 9);
    encode_row_into(&mut out, row);
    out
}

/// Deserializes a row previously produced by [`encode_row`].
pub fn decode_row(bytes: &[u8]) -> Result<Vec<Value>> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    if bytes.len() < 2 {
        return Err(corrupt("row shorter than header"));
    }
    let n = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    let mut out = Vec::with_capacity(n);
    let mut pos = 2usize;
    for _ in 0..n {
        let tag = *bytes.get(pos).ok_or_else(|| corrupt("truncated row tag"))?;
        pos += 1;
        match tag {
            TAG_NULL => out.push(Value::Null),
            TAG_INT => {
                let end = pos + 8;
                let s = bytes
                    .get(pos..end)
                    .ok_or_else(|| corrupt("truncated int"))?;
                out.push(Value::Int(i64::from_le_bytes(s.try_into().unwrap())));
                pos = end;
            }
            TAG_FLOAT => {
                let end = pos + 8;
                let s = bytes
                    .get(pos..end)
                    .ok_or_else(|| corrupt("truncated float"))?;
                out.push(Value::Float(f64::from_le_bytes(s.try_into().unwrap())));
                pos = end;
            }
            TAG_TEXT => {
                let lend = pos + 4;
                let ls = bytes
                    .get(pos..lend)
                    .ok_or_else(|| corrupt("truncated text length"))?;
                let len = u32::from_le_bytes(ls.try_into().unwrap()) as usize;
                let end = lend + len;
                let s = bytes
                    .get(lend..end)
                    .ok_or_else(|| corrupt("truncated text payload"))?;
                let text = std::str::from_utf8(s).map_err(|_| corrupt("non-utf8 text payload"))?;
                out.push(Value::Text(text.to_string()));
                pos = end;
            }
            t => return Err(StorageError::Corrupt(format!("unknown row tag {t}"))),
        }
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after row"));
    }
    Ok(out)
}

/// Serializes row `r` of `chunk` into `out` (clearing it first) without
/// materializing a `Vec<Value>` — integer columns write their tag and
/// little-endian payload straight from the typed vector.
pub fn encode_row_from_chunk(out: &mut Vec<u8>, chunk: &crate::chunk::Chunk, r: usize) {
    use crate::chunk::Column;
    out.clear();
    debug_assert!(chunk.width() <= u16::MAX as usize);
    out.extend_from_slice(&(chunk.width() as u16).to_le_bytes());
    for col in chunk.columns() {
        match col {
            Column::Int { vals, nulls } => {
                if nulls.get(r) {
                    out.push(TAG_NULL);
                } else {
                    out.push(TAG_INT);
                    out.extend_from_slice(&vals[r].to_le_bytes());
                }
            }
            Column::Generic(v) => match &v[r] {
                Value::Null => out.push(TAG_NULL),
                Value::Int(i) => {
                    out.push(TAG_INT);
                    out.extend_from_slice(&i.to_le_bytes());
                }
                Value::Float(f) => {
                    out.push(TAG_FLOAT);
                    out.extend_from_slice(&f.to_le_bytes());
                }
                Value::Text(s) => {
                    out.push(TAG_TEXT);
                    debug_assert!(s.len() <= u32::MAX as usize);
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            },
        }
    }
}

/// Deserializes a row directly into the columns of `chunk`, appending one
/// row without materializing a `Vec<Value>`. The chunk's width is fixed by
/// the first decoded row; later rows must match it. Integer cells append
/// to the typed column vector (`Chunk`'s hot path); NULLs set the bitmap;
/// anything else demotes that column to generic.
pub fn decode_row_into_chunk(bytes: &[u8], chunk: &mut crate::chunk::Chunk) -> Result<()> {
    let corrupt = |m: &str| StorageError::Corrupt(m.to_string());
    if bytes.len() < 2 {
        return Err(corrupt("row shorter than header"));
    }
    let n = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    if chunk.is_empty() && chunk.width() != n {
        chunk.set_width(n);
    }
    if chunk.width() != n {
        return Err(corrupt("row arity differs from chunk width"));
    }
    let mut pos = 2usize;
    for c in 0..n {
        let tag = *bytes.get(pos).ok_or_else(|| corrupt("truncated row tag"))?;
        pos += 1;
        match tag {
            TAG_NULL => chunk.col_mut(c).push_null(),
            TAG_INT => {
                let end = pos + 8;
                let s = bytes
                    .get(pos..end)
                    .ok_or_else(|| corrupt("truncated int"))?;
                chunk
                    .col_mut(c)
                    .push_int(i64::from_le_bytes(s.try_into().unwrap()));
                pos = end;
            }
            TAG_FLOAT => {
                let end = pos + 8;
                let s = bytes
                    .get(pos..end)
                    .ok_or_else(|| corrupt("truncated float"))?;
                chunk
                    .col_mut(c)
                    .push(Value::Float(f64::from_le_bytes(s.try_into().unwrap())));
                pos = end;
            }
            TAG_TEXT => {
                let lend = pos + 4;
                let ls = bytes
                    .get(pos..lend)
                    .ok_or_else(|| corrupt("truncated text length"))?;
                let len = u32::from_le_bytes(ls.try_into().unwrap()) as usize;
                let end = lend + len;
                let s = bytes
                    .get(lend..end)
                    .ok_or_else(|| corrupt("truncated text payload"))?;
                let text = std::str::from_utf8(s).map_err(|_| corrupt("non-utf8 text payload"))?;
                chunk.col_mut(c).push(Value::Text(text.to_string()));
                pos = end;
            }
            t => return Err(StorageError::Corrupt(format!("unknown row tag {t}"))),
        }
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after row"));
    }
    chunk.commit_row();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_row() {
        let row = vec![
            Value::Int(42),
            Value::Null,
            Value::Float(-3.75),
            Value::Text("frontier".into()),
            Value::Int(i64::MIN),
        ];
        assert_eq!(decode_row(&encode_row(&row)).unwrap(), row);
    }

    #[test]
    fn roundtrip_empty_row() {
        let row: Vec<Value> = vec![];
        assert_eq!(decode_row(&encode_row(&row)).unwrap(), row);
    }

    #[test]
    fn truncated_row_is_error() {
        let row = vec![Value::Int(7)];
        let bytes = encode_row(&row);
        assert!(decode_row(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn trailing_garbage_is_error() {
        let mut bytes = encode_row(&[Value::Int(7)]);
        bytes.push(0xAB);
        assert!(decode_row(&bytes).is_err());
    }

    #[test]
    fn text_with_nul_is_fine_in_rows() {
        // Rows (unlike keys) may contain NUL bytes in text.
        let row = vec![Value::Text("a\0b".into())];
        assert_eq!(decode_row(&encode_row(&row)).unwrap(), row);
    }
}
