//! Buffer-pool edge cases: minimal capacity, page recycling, stats
//! integrity under churn.

use fempath_storage::{BTree, BufferPool, HeapFile};
use std::ops::Bound;

#[test]
fn capacity_one_pool_supports_btree() {
    // Every access evicts; correctness must not depend on residency.
    let mut pool = BufferPool::in_memory(1);
    let mut t = BTree::create(&mut pool).unwrap();
    for i in 0..500u64 {
        t.insert(&mut pool, &i.to_be_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    for i in 0..500u64 {
        assert_eq!(
            t.get(&mut pool, &i.to_be_bytes()).unwrap().unwrap(),
            i.to_le_bytes()
        );
    }
    let mut n = 0;
    t.scan_range(&mut pool, Bound::Unbounded, Bound::Unbounded, |_, _| {
        n += 1;
        true
    })
    .unwrap();
    assert_eq!(n, 500);
    assert!(pool.stats().evictions > 500, "capacity-1 must thrash");
}

#[test]
fn freed_pages_are_recycled_not_leaked() {
    let mut pool = BufferPool::in_memory(64);
    let grow = |pool: &mut BufferPool| {
        let mut t = BTree::create(pool).unwrap();
        for i in 0..2000u64 {
            t.insert(pool, &i.to_be_bytes(), &[0u8; 16]).unwrap();
        }
        t.destroy(pool).unwrap();
    };
    grow(&mut pool);
    let after_first = pool.num_disk_pages();
    for _ in 0..5 {
        grow(&mut pool);
    }
    assert_eq!(
        pool.num_disk_pages(),
        after_first,
        "create/destroy cycles must not grow the file"
    );
}

#[test]
fn heap_and_btree_share_one_pool() {
    let mut pool = BufferPool::in_memory(8);
    let mut heap = HeapFile::create();
    let mut tree = BTree::create(&mut pool).unwrap();
    for i in 0..300u64 {
        let rid = heap.insert(&mut pool, &i.to_le_bytes()).unwrap();
        tree.insert(&mut pool, &i.to_be_bytes(), &rid.to_u64().to_be_bytes())
            .unwrap();
    }
    // Cross-verify: every tree value resolves to the matching heap record.
    for i in (0..300u64).step_by(17) {
        let val = tree.get(&mut pool, &i.to_be_bytes()).unwrap().unwrap();
        let rid = fempath_storage::RecordId::from_u64(u64::from_be_bytes(val.try_into().unwrap()));
        let rec = heap.get(&mut pool, rid).unwrap();
        assert_eq!(rec, i.to_le_bytes());
    }
}

#[test]
fn stats_survive_capacity_changes() {
    let mut pool = BufferPool::in_memory(4);
    let pids: Vec<_> = (0..16).map(|_| pool.allocate_page().unwrap()).collect();
    for &pid in &pids {
        pool.write_page(pid, |b| b[0] = 1).unwrap();
    }
    pool.set_capacity(2).unwrap();
    pool.set_capacity(32).unwrap();
    for &pid in &pids {
        assert_eq!(pool.read_page(pid, |b| b[0]).unwrap(), 1);
    }
    let s = pool.stats();
    assert_eq!(s.accesses(), s.buffer_hits + s.buffer_misses);
    assert!(s.disk_writes > 0, "shrink must have flushed dirty pages");
}

#[test]
fn clear_cache_preserves_all_data() {
    let mut pool = BufferPool::temp_file(8).unwrap();
    let mut t = BTree::create(&mut pool).unwrap();
    for i in 0..1000u64 {
        t.insert(&mut pool, &i.to_be_bytes(), &(i * 7).to_be_bytes())
            .unwrap();
    }
    pool.clear_cache().unwrap();
    for i in (0..1000u64).step_by(97) {
        assert_eq!(
            t.get(&mut pool, &i.to_be_bytes()).unwrap().unwrap(),
            (i * 7).to_be_bytes()
        );
    }
}
