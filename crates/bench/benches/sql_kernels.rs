//! The two SQL-feature kernels of §2.2/§3.3: window function vs
//! aggregate-join for the E-operator, and MERGE vs UPDATE+INSERT for the
//! M-operator. These isolate the NSQL/TSQL deltas of Fig 6(d).

use criterion::{criterion_group, criterion_main, Criterion};
use fempath_sql::{Database, ExecMode};
use fempath_storage::Value;
use std::hint::black_box;

/// A TVisited/TEdges fixture with a marked frontier.
fn fixture() -> Database {
    let mut db = Database::in_memory(2048);
    db.execute("CREATE TABLE TVisited (nid INT, d2s INT, p2s INT, f INT)")
        .unwrap();
    db.execute("CREATE UNIQUE INDEX ix_v ON TVisited(nid)")
        .unwrap();
    db.execute("CREATE TABLE TEdges (fid INT, tid INT, cost INT)")
        .unwrap();
    db.execute("CREATE CLUSTERED INDEX ix_e ON TEdges(fid)")
        .unwrap();
    // 2000 nodes, degree 4 ring-ish graph; 100-node frontier.
    for u in 0..2000i64 {
        for d in 1..=4i64 {
            db.execute_params(
                "INSERT INTO TEdges VALUES (?, ?, ?)",
                &[
                    Value::Int(u),
                    Value::Int((u + d * 7) % 2000),
                    Value::Int(d * 3),
                ],
            )
            .unwrap();
        }
    }
    for u in 0..300i64 {
        let f = i64::from(u < 100) * 2; // first 100 are frontier (f=2)
        db.execute_params(
            "INSERT INTO TVisited VALUES (?, ?, ?, ?)",
            &[
                Value::Int(u),
                Value::Int(u % 50),
                Value::Int(0),
                Value::Int(f),
            ],
        )
        .unwrap();
    }
    db
}

const WINDOW_E: &str = "SELECT nid, np, cost FROM ( \
    SELECT e.tid AS nid, e.fid AS np, e.cost + q.d2s AS cost, \
           ROW_NUMBER() OVER (PARTITION BY e.tid ORDER BY e.cost + q.d2s) AS rownum \
    FROM TVisited q, TEdges e WHERE q.nid = e.fid AND q.f = 2 \
  ) tmp WHERE rownum = 1";

const AGG_E: &str = "SELECT e2.tid AS nid, MIN(e2.fid) AS np, m.c AS cost \
    FROM TVisited q2, TEdges e2, ( \
      SELECT e.tid AS mtid, MIN(e.cost + q.d2s) AS c \
      FROM TVisited q, TEdges e WHERE q.nid = e.fid AND q.f = 2 GROUP BY e.tid \
    ) m \
    WHERE q2.nid = e2.fid AND q2.f = 2 AND e2.tid = m.mtid AND e2.cost + q2.d2s = m.c \
    GROUP BY e2.tid, m.c";

fn bench_e_operator(c: &mut Criterion) {
    let mut group = c.benchmark_group("e_operator");
    group.sample_size(20);
    group.bench_function("nsql_window", |b| {
        let mut db = fixture();
        b.iter(|| {
            black_box(db.query(WINDOW_E).unwrap().len());
        });
    });
    group.bench_function("tsql_aggregate_join", |b| {
        let mut db = fixture();
        b.iter(|| {
            black_box(db.query(AGG_E).unwrap().len());
        });
    });
    group.finish();
}

fn bench_m_operator(c: &mut Criterion) {
    let mut group = c.benchmark_group("m_operator");
    group.sample_size(20);
    let merge = format!(
        "MERGE INTO TVisited AS target USING ({WINDOW_E}) AS source (nid, np, cost) \
         ON source.nid = target.nid \
         WHEN MATCHED AND target.d2s > source.cost THEN \
           UPDATE SET d2s = source.cost, p2s = source.np, f = 0 \
         WHEN NOT MATCHED THEN INSERT (nid, d2s, p2s, f) \
           VALUES (source.nid, source.cost, source.np, 0)"
    );
    group.bench_function("nsql_merge", |b| {
        let mut db = fixture();
        b.iter(|| {
            black_box(db.execute(&merge).unwrap().rows_affected);
        });
    });
    group.bench_function("tsql_update_then_insert", |b| {
        let mut db = fixture();
        db.execute("CREATE TABLE TExp (nid INT, p2s INT, cost INT)")
            .unwrap();
        let fill = format!("INSERT INTO TExp (nid, p2s, cost) {WINDOW_E}");
        b.iter(|| {
            db.execute("TRUNCATE TABLE TExp").unwrap();
            db.execute(&fill).unwrap();
            let u = db
                .execute(
                    "UPDATE TVisited SET d2s = TExp.cost, p2s = TExp.p2s, f = 0 FROM TExp \
                     WHERE TVisited.nid = TExp.nid AND TVisited.d2s > TExp.cost",
                )
                .unwrap()
                .rows_affected;
            let i = db
                .execute(
                    "INSERT INTO TVisited (nid, d2s, p2s, f) \
                     SELECT nid, cost, p2s, 0 FROM TExp \
                     WHERE nid NOT IN (SELECT nid FROM TVisited)",
                )
                .unwrap()
                .rows_affected;
            black_box(u + i);
        });
    });
    group.finish();
}

/// Per-statement overhead and executor comparison: the same FEM-loop
/// statements executed through a prepared handle on the **vectorized**
/// executor (`_prepared`, the default), through the same prepared handle
/// on the PR-3 **row-at-a-time** executor (`_prepared_row` — the
/// before/after pair the vectorized-engine acceptance criterion reads),
/// through the plan cache (`execute_params`), and fully unprepared
/// (parse + bind + interpret every call).
fn bench_prepared_vs_unprepared(c: &mut Criterion) {
    let mut group = c.benchmark_group("prepared_vs_unprepared");
    group.sample_size(20);
    const STATS: &str = "SELECT MIN(d2s), COUNT(*) FROM TVisited WHERE f = 0 AND d2s < 100";
    const MARK: &str = "UPDATE TVisited SET f = f WHERE f = 2";
    for (name, sql) in [
        ("stats_select", STATS),
        ("mark_update", MARK),
        ("window_e", WINDOW_E),
    ] {
        group.bench_function(&format!("{name}_prepared"), |b| {
            let mut db = fixture();
            let stmt = db.prepare(sql).unwrap();
            b.iter(|| {
                black_box(db.execute_prepared(&stmt, &[]).unwrap().rows_affected);
            });
        });
        group.bench_function(&format!("{name}_prepared_row"), |b| {
            let mut db = fixture();
            db.set_exec_mode(ExecMode::RowAtATime);
            let stmt = db.prepare(sql).unwrap();
            b.iter(|| {
                black_box(db.execute_prepared(&stmt, &[]).unwrap().rows_affected);
            });
        });
        group.bench_function(&format!("{name}_plan_cache"), |b| {
            let mut db = fixture();
            b.iter(|| {
                black_box(db.execute_params(sql, &[]).unwrap().rows_affected);
            });
        });
        group.bench_function(&format!("{name}_unprepared"), |b| {
            let mut db = fixture();
            b.iter(|| {
                black_box(db.execute_unplanned(sql, &[]).unwrap().rows_affected);
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_e_operator,
    bench_m_operator,
    bench_prepared_vs_unprepared
);
criterion_main!(benches);
