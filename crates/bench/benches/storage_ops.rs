//! Microbenchmarks of the storage substrate: buffer-pool page access and
//! B+tree operations.

use criterion::{criterion_group, criterion_main, Criterion};
use fempath_storage::{BTree, BTreeBulkBuilder, BufferPool};
use std::hint::black_box;

fn bench_buffer_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool");
    group.sample_size(20);

    group.bench_function("hit_read", |b| {
        let mut pool = BufferPool::in_memory(64);
        let pid = pool.allocate_page().unwrap();
        b.iter(|| {
            let v = pool.read_page(pid, |buf| buf[17]).unwrap();
            black_box(v);
        });
    });

    group.bench_function("miss_cycle_100_pages_pool_10", |b| {
        let mut pool = BufferPool::in_memory(10);
        let pids: Vec<_> = (0..100).map(|_| pool.allocate_page().unwrap()).collect();
        b.iter(|| {
            for &pid in &pids {
                pool.read_page(pid, |buf| buf[0]).unwrap();
            }
        });
    });
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.sample_size(20);

    group.bench_function("insert_10k_sequential", |b| {
        b.iter(|| {
            let mut pool = BufferPool::in_memory(512);
            let mut t = BTree::create(&mut pool).unwrap();
            for i in 0..10_000u64 {
                t.insert(&mut pool, &i.to_be_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            black_box(t.len());
        });
    });

    group.bench_function("get_from_10k", |b| {
        let mut pool = BufferPool::in_memory(512);
        let mut t = BTree::create(&mut pool).unwrap();
        for i in 0..10_000u64 {
            t.insert(&mut pool, &i.to_be_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            black_box(t.get(&mut pool, &i.to_be_bytes()).unwrap());
        });
    });

    group.bench_function("prefix_scan_degree3", |b| {
        // The E-operator's inner probe: a clustered prefix scan per node.
        let mut pool = BufferPool::in_memory(512);
        let mut t = BTree::create(&mut pool).unwrap();
        for node in 0..3000u64 {
            for e in 0..3u64 {
                let mut key = node.to_be_bytes().to_vec();
                key.extend_from_slice(&e.to_be_bytes());
                t.insert(&mut pool, &key, b"payload").unwrap();
            }
        }
        let mut node = 0u64;
        b.iter(|| {
            node = (node + 997) % 3000;
            let mut n = 0;
            t.scan_prefix(&mut pool, &node.to_be_bytes(), |_, _| {
                n += 1;
                true
            })
            .unwrap();
            black_box(n);
        });
    });
    group.finish();
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_load");
    group.sample_size(20);

    // Row-at-a-time insertion of 10k sorted keys — the per-row INSERT
    // baseline of the fig6-scaled experiment, at microbench scale.
    group.bench_function("row_at_a_time_10k", |b| {
        b.iter(|| {
            let mut pool = BufferPool::in_memory(512);
            let mut t = BTree::create(&mut pool).unwrap();
            for i in 0..10_000u64 {
                t.insert(&mut pool, &i.to_be_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            black_box(t.len());
        });
    });

    // Bottom-up bulk build of the same 10k keys: leaves are packed
    // left-to-right and inner levels grown once, with no top-down splits.
    group.bench_function("bottom_up_10k", |b| {
        b.iter(|| {
            let mut pool = BufferPool::in_memory(512);
            let mut t = BTree::create(&mut pool).unwrap();
            let mut builder = BTreeBulkBuilder::for_tree(&t, &mut pool).unwrap();
            for i in 0..10_000u64 {
                builder
                    .push(&mut pool, &i.to_be_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            t.bulk_finish(&mut pool, builder).unwrap();
            black_box(t.len());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_buffer_pool, bench_btree, bench_bulk_load);
criterion_main!(benches);
