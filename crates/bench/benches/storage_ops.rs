//! Microbenchmarks of the storage substrate: buffer-pool page access and
//! B+tree operations.

use criterion::{criterion_group, criterion_main, Criterion};
use fempath_storage::{BTree, BufferPool};
use std::hint::black_box;

fn bench_buffer_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_pool");
    group.sample_size(20);

    group.bench_function("hit_read", |b| {
        let mut pool = BufferPool::in_memory(64);
        let pid = pool.allocate_page().unwrap();
        b.iter(|| {
            let v = pool.read_page(pid, |buf| buf[17]).unwrap();
            black_box(v);
        });
    });

    group.bench_function("miss_cycle_100_pages_pool_10", |b| {
        let mut pool = BufferPool::in_memory(10);
        let pids: Vec<_> = (0..100).map(|_| pool.allocate_page().unwrap()).collect();
        b.iter(|| {
            for &pid in &pids {
                pool.read_page(pid, |buf| buf[0]).unwrap();
            }
        });
    });
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.sample_size(20);

    group.bench_function("insert_10k_sequential", |b| {
        b.iter(|| {
            let mut pool = BufferPool::in_memory(512);
            let mut t = BTree::create(&mut pool).unwrap();
            for i in 0..10_000u64 {
                t.insert(&mut pool, &i.to_be_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            black_box(t.len());
        });
    });

    group.bench_function("get_from_10k", |b| {
        let mut pool = BufferPool::in_memory(512);
        let mut t = BTree::create(&mut pool).unwrap();
        for i in 0..10_000u64 {
            t.insert(&mut pool, &i.to_be_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            black_box(t.get(&mut pool, &i.to_be_bytes()).unwrap());
        });
    });

    group.bench_function("prefix_scan_degree3", |b| {
        // The E-operator's inner probe: a clustered prefix scan per node.
        let mut pool = BufferPool::in_memory(512);
        let mut t = BTree::create(&mut pool).unwrap();
        for node in 0..3000u64 {
            for e in 0..3u64 {
                let mut key = node.to_be_bytes().to_vec();
                key.extend_from_slice(&e.to_be_bytes());
                t.insert(&mut pool, &key, b"payload").unwrap();
            }
        }
        let mut node = 0u64;
        b.iter(|| {
            node = (node + 997) % 3000;
            let mut n = 0;
            t.scan_prefix(&mut pool, &node.to_be_bytes(), |_, _| {
                n += 1;
                true
            })
            .unwrap();
            black_box(n);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_buffer_pool, bench_btree);
criterion_main!(benches);
