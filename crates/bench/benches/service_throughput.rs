//! Criterion microbenches for the concurrent [`PathService`]
//! (DESIGN.md §10): per-query latency through the service at different
//! worker counts, and the batched entry point, on a fixed power-law
//! graph. The paperbench `service-throughput` experiment measures the
//! saturated-throughput curve; this group tracks the per-call overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use fempath_bench::harness::query_pairs;
use fempath_core::PathService;
use fempath_graph::generate;
use std::hint::black_box;

const N: usize = 1000;

fn bench_service(c: &mut Criterion) {
    let g = generate::power_law(N, 3, 1..=100, 42);
    let pairs = query_pairs(N, 16, 42);

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);

    for workers in [1usize, 4] {
        let svc = PathService::new(&g, workers).unwrap();
        // Warm the shared plan cache so the measurement is steady-state.
        svc.query(pairs[0].0, pairs[0].1).unwrap();
        let mut i = 0usize;
        group.bench_function(&format!("query_w{workers}"), |b| {
            b.iter(|| {
                let (s, t) = pairs[i % pairs.len()];
                i += 1;
                let out = svc.query(s, t).unwrap();
                black_box(out.path.is_some());
            });
        });
    }

    let svc = PathService::new(&g, 4).unwrap();
    svc.query(pairs[0].0, pairs[0].1).unwrap();
    group.bench_function("query_batch_16_w4", |b| {
        b.iter(|| {
            let paths = svc.query_batch(&pairs).unwrap();
            black_box(paths.len());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
