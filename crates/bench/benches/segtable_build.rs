//! SegTable construction benchmarks (the Fig 9 companion): threshold and
//! SQL-style sensitivity on a fixed Power graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fempath_core::{build_segtable_with, GraphDb, SqlStyle};
use fempath_graph::generate;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let g = generate::power_law(1000, 3, 1..=100, 42);
    let mut group = c.benchmark_group("segtable_build_power1k");
    group.sample_size(10);

    for lthd in [10i64, 20, 40] {
        group.bench_with_input(BenchmarkId::new("nsql_lthd", lthd), &lthd, |b, &lthd| {
            b.iter(|| {
                let mut gdb = GraphDb::in_memory(&g).unwrap();
                let stats = build_segtable_with(&mut gdb, lthd, SqlStyle::New).unwrap();
                black_box(stats.segments);
            });
        });
    }
    group.bench_function("tsql_lthd20", |b| {
        b.iter(|| {
            let mut gdb = GraphDb::in_memory(&g).unwrap();
            let stats = build_segtable_with(&mut gdb, 20, SqlStyle::Traditional).unwrap();
            black_box(stats.segments);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
