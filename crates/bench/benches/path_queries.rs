//! End-to-end shortest-path queries, one benchmark per algorithm, on a
//! fixed Power graph (the per-algorithm companion to Table 2/3).

use criterion::{criterion_group, criterion_main, Criterion};
use fempath_bench::harness::query_pairs;
use fempath_core::{
    BatchBdjFinder, BatchShortestPathFinder, BbfsFinder, BdjFinder, BsdjFinder, BsegFinder,
    GraphDb, ShortestPathFinder,
};
use fempath_graph::generate;
use fempath_inmem::{bidijkstra, dijkstra};
use std::hint::black_box;

const N: usize = 3000;

fn bench_algorithms(c: &mut Criterion) {
    let g = generate::power_law(N, 3, 1..=100, 42);
    let mut gdb = GraphDb::in_memory(&g).unwrap();
    gdb.build_segtable(20).unwrap();
    let pairs = query_pairs(N, 8, 42);

    let mut group = c.benchmark_group("path_query_power3k");
    group.sample_size(10);

    let mut pair_idx = 0usize;
    let mut next = move || {
        let p = pairs[pair_idx % pairs.len()];
        pair_idx += 1;
        p
    };

    macro_rules! bench_finder {
        ($name:literal, $finder:expr) => {
            let (s, t) = next();
            group.bench_function($name, |b| {
                b.iter(|| {
                    let out = $finder.find_path(&mut gdb, s, t).unwrap();
                    black_box(out.stats.expansions);
                });
            });
        };
    }

    bench_finder!("bdj", BdjFinder::default());
    bench_finder!("bsdj", BsdjFinder::default());
    bench_finder!("bbfs", BbfsFinder::default());
    bench_finder!("bseg20", BsegFinder::default());

    // The batched finder answers 8 pairs per invocation (DESIGN.md §8).
    let batch_pairs = query_pairs(N, 8, 43);
    group.bench_function("batch_bdj_8", |b| {
        b.iter(|| {
            let out = BatchBdjFinder::default()
                .find_paths(&mut gdb, &batch_pairs)
                .unwrap();
            black_box(out.stats.expansions);
        });
    });

    let (s, t) = next();
    group.bench_function("mdj_inmem", |b| {
        b.iter(|| {
            black_box(dijkstra::shortest_path(&g, s as u32, t as u32));
        });
    });
    group.bench_function("mbdj_inmem", |b| {
        b.iter(|| {
            black_box(bidijkstra::shortest_path(&g, s as u32, t as u32));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
