//! # fempath-bench
//!
//! The experiment harness regenerating every table and figure of the
//! paper's evaluation (§5). Run it with:
//!
//! ```text
//! cargo run -p fempath-bench --release --bin paperbench -- all
//! cargo run -p fempath-bench --release --bin paperbench -- table2 --scale 0.2
//! ```
//!
//! Default dataset sizes are scaled down from the paper's (see DESIGN.md
//! §6): this engine is an interpreted reproduction, not a commercial RDBMS,
//! so absolute numbers differ while the comparative *shapes* are preserved.
//! `--scale` grows sizes toward the paper's.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod harness;

pub use harness::{AggregateStats, BenchConfig};
