//! `paperbench` — regenerate the paper's tables and figures.
//!
//! ```text
//! paperbench all                 # every experiment at default scale
//! paperbench table2 fig6a        # a subset
//! paperbench fig7c --scale 0.5   # larger datasets (toward paper sizes)
//! paperbench all --queries 20 --seed 7
//! ```

use fempath_bench::experiments;
use fempath_bench::BenchConfig;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = BenchConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cfg.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--queries" => {
                i += 1;
                cfg.queries = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--queries needs an integer"));
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--json" => {
                cfg.json = true;
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
        return;
    }
    if ids.iter().any(|x| x == "all") {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }
    println!(
        "fempath paperbench — scale {} | {} queries/measurement | seed {}{}",
        cfg.scale,
        cfg.queries,
        cfg.seed,
        if cfg.json { " | json" } else { "" }
    );
    for id in &ids {
        let t = Instant::now();
        if let Err(e) = experiments::run(id, &cfg) {
            eprintln!("experiment {id} failed: {e}");
            std::process::exit(1);
        }
        println!("[{id} done in {:.1}s]", t.elapsed().as_secs_f64());
    }
}

fn usage() {
    println!("usage: paperbench <experiment...|all> [--scale X] [--queries N] [--seed N] [--json]");
    println!("  --json   also write each experiment as BENCH_<experiment>.json at the repo root");
    println!("experiments: {}", experiments::ALL.join(", "));
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
