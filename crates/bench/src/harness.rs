//! Shared measurement utilities for the paper experiments.

use fempath_core::{GraphDb, PathOutcome, ShortestPathFinder};
use fempath_sql::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Global run configuration shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Multiplier applied to the paper's dataset sizes. The default of
    /// `0.01`–`0.1` per experiment keeps the full suite in CI budgets.
    pub scale: f64,
    /// Shortest-path queries per measurement (the paper averages 100).
    pub queries: usize,
    /// RNG seed for graphs and query endpoints.
    pub seed: u64,
    /// Also write each experiment's table as `BENCH_<experiment>.json` at
    /// the repo root (paperbench `--json`) — the machine-readable perf
    /// trajectory.
    pub json: bool,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale: 1.0,
            queries: 10,
            seed: 42,
            json: false,
        }
    }
}

impl BenchConfig {
    /// Applies the experiment's base size and the user's scale.
    pub fn nodes(&self, paper_n: usize, default_fraction: f64) -> usize {
        ((paper_n as f64 * default_fraction * self.scale) as usize).max(64)
    }
}

/// Averages over a batch of path queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct AggregateStats {
    /// Mean wall time per query.
    pub avg_time: Duration,
    /// Mean number of expansions (the paper's `Exps`).
    pub avg_expansions: f64,
    /// Mean visited-node count (the paper's `Vst`).
    pub avg_visited: f64,
    /// Mean SQL statements per query.
    pub avg_statements: f64,
    /// Queries that found a path.
    pub reachable: usize,
    /// Total queries.
    pub total: usize,
}

/// Deterministic random query endpoints over `n` nodes.
pub fn query_pairs(n: usize, count: usize, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    (0..count)
        .map(|_| {
            let s = rng.gen_range(0..n) as i64;
            let mut t = rng.gen_range(0..n) as i64;
            if t == s {
                t = (t + 1) % n as i64;
            }
            (s, t)
        })
        .collect()
}

/// A Zipfian-skewed query trace over a fixed pool of (s, t) pairs:
/// pair at popularity rank `r` (0-based) is drawn with probability
/// proportional to `1 / (r + 1)^theta`. `theta = 0` is uniform;
/// `theta = 0.99` is the YCSB-style hot-pair skew where a result cache
/// earns its keep; larger values concentrate harder. Deterministic in
/// `seed`.
pub fn zipf_trace(pool: &[(i64, i64)], len: usize, theta: f64, seed: u64) -> Vec<(i64, i64)> {
    assert!(!pool.is_empty(), "zipf_trace needs a non-empty pair pool");
    // Prefix-sum CDF over the rank weights, sampled by binary search —
    // pool sizes are small (tens to thousands), so the O(n) setup and
    // O(log n) draws are negligible next to the queries themselves.
    let mut cdf = Vec::with_capacity(pool.len());
    let mut total = 0.0f64;
    for rank in 0..pool.len() {
        total += 1.0 / ((rank + 1) as f64).powf(theta);
        cdf.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1B54A32D192ED03);
    (0..len)
        .map(|_| {
            let x = rng.gen::<f64>() * total;
            let idx = cdf.partition_point(|&c| c < x).min(pool.len() - 1);
            pool[idx]
        })
        .collect()
}

/// Runs `finder` over all query pairs, averaging the stats.
pub fn measure(
    gdb: &mut GraphDb,
    finder: &dyn ShortestPathFinder,
    pairs: &[(i64, i64)],
) -> Result<AggregateStats> {
    let mut agg = AggregateStats {
        total: pairs.len(),
        ..Default::default()
    };
    let mut time = Duration::ZERO;
    for &(s, t) in pairs {
        let PathOutcome { path, stats } = finder.find_path(gdb, s, t)?;
        if path.is_some() {
            agg.reachable += 1;
        }
        time += stats.total_time;
        agg.avg_expansions += stats.expansions as f64;
        agg.avg_visited += stats.visited_nodes as f64;
        agg.avg_statements += stats.sql_statements as f64;
    }
    let n = pairs.len().max(1) as f64;
    agg.avg_time = time / pairs.len().max(1) as u32;
    agg.avg_expansions /= n;
    agg.avg_visited /= n;
    agg.avg_statements /= n;
    Ok(agg)
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// The most recent table an experiment printed, captured by
/// [`print_table`] so the experiment dispatcher can persist it
/// (`paperbench --json`) without every experiment wiring JSON by hand.
pub struct CapturedTable {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

thread_local! {
    static LAST_TABLE: std::cell::RefCell<Option<CapturedTable>> =
        const { std::cell::RefCell::new(None) };
}

/// Takes (and clears) the table most recently printed on this thread.
pub fn take_last_table() -> Option<CapturedTable> {
    LAST_TABLE.with(|t| t.borrow_mut().take())
}

/// Writes one experiment's captured table as `BENCH_<experiment>.json`
/// at the repo root (dashes become underscores). The file carries the
/// run configuration so before/after numbers are comparable.
pub fn write_bench_json(cfg: &BenchConfig, experiment: &str, table: &CapturedTable) {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"experiment\": \"{}\",\n", esc(experiment)));
    out.push_str(&format!("  \"title\": \"{}\",\n", esc(&table.title)));
    out.push_str(&format!(
        "  \"config\": {{\"scale\": {}, \"queries\": {}, \"seed\": {}}},\n",
        cfg.scale, cfg.queries, cfg.seed
    ));
    out.push_str(&format!(
        "  \"header\": [{}],\n",
        table
            .header
            .iter()
            .map(|h| format!("\"{}\"", esc(h)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"rows\": [\n");
    for (i, row) in table.rows.iter().enumerate() {
        out.push_str(&format!(
            "    [{}]{}\n",
            row.iter()
                .map(|c| format!("\"{}\"", esc(c)))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 < table.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    // The bench crate lives at <repo>/crates/bench; the JSON trajectory
    // lands at the repo root regardless of the working directory.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join(format!("BENCH_{}.json", experiment.replace('-', "_")));
    match std::fs::write(&path, out) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("[failed to write {}: {e}]", path.display()),
    }
}

/// Prints a header + aligned rows (the paper-table look) and captures
/// the table for [`take_last_table`].
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    LAST_TABLE.with(|t| {
        *t.borrow_mut() = Some(CapturedTable {
            title: title.to_string(),
            header: header.iter().map(|h| h.to_string()).collect(),
            rows: rows.to_vec(),
        })
    });
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fempath_core::BsdjFinder;
    use fempath_graph::generate;

    #[test]
    fn query_pairs_are_deterministic_and_distinct_endpoints() {
        let a = query_pairs(100, 20, 7);
        let b = query_pairs(100, 20, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|(s, t)| s != t));
    }

    #[test]
    fn zipf_trace_is_deterministic_and_skewed() {
        let pool = query_pairs(1000, 64, 3);
        let a = zipf_trace(&pool, 2000, 0.99, 9);
        let b = zipf_trace(&pool, 2000, 0.99, 9);
        assert_eq!(a, b, "same seed, same trace");
        assert!(a.iter().all(|p| pool.contains(p)));
        // Rank-0 must dominate any deep-tail pair under theta = 0.99.
        let count = |trace: &[(i64, i64)], p: (i64, i64)| trace.iter().filter(|&&q| q == p).count();
        let hot = count(&a, pool[0]);
        let cold = count(&a, pool[63]);
        assert!(
            hot > 4 * cold.max(1),
            "theta=0.99 must skew toward rank 0: hot={hot} cold={cold}"
        );
        // theta = 0 is uniform-ish: the head cannot dominate.
        let u = zipf_trace(&pool, 2000, 0.0, 9);
        assert!(count(&u, pool[0]) < u.len() / 8);
    }

    #[test]
    fn measure_aggregates() {
        let g = generate::grid(6, 6, 1..=10, 3);
        let mut gdb = GraphDb::in_memory(&g).unwrap();
        let pairs = query_pairs(36, 4, 1);
        let agg = measure(&mut gdb, &BsdjFinder::default(), &pairs).unwrap();
        assert_eq!(agg.total, 4);
        assert_eq!(agg.reachable, 4, "grid is connected");
        assert!(agg.avg_expansions > 0.0);
        assert!(agg.avg_statements > 0.0);
    }

    #[test]
    fn nodes_scaling() {
        let cfg = BenchConfig {
            scale: 2.0,
            ..Default::default()
        };
        assert_eq!(cfg.nodes(20_000, 0.1), 4000);
        let tiny = BenchConfig {
            scale: 1e-9,
            ..Default::default()
        };
        assert_eq!(tiny.nodes(20_000, 0.1), 64, "floor at 64 nodes");
    }
}
