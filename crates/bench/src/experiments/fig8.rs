//! **Figure 8** — extensive studies: (a) PostgreSQL dialect, (b) buffer
//! size, (c) index strategies, (d) relational vs in-memory.

use crate::harness::{measure, print_table, query_pairs, secs, BenchConfig};
use fempath_core::{BbfsFinder, BsegFinder, GraphDb, GraphDbOptions};
use fempath_graph::{generate, IndexKind};
use fempath_inmem::{bidijkstra, dijkstra};
use fempath_sql::{Dialect, Result};
use std::time::Instant;

/// Fig 8(a): BBFS vs BSEG(20) on the PostgreSQL dialect (no MERGE).
pub fn fig8a(cfg: &BenchConfig) -> Result<()> {
    let paper_sizes = [100_000usize, 200_000, 300_000, 400_000, 500_000];
    let mut rows = Vec::new();
    for (i, &paper_n) in paper_sizes.iter().enumerate() {
        let n = cfg.nodes(paper_n, 0.01);
        let g = generate::power_law(n, 3, 1..=100, cfg.seed + i as u64);
        let mut gdb = GraphDb::new(
            &g,
            &GraphDbOptions {
                dialect: Dialect::POSTGRES,
                ..Default::default()
            },
        )?;
        gdb.build_segtable(20)?;
        let pairs = query_pairs(n, cfg.queries, cfg.seed + i as u64);
        let bbfs = measure(&mut gdb, &BbfsFinder::default(), &pairs)?;
        let bseg = measure(&mut gdb, &BsegFinder::default(), &pairs)?;
        rows.push(vec![
            format!("{n}"),
            secs(bbfs.avg_time),
            secs(bseg.avg_time),
        ]);
    }
    print_table(
        "Fig 8(a): query time (s) on the PostgreSQL dialect (no MERGE) — Power",
        &["|V|", "BBFS", "BSEG(20)"],
        &rows,
    );
    println!("paper shape: same relative behaviour as on DBMS-x");
    Ok(())
}

/// Fig 8(b): query time vs buffer size (disk-resident database).
pub fn fig8b(cfg: &BenchConfig) -> Result<()> {
    let n = cfg.nodes(4_847_571, 0.004);
    let g = generate::livejournal_like(n, 1..=100, cfg.seed);
    let pairs = query_pairs(n, cfg.queries, cfg.seed);
    let mut rows = Vec::new();
    for buffer_pages in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let mut gdb = GraphDb::new(
            &g,
            &GraphDbOptions {
                buffer_pages,
                on_disk: true,
                ..Default::default()
            },
        )?;
        gdb.build_segtable(3)?;
        // Warm the buffer as the paper does ("collected after the database
        // buffer becomes hot").
        let _ = measure(
            &mut gdb,
            &BsegFinder::default(),
            &pairs[..pairs.len().min(2)],
        )?;
        gdb.db.reset_io_stats();
        let bseg = measure(&mut gdb, &BsegFinder::default(), &pairs)?;
        let io = gdb.db.io_stats();
        rows.push(vec![
            format!("{buffer_pages}"),
            format!("{:.1}", buffer_pages as f64 * 8.0 / 1024.0),
            secs(bseg.avg_time),
            format!("{}", io.disk_reads),
            format!("{:.1}%", io.hit_rate() * 100.0),
        ]);
    }
    print_table(
        "Fig 8(b): BSEG(3) query time vs buffer size — LiveJournal-like (disk)",
        &["pages", "MiB", "time (s)", "disk reads", "hit rate"],
        &rows,
    );
    println!("paper shape: time falls ~linearly with buffer, flattens once resident");
    Ok(())
}

/// Fig 8(c): NoIndex / Index / CluIndex on TOutSegs + TVisited.
pub fn fig8c(cfg: &BenchConfig) -> Result<()> {
    let paper_sizes = [100_000usize, 200_000, 300_000, 400_000, 500_000];
    let mut rows = Vec::new();
    for (i, &paper_n) in paper_sizes.iter().enumerate() {
        let n = cfg.nodes(paper_n, 0.005);
        let g = generate::power_law(n, 3, 1..=100, cfg.seed + i as u64);
        let pairs = query_pairs(n, cfg.queries, cfg.seed + i as u64);
        let mut cells = vec![format!("{n}")];
        for (edges_index, visited_index) in [
            (IndexKind::NoIndex, IndexKind::NoIndex),
            (IndexKind::Secondary, IndexKind::Secondary),
            (IndexKind::Clustered, IndexKind::Clustered),
        ] {
            let mut gdb = GraphDb::new(
                &g,
                &GraphDbOptions {
                    edges_index,
                    visited_index,
                    ..Default::default()
                },
            )?;
            gdb.build_segtable(20)?;
            let bseg = measure(&mut gdb, &BsegFinder::default(), &pairs)?;
            cells.push(secs(bseg.avg_time));
        }
        rows.push(cells);
    }
    print_table(
        "Fig 8(c): BSEG(20) query time (s) vs index strategy — Power",
        &["|V|", "NoIndex", "Index", "CluIndex"],
        &rows,
    );
    println!("paper shape: CluIndex best, NoIndex worst");
    Ok(())
}

/// Fig 8(d): relational BSEG vs in-memory MDJ / MBDJ.
pub fn fig8d(cfg: &BenchConfig) -> Result<()> {
    let paper_sizes = [100_000usize, 200_000, 300_000, 400_000, 500_000];
    let mut rows = Vec::new();
    for (i, &paper_n) in paper_sizes.iter().enumerate() {
        let n = cfg.nodes(paper_n, 0.01);
        let g = generate::power_law(n, 3, 1..=100, cfg.seed + i as u64);
        let pairs = query_pairs(n, cfg.queries, cfg.seed + i as u64);
        let mut gdb = GraphDb::in_memory(&g)?;
        gdb.build_segtable(20)?;
        // Warm the buffer (the paper measures with a hot buffer).
        let _ = measure(
            &mut gdb,
            &BsegFinder::default(),
            &pairs[..pairs.len().min(2)],
        )?;
        let bseg = measure(&mut gdb, &BsegFinder::default(), &pairs)?;
        let t0 = Instant::now();
        for &(s, t) in &pairs {
            let _ = dijkstra::shortest_path(&g, s as u32, t as u32);
        }
        let mdj = t0.elapsed() / pairs.len() as u32;
        let t1 = Instant::now();
        for &(s, t) in &pairs {
            let _ = bidijkstra::shortest_path(&g, s as u32, t as u32);
        }
        let mbdj = t1.elapsed() / pairs.len() as u32;
        rows.push(vec![
            format!("{n}"),
            secs(mdj),
            secs(bseg.avg_time),
            secs(mbdj),
        ]);
    }
    print_table(
        "Fig 8(d): query time (s) — in-memory MDJ vs relational BSEG(20) vs in-memory MBDJ",
        &["|V|", "MDJ", "BSEG(20)", "MBDJ"],
        &rows,
    );
    println!("paper shape: MBDJ < BSEG < MDJ at scale (BSEG beats plain in-memory Dijkstra)");
    Ok(())
}
