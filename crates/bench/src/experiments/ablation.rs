//! Ablation beyond the paper: the Theorem-1 bidirectional pruning rule
//! on/off (DESIGN.md §7).

use crate::harness::{measure, print_table, query_pairs, secs, BenchConfig};
use fempath_core::{BsdjFinder, BsegFinder, GraphDb, ShortestPathFinder};
use fempath_graph::generate;
use fempath_sql::Result;

/// Compares BSDJ and BSEG with and without the Theorem-1 pruning term.
pub fn prune(cfg: &BenchConfig) -> Result<()> {
    let n = cfg.nodes(100_000, 0.02);
    let g = generate::power_law(n, 3, 1..=100, cfg.seed);
    let mut gdb = GraphDb::in_memory(&g)?;
    gdb.build_segtable(20)?;
    let pairs = query_pairs(n, cfg.queries, cfg.seed);
    let mut rows = Vec::new();
    type FinderPair = (
        &'static str,
        Box<dyn ShortestPathFinder>,
        Box<dyn ShortestPathFinder>,
    );
    let cases: Vec<FinderPair> = vec![
        (
            "BSDJ",
            Box::new(BsdjFinder::default()),
            Box::new(BsdjFinder {
                prune: false,
                ..Default::default()
            }),
        ),
        (
            "BSEG(20)",
            Box::new(BsegFinder::default()),
            Box::new(BsegFinder {
                prune: false,
                ..Default::default()
            }),
        ),
    ];
    for (name, on, off) in cases {
        let with = measure(&mut gdb, on.as_ref(), &pairs)?;
        let without = measure(&mut gdb, off.as_ref(), &pairs)?;
        rows.push(vec![
            name.to_string(),
            secs(with.avg_time),
            format!("{:.0}", with.avg_visited),
            secs(without.avg_time),
            format!("{:.0}", without.avg_visited),
        ]);
    }
    print_table(
        "Ablation: Theorem-1 pruning on/off (Power graph)",
        &[
            "algo",
            "pruned t",
            "pruned Vst",
            "no-prune t",
            "no-prune Vst",
        ],
        &rows,
    );
    println!("expectation: pruning shrinks the visited set once a path is known");
    Ok(())
}
