//! **Figure 7** — SegTable optimization: (a) BSDJ/BBFS/BSEG(3) on
//! LiveJournal-like graphs, (b) BBFS/BSDJ/BSEG(3,5,7) on Random graphs,
//! (c)/(d) query time vs the index threshold `lthd`.

use crate::harness::{measure, print_table, query_pairs, secs, BenchConfig};
use fempath_core::{BbfsFinder, BsdjFinder, BsegFinder, GraphDb};
use fempath_graph::{generate, Graph};
use fempath_sql::Result;

/// Fig 7(a): LiveJournal 0.5 M–4 M in the paper.
pub fn fig7a(cfg: &BenchConfig) -> Result<()> {
    let paper_sizes = [500_000usize, 1_000_000, 2_000_000, 4_000_000];
    let mut rows = Vec::new();
    for (i, &paper_n) in paper_sizes.iter().enumerate() {
        let n = cfg.nodes(paper_n, 0.01);
        let g = generate::livejournal_like(n, 1..=100, cfg.seed + i as u64);
        let mut gdb = GraphDb::in_memory(&g)?;
        gdb.build_segtable(3)?;
        let pairs = query_pairs(n, cfg.queries, cfg.seed + i as u64);
        let bsdj = measure(&mut gdb, &BsdjFinder::default(), &pairs)?;
        let bbfs = measure(&mut gdb, &BbfsFinder::default(), &pairs)?;
        let bseg = measure(&mut gdb, &BsegFinder::default(), &pairs)?;
        rows.push(vec![
            format!("{n}"),
            secs(bsdj.avg_time),
            secs(bbfs.avg_time),
            secs(bseg.avg_time),
        ]);
    }
    print_table(
        "Fig 7(a): query time (s) vs graph scale — LiveJournal-like",
        &["|V|", "BSDJ", "BBFS", "BSEG(3)"],
        &rows,
    );
    println!("paper shape: BSEG fastest (~1/3 of BSDJ, ~1/7 of BBFS at 4M)");
    Ok(())
}

/// Fig 7(b): Random graphs, BSEG at several thresholds.
pub fn fig7b(cfg: &BenchConfig) -> Result<()> {
    let paper_sizes = [5_000_000usize, 10_000_000, 15_000_000, 20_000_000];
    let mut rows = Vec::new();
    for (i, &paper_n) in paper_sizes.iter().enumerate() {
        let n = cfg.nodes(paper_n, 0.002);
        let g = generate::random_graph(n, 3, 1..=100, cfg.seed + i as u64);
        let pairs = query_pairs(n, cfg.queries, cfg.seed + i as u64);
        let mut gdb = GraphDb::in_memory(&g)?;
        let bbfs = measure(&mut gdb, &BbfsFinder::default(), &pairs)?;
        let bsdj = measure(&mut gdb, &BsdjFinder::default(), &pairs)?;
        let mut cells = vec![format!("{n}"), secs(bbfs.avg_time), secs(bsdj.avg_time)];
        for lthd in [3i64, 5, 7] {
            gdb.build_segtable(lthd)?;
            let bseg = measure(&mut gdb, &BsegFinder::default(), &pairs)?;
            cells.push(secs(bseg.avg_time));
        }
        rows.push(cells);
    }
    print_table(
        "Fig 7(b): query time (s) vs graph scale — Random graphs",
        &["|V|", "BBFS", "BSDJ", "BSEG(3)", "BSEG(5)", "BSEG(7)"],
        &rows,
    );
    println!("paper shape: BSEG variants fastest; BBFS degrades at scale");
    Ok(())
}

fn lthd_sweep(
    title: &str,
    graphs: Vec<(String, Graph)>,
    lthds: &[i64],
    cfg: &BenchConfig,
) -> Result<()> {
    let mut rows = Vec::new();
    for (name, g) in graphs {
        let n = g.num_nodes();
        let pairs = query_pairs(n, cfg.queries, cfg.seed);
        let mut gdb = GraphDb::in_memory(&g)?;
        let mut cells = vec![name];
        for &lthd in lthds {
            gdb.build_segtable(lthd)?;
            let bseg = measure(&mut gdb, &BsegFinder::default(), &pairs)?;
            cells.push(secs(bseg.avg_time));
        }
        rows.push(cells);
    }
    let mut header = vec!["graph"];
    let labels: Vec<String> = lthds.iter().map(|l| format!("lthd={l}")).collect();
    header.extend(labels.iter().map(|s| s.as_str()));
    print_table(title, &header, &rows);
    Ok(())
}

/// Fig 7(c): BSEG query time vs lthd on Power graphs (paper 100 K–500 K).
pub fn fig7c(cfg: &BenchConfig) -> Result<()> {
    let paper_sizes = [100_000usize, 200_000, 300_000, 400_000, 500_000];
    let graphs = paper_sizes
        .iter()
        .enumerate()
        .map(|(i, &paper_n)| {
            let n = cfg.nodes(paper_n, 0.01);
            (
                format!("Power{n}"),
                generate::power_law(n, 3, 1..=100, cfg.seed + i as u64),
            )
        })
        .collect();
    lthd_sweep(
        "Fig 7(c): BSEG query time (s) vs lthd — Power graphs",
        graphs,
        &[10, 30, 40, 50],
        cfg,
    )?;
    println!("paper shape: improves then declines; lthd~30 best for Power");
    Ok(())
}

/// Fig 7(d): BSEG query time vs lthd on the real-graph stand-ins.
pub fn fig7d(cfg: &BenchConfig) -> Result<()> {
    let web_n = cfg.nodes(855_802, 0.005);
    let dblp_n = cfg.nodes(312_967, 0.005);
    let graphs = vec![
        (
            format!("GoogleWeb~{web_n}"),
            generate::webgraph_like(web_n, 1..=100, cfg.seed),
        ),
        (
            format!("DBLP~{dblp_n}"),
            generate::dblp_like(dblp_n, 1..=100, cfg.seed + 1),
        ),
    ];
    lthd_sweep(
        "Fig 7(d): BSEG query time (s) vs lthd — GoogleWeb/DBLP stand-ins",
        graphs,
        &[2, 4, 6, 8, 10],
        cfg,
    )?;
    println!("paper shape: smaller lthd (6-8) suits the real graphs");
    Ok(())
}
