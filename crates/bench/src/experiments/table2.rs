//! **Table 2** — expansions and time for DJ, BDJ, BSDJ on Power graphs.
//!
//! Paper: Power graphs 20 K–100 K nodes (degree 3); DJ took 425 s at 20 K
//! and ">600 s" beyond, BDJ 6.75–15.1 s, BSDJ 2.90–3.62 s. The shape to
//! reproduce: DJ ≫ BDJ ≫ BSDJ in both expansions (~50× / ~140×) and time;
//! DJ only measurable at the smallest size.

use crate::harness::{measure, print_table, query_pairs, secs, BenchConfig};
use fempath_core::{BdjFinder, BsdjFinder, DjFinder, GraphDb};
use fempath_graph::generate;
use fempath_sql::Result;

pub fn run(cfg: &BenchConfig) -> Result<()> {
    let paper_sizes = [20_000usize, 40_000, 60_000, 80_000, 100_000];
    let mut rows = Vec::new();
    for (i, &paper_n) in paper_sizes.iter().enumerate() {
        let n = cfg.nodes(paper_n, 0.05);
        let g = generate::power_law(n, 3, 1..=100, cfg.seed + i as u64);
        let mut gdb = GraphDb::in_memory(&g)?;
        let pairs = query_pairs(n, cfg.queries, cfg.seed + i as u64);

        // DJ is node-at-a-time; the paper could not run it past the
        // smallest graph, and neither do we (1 query on sizes > smallest).
        let dj = if i == 0 {
            let dj_pairs = &pairs[..pairs.len().min(2)];
            let s = measure(&mut gdb, &DjFinder::default(), dj_pairs)?;
            (format!("{:.0}", s.avg_expansions), secs(s.avg_time))
        } else {
            ("-".into(), "> skipped".into())
        };
        let bdj = measure(&mut gdb, &BdjFinder::default(), &pairs)?;
        let bsdj = measure(&mut gdb, &BsdjFinder::default(), &pairs)?;
        rows.push(vec![
            format!("{n}"),
            dj.0,
            dj.1,
            format!("{:.0}", bdj.avg_expansions),
            secs(bdj.avg_time),
            format!("{:.0}", bsdj.avg_expansions),
            secs(bsdj.avg_time),
        ]);
    }
    print_table(
        "Table 2: Exps (# expansions) and Time (s) on Power graphs",
        &[
            "|V|",
            "DJ Exps",
            "DJ Time",
            "BDJ Exps",
            "BDJ Time",
            "BSDJ Exps",
            "BSDJ Time",
        ],
        &rows,
    );
    println!("paper shape: DJ >> BDJ >> BSDJ; DJ ~50x BDJ and ~140x BSDJ on expansions");
    Ok(())
}
