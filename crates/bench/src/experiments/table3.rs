//! **Table 3** — time, expansions and visited nodes for BSDJ, BBFS and
//! BSEG(5) on Random graphs.
//!
//! Paper: Random graphs 5 M–20 M nodes (degree 3). Shape: BBFS has the
//! fewest expansions but the most visited nodes; BSEG has ~1/3 the
//! expansions of BSDJ with only slightly more visited nodes, and is the
//! fastest overall.

use crate::harness::{measure, print_table, query_pairs, secs, BenchConfig};
use fempath_core::{BbfsFinder, BsdjFinder, BsegFinder, GraphDb};
use fempath_graph::generate;
use fempath_sql::Result;

pub fn run(cfg: &BenchConfig) -> Result<()> {
    let paper_sizes = [5_000_000usize, 10_000_000, 15_000_000, 20_000_000];
    let mut rows = Vec::new();
    for (i, &paper_n) in paper_sizes.iter().enumerate() {
        let n = cfg.nodes(paper_n, 0.002);
        let g = generate::random_graph(n, 3, 1..=100, cfg.seed + i as u64);
        let mut gdb = GraphDb::in_memory(&g)?;
        gdb.build_segtable(5)?;
        let pairs = query_pairs(n, cfg.queries, cfg.seed + i as u64);

        let bsdj = measure(&mut gdb, &BsdjFinder::default(), &pairs)?;
        let bbfs = measure(&mut gdb, &BbfsFinder::default(), &pairs)?;
        let bseg = measure(&mut gdb, &BsegFinder::default(), &pairs)?;
        rows.push(vec![
            format!("{n}"),
            secs(bsdj.avg_time),
            format!("{:.0}", bsdj.avg_expansions),
            format!("{:.0}", bsdj.avg_visited),
            secs(bbfs.avg_time),
            format!("{:.0}", bbfs.avg_expansions),
            format!("{:.0}", bbfs.avg_visited),
            secs(bseg.avg_time),
            format!("{:.0}", bseg.avg_expansions),
            format!("{:.0}", bseg.avg_visited),
        ]);
    }
    print_table(
        "Table 3: Time (s), Exps, Vst on Random graphs — BSDJ / BBFS / BSEG(5)",
        &[
            "|V|", "BSDJ t", "Exps", "Vst", "BBFS t", "Exps", "Vst", "BSEG t", "Exps", "Vst",
        ],
        &rows,
    );
    println!("paper shape: BBFS fewest Exps / most Vst; BSEG ~1/3 of BSDJ's Exps, fastest");
    Ok(())
}
