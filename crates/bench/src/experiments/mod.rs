//! One module per paper artifact. Every experiment prints a table shaped
//! like the corresponding table/figure series in §5 of the paper.

pub mod ablation;
pub mod batch;
pub mod fig6;
pub mod fig6_scaled;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod landmark;
pub mod service;
pub mod service_cached;
pub mod table2;
pub mod table3;

use crate::harness::BenchConfig;
use fempath_sql::Result;

/// All experiment ids, in paper order.
pub const ALL: &[&str] = &[
    "table2",
    "table3",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig6d",
    "fig6-scaled",
    "fig7a",
    "fig7b",
    "fig7c",
    "fig7d",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig8d",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig9d",
    "fig9e",
    "fig9f",
    "fig9g",
    "fig9h",
    "ablation-prune",
    "landmark-ablation",
    "batch-throughput",
    "service-throughput",
    "service-cached",
];

/// Runs one experiment by id. With `cfg.json` set, the experiment's
/// printed table is also persisted as `BENCH_<id>.json` at the repo root
/// (captured from [`crate::harness::print_table`], so every experiment
/// gets it for free).
pub fn run(id: &str, cfg: &BenchConfig) -> Result<()> {
    crate::harness::take_last_table(); // drop any stale capture
    dispatch(id, cfg)?;
    if cfg.json {
        match crate::harness::take_last_table() {
            Some(table) => crate::harness::write_bench_json(cfg, id, &table),
            None => eprintln!("[--json: experiment {id} printed no table]"),
        }
    }
    Ok(())
}

fn dispatch(id: &str, cfg: &BenchConfig) -> Result<()> {
    match id {
        "table2" => table2::run(cfg),
        "table3" => table3::run(cfg),
        "fig6a" => fig6::fig6a(cfg),
        "fig6b" => fig6::fig6b(cfg),
        "fig6c" => fig6::fig6c(cfg),
        "fig6d" => fig6::fig6d(cfg),
        "fig6-scaled" => fig6_scaled::run(cfg),
        "fig7a" => fig7::fig7a(cfg),
        "fig7b" => fig7::fig7b(cfg),
        "fig7c" => fig7::fig7c(cfg),
        "fig7d" => fig7::fig7d(cfg),
        "fig8a" => fig8::fig8a(cfg),
        "fig8b" => fig8::fig8b(cfg),
        "fig8c" => fig8::fig8c(cfg),
        "fig8d" => fig8::fig8d(cfg),
        "fig9a" => fig9::fig9a(cfg),
        "fig9b" => fig9::fig9b(cfg),
        "fig9c" => fig9::fig9c(cfg),
        "fig9d" => fig9::fig9d(cfg),
        "fig9e" => fig9::fig9e(cfg),
        "fig9f" => fig9::fig9f(cfg),
        "fig9g" => fig9::fig9g(cfg),
        "fig9h" => fig9::fig9h(cfg),
        "ablation-prune" => ablation::prune(cfg),
        "landmark-ablation" => landmark::ablation(cfg),
        "batch-throughput" => batch::throughput(cfg),
        "service-throughput" => service::throughput(cfg),
        "service-cached" => service_cached::run(cfg),
        other => Err(fempath_sql::SqlError::Eval(format!(
            "unknown experiment {other}; known: {}",
            ALL.join(", ")
        ))),
    }
}
