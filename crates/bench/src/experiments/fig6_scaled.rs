//! **Fig 6 scaled** — the million-node storage tier (DESIGN.md §14).
//!
//! Sweeps the Power family up to |V| = 1 M on a disk-resident database
//! whose buffer pool is a small fraction of the data size, and records:
//!
//! * per-row INSERT load throughput (the pre-bulk-load baseline, small
//!   sizes only — it is the thing being replaced),
//! * bottom-up bulk-load throughput into clustered rows,
//! * bulk-load throughput into delta-compressed adjacency segments,
//! * on-disk size of the row vs segment representations,
//! * peak buffer-pool occupancy and hit rate under BDJ queries, showing
//!   the 2Q eviction policy holding the working set with the pool far
//!   smaller than the data.

use crate::harness::{print_table, query_pairs, secs, BenchConfig};
use fempath_core::{BdjFinder, GraphDb, GraphDbOptions, ShortestPathFinder};
use fempath_graph::{
    generate, load_graph, load_graph_bulk, BulkLoadOptions, IndexKind, LoadOptions,
};
use fempath_sql::{Database, Result};
use std::time::{Duration, Instant};

const PAPER_SIZES: [usize; 2] = [100_000, 1_000_000];
/// 4096 × 8 KiB = 32 MiB — deliberately a small fraction of the 1 M-node
/// edge data so eviction is exercised, not dodged.
const POOL_PAGES: usize = 4096;
/// Per-row INSERT baselines above this size would dominate the run for a
/// number that no longer moves; the ≥ 100 k acceptance point still gets one.
const MAX_BASELINE_NODES: usize = 150_000;

const PAGE_MB: f64 = 8.0 / 1024.0;

fn rate(arcs: usize, elapsed: Duration) -> f64 {
    arcs as f64 / elapsed.as_secs_f64().max(1e-9)
}

pub fn run(cfg: &BenchConfig) -> Result<()> {
    let mut rows = Vec::new();
    for (i, &paper_n) in PAPER_SIZES.iter().enumerate() {
        let n = cfg.nodes(paper_n, 1.0);
        let g = generate::power_law(n, 3, 1..=100, cfg.seed + i as u64);
        let arcs = g.num_arcs();

        // Baseline: the per-row INSERT path the bulk loaders replace.
        let insert_rate = if n <= MAX_BASELINE_NODES {
            let mut db = Database::on_temp_file(POOL_PAGES)?;
            let t0 = Instant::now();
            load_graph(
                &mut db,
                &g,
                &LoadOptions {
                    edges_index: IndexKind::Clustered,
                    with_nodes: true,
                    batch_size: 1,
                },
            )?;
            Some(rate(arcs, t0.elapsed()))
        } else {
            None
        };

        // Bottom-up bulk load into clustered rows.
        let mut bulk_db = Database::on_temp_file(POOL_PAGES)?;
        let t0 = Instant::now();
        load_graph_bulk(&mut bulk_db, &g, &BulkLoadOptions::default())?;
        let bulk_rate = rate(arcs, t0.elapsed());
        let row_mb = bulk_db.data_pages() as f64 * PAGE_MB;
        drop(bulk_db);

        // Bulk load into delta-compressed adjacency segments, then query it.
        let t0 = Instant::now();
        let mut gdb = GraphDb::new(
            &g,
            &GraphDbOptions {
                buffer_pages: POOL_PAGES,
                on_disk: true,
                bulk_load: true,
                segmented_edges: true,
                ..Default::default()
            },
        )?;
        let seg_rate = rate(arcs, t0.elapsed());
        let seg_mb = gdb.db.data_pages() as f64 * PAGE_MB;

        // BDJ latency with the pool pinned far below the data size. Cap the
        // query count at the top size: each query is a full bidirectional
        // relational Dijkstra.
        let q = if n > 200_000 {
            cfg.queries.min(2)
        } else {
            cfg.queries
        };
        let pairs = query_pairs(n, q.max(1), cfg.seed + i as u64);
        gdb.db.reset_io_stats();
        let finder = BdjFinder::default();
        let mut total = Duration::ZERO;
        for &(s, t) in &pairs {
            let t0 = Instant::now();
            finder.find_path(&mut gdb, s, t)?;
            total += t0.elapsed();
        }
        let io = gdb.db.io_stats();
        let hit_rate = io.buffer_hits as f64 / (io.buffer_hits + io.buffer_misses).max(1) as f64;
        let peak_mb = gdb.db.buffer_resident() as f64 * PAGE_MB;

        rows.push(vec![
            format!("{n}"),
            format!("{arcs}"),
            insert_rate.map_or("-".into(), |r| format!("{r:.0}")),
            format!("{bulk_rate:.0}"),
            insert_rate.map_or("-".into(), |r| format!("{:.1}x", bulk_rate / r)),
            format!("{seg_rate:.0}"),
            format!("{row_mb:.1}"),
            format!("{seg_mb:.1}"),
            format!("{:.1}", POOL_PAGES as f64 * PAGE_MB),
            format!("{peak_mb:.1}"),
            format!("{:.0}%", hit_rate * 100.0),
            secs(total / pairs.len().max(1) as u32),
        ]);
        println!(
            "[|V|={n}: 2Q evictions probationary={} promotions={} demotions={}]",
            io.probationary_evictions, io.promotions, io.demotions
        );
    }
    let header = [
        "|V|", "arcs", "ins e/s", "bulk e/s", "bulk-x", "seg e/s", "row MB", "seg MB", "pool MB",
        "peak MB", "hit%", "BDJ s",
    ];
    print_table(
        "Fig 6 scaled: million-node load throughput and memory — per-row INSERT vs bottom-up bulk \
         vs segment-compressed (Power, disk-resident, 32 MiB pool)",
        &header,
        &rows,
    );
    println!(
        "expected shape: bulk ≥ 5x the INSERT baseline; segments shrink the edge table several-fold; \
         peak pool occupancy stays capped at the pool size — a small fraction of the data"
    );
    Ok(())
}
