//! Landmark-index ablation (DESIGN.md §12): what does seeding the
//! Theorem-1 pruning ceiling from the triangle-inequality bound buy, and
//! what does the index cost to build?
//!
//! One combined table, per fig6a-scale Power graph size:
//! index build time and SSSP iterations, BDJ with and without bound
//! seeding (same index resident either way, so the only delta is the
//! seeded ceiling), BatchBDJ iterations with and without seeding, and the
//! fast path's coverage plus its per-query time on covered pairs.

use crate::harness::{measure, print_table, query_pairs, secs, BenchConfig};
use fempath_core::{landmarks, BatchBdjFinder, BatchShortestPathFinder, BdjFinder, GraphDb};
use fempath_graph::generate;
use fempath_sql::Result;
use std::time::Instant;

/// Landmarks per graph: enough for real coverage on the Power graphs
/// without dominating the build column.
const K: usize = 8;

/// fig6a's size ladder, thinned to three points (the ablation sweep runs
/// every finder twice per size).
const PAPER_SIZES: &[usize] = &[20_000, 60_000, 100_000];
const FRACTION: f64 = 0.05;

/// Seeded-vs-unseeded pruning plus index build cost and fast-path yield.
pub fn ablation(cfg: &BenchConfig) -> Result<()> {
    let mut rows = Vec::new();
    for &paper_n in PAPER_SIZES {
        let n = cfg.nodes(paper_n, FRACTION);
        let g = generate::power_law(n, 3, 1..=100, cfg.seed);
        let mut gdb = GraphDb::in_memory(&g)?;
        let build_start = Instant::now();
        let stats = gdb.build_landmarks(K)?;
        let build_time = build_start.elapsed();

        let pairs = query_pairs(n, cfg.queries, cfg.seed);
        // The index stays resident for the unseeded run too: the ablation
        // isolates the seeded ceiling, not the table's buffer footprint.
        let seeded = measure(&mut gdb, &BdjFinder::default(), &pairs)?;
        let unseeded = measure(
            &mut gdb,
            &BdjFinder {
                seed_bounds: false,
                ..Default::default()
            },
            &pairs,
        )?;
        let batch_seeded = BatchBdjFinder::default().find_paths(&mut gdb, &pairs)?;
        let batch_unseeded = BatchBdjFinder {
            seed_bounds: false,
            ..Default::default()
        }
        .find_paths(&mut gdb, &pairs)?;

        // Fast-path yield over the same endpoints, plus guaranteed-covered
        // pairs (every node paired with a landmark is answered exactly).
        let mut probes = pairs.clone();
        for (i, &lm) in stats.landmarks.iter().enumerate() {
            probes.push(((i * 97 % n) as i64, lm));
        }
        let fast_start = Instant::now();
        let covered = probes
            .iter()
            .filter(|&&(s, t)| matches!(landmarks::exact_path(&mut gdb, s, t), Ok(Some(_))))
            .count();
        let fast_time = fast_start.elapsed() / probes.len().max(1) as u32;

        rows.push(vec![
            n.to_string(),
            secs(build_time),
            stats.sssp_iterations.to_string(),
            secs(seeded.avg_time),
            format!("{:.0}", seeded.avg_expansions),
            secs(unseeded.avg_time),
            format!("{:.0}", unseeded.avg_expansions),
            batch_seeded.stats.expansions.to_string(),
            batch_unseeded.stats.expansions.to_string(),
            format!("{covered}/{}", probes.len()),
            secs(fast_time),
        ]);
    }
    print_table(
        &format!("Landmark ablation: {K} landmarks, Theorem-1 seeding on/off (Power graph)"),
        &[
            "nodes",
            "build t",
            "build iters",
            "seeded t",
            "seeded Exps",
            "no-seed t",
            "no-seed Exps",
            "batch seed Exps",
            "batch no-seed Exps",
            "covered",
            "fast t",
        ],
        &rows,
    );
    println!("expectation: seeding never increases iterations; covered pairs skip FEM entirely");
    Ok(())
}
