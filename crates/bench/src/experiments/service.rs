//! **Service throughput** — beyond the paper (DESIGN.md §10, §13):
//! queries per second of the concurrent [`PathService`] as the worker
//! count grows, on a Fig 6(a)-style power-law graph, with the dispatch
//! contention counters alongside.
//!
//! Every worker owns a private session over one `Arc`-shared read-only
//! graph snapshot and a private job queue (work-stealing dispatch), so
//! adding workers adds truly concurrent searches without a shared
//! dispatch lock. The workload is driven by as many client threads as
//! there are workers, all pulling query pairs from one shared list.
//! Expected shape: queries/sec grows with the worker count up to the
//! machine's available parallelism (the table records it) and stays flat
//! beyond. The steal count, queue-depth high-water mark and queue-wait
//! quantiles say *why* a point is slow: high steals with low waits is a
//! healthy balancing pool; growing waits mean saturation.

use crate::harness::{print_table, query_pairs, secs, BenchConfig};
use fempath_core::PathService;
use fempath_graph::generate;
use fempath_sql::Result;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Drives `svc` with one client thread per worker until every pair is
/// answered; returns (elapsed, reachable count, sorted per-query
/// latencies).
fn drive(svc: &PathService, pairs: &[(i64, i64)]) -> Result<(Duration, usize, Vec<Duration>)> {
    let next = AtomicUsize::new(0);
    let reachable = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(pairs.len()));
    let t = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..svc.worker_count() {
            scope.spawn(|| {
                // Client-local latencies, merged once at the end so the
                // lock never sits on the query path.
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(s, t)) = pairs.get(i) else { break };
                    let q = Instant::now();
                    match svc.query(s, t) {
                        Ok(out) if out.path.is_some() => {
                            reachable.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {}
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    local.push(q.elapsed());
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let elapsed = t.elapsed();
    if failed.load(Ordering::Relaxed) > 0 {
        return Err(fempath_sql::SqlError::Eval(format!(
            "{} service queries failed",
            failed.load(Ordering::Relaxed)
        )));
    }
    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    Ok((elapsed, reachable.load(Ordering::Relaxed), lat))
}

/// Latency at quantile `q` (0.0–1.0) of an ascending-sorted sample
/// (nearest-rank; the sample is complete, not an estimate).
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Milliseconds with two decimals (latency columns).
fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

pub fn throughput(cfg: &BenchConfig) -> Result<()> {
    let n = cfg.nodes(100_000, 0.01);
    let g = generate::power_law(n, 3, 1..=100, cfg.seed);
    // Enough queries that the pool stays busy across every sweep point.
    let pairs = query_pairs(n, cfg.queries.max(4) * 8, cfg.seed);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    let mut baseline_qps = 0.0f64;
    let mut baseline_reachable = usize::MAX;
    let mut qps_by_workers: Vec<(usize, f64)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let svc = PathService::new(&g, workers)?;
        let (elapsed, reachable, lat) = drive(&svc, &pairs)?;
        if workers == 1 {
            baseline_reachable = reachable;
        } else {
            assert_eq!(
                reachable, baseline_reachable,
                "worker count must not change answers"
            );
        }
        let qps = pairs.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        if workers == 1 {
            baseline_qps = qps;
        }
        qps_by_workers.push((workers, qps));
        let stats = svc.stats();
        let plans = svc.snapshot().shared_plan_stats();
        rows.push(vec![
            format!("{workers}"),
            format!("{}", pairs.len()),
            secs(elapsed),
            format!("{qps:.1}"),
            format!("{:.2}x", qps / baseline_qps.max(1e-9)),
            ms(percentile(&lat, 0.50)),
            ms(percentile(&lat, 0.95)),
            ms(percentile(&lat, 0.99)),
            format!("{}", stats.total_stolen()),
            format!("{}", stats.max_queue_depth_hwm()),
            format!("{}", stats.wait_quantile_us(0.50)),
            format!("{}", stats.wait_quantile_us(0.99)),
            format!("{}", plans.publishes),
            format!("{}", stats.lm_fast_path_hits),
            format!("{:.0}%", stats.cache_hit_rate() * 100.0),
            format!("{reachable}"),
        ]);
    }
    let header = [
        "workers",
        "queries",
        "total (s)",
        "queries/s",
        "speedup",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "steals",
        "q-hwm",
        "qwait p50 (us)",
        "qwait p99 (us)",
        "plan pubs",
        "lm hits",
        "cache hit%",
        "reachable",
    ];
    print_table(
        &format!("Service throughput: PathService on Power |V|={n}, {cores} core(s) available"),
        &header,
        &rows,
    );
    println!(
        "expected shape: queries/sec scales with workers up to the \
         machine's available parallelism ({cores} here) — every worker \
         searches a private session over one shared read-only snapshot \
         and drains a private job queue (stealing from siblings when \
         idle), so there is no lock on the dispatch path; beyond the \
         core count the curve flattens rather than degrading. The \
         steal/queue-depth/queue-wait columns separate dispatch \
         contention (waits grow while cores are idle) from honest \
         saturation (waits grow once workers exceed cores); `plan pubs` \
         stays at the distinct-statement count because the shared plan \
         cache publishes once per statement."
    );
    // Scaling gate (ISSUE 7): with the contention-free dispatch path,
    // q/s must be non-decreasing from 1 to 4 workers wherever real
    // parallelism exists. Skipped on 1-core machines, where extra
    // workers can only add scheduling overhead.
    if cores > 1 {
        let qps_at = |w: usize| {
            qps_by_workers
                .iter()
                .find(|&&(workers, _)| workers == w)
                .map(|&(_, q)| q)
                .unwrap_or(0.0)
        };
        let (one, four) = (qps_at(1), qps_at(4));
        assert!(
            four >= one * 0.9,
            "throughput regressed with workers on a {cores}-core machine: \
             {one:.1} q/s at 1 worker vs {four:.1} q/s at 4 (dispatch is \
             serializing again)"
        );
        println!("scaling check: {one:.1} q/s @1 worker -> {four:.1} q/s @4 workers (ok)");
    } else {
        println!("scaling check skipped: only one core available");
    }
    Ok(())
}
