//! **Service throughput** — beyond the paper (DESIGN.md §10): queries per
//! second of the concurrent [`PathService`] as the worker count grows, on
//! a Fig 6(a)-style power-law graph.
//!
//! Every worker owns a private session over one `Arc`-shared read-only
//! graph snapshot, so adding workers adds truly concurrent searches. The
//! workload is driven by as many client threads as there are workers,
//! all pulling query pairs from one shared list. Expected shape:
//! queries/sec grows with the worker count up to the machine's available
//! parallelism (the table records it) and stays flat beyond.

use crate::harness::{print_table, query_pairs, secs, BenchConfig};
use fempath_core::PathService;
use fempath_graph::generate;
use fempath_sql::Result;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Drives `svc` with one client thread per worker until every pair is
/// answered; returns (elapsed, reachable count, sorted per-query
/// latencies).
fn drive(svc: &PathService, pairs: &[(i64, i64)]) -> Result<(Duration, usize, Vec<Duration>)> {
    let next = AtomicUsize::new(0);
    let reachable = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let latencies: Mutex<Vec<Duration>> = Mutex::new(Vec::with_capacity(pairs.len()));
    let t = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..svc.worker_count() {
            scope.spawn(|| {
                // Client-local latencies, merged once at the end so the
                // lock never sits on the query path.
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(s, t)) = pairs.get(i) else { break };
                    let q = Instant::now();
                    match svc.query(s, t) {
                        Ok(out) if out.path.is_some() => {
                            reachable.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {}
                        Err(_) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    local.push(q.elapsed());
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let elapsed = t.elapsed();
    if failed.load(Ordering::Relaxed) > 0 {
        return Err(fempath_sql::SqlError::Eval(format!(
            "{} service queries failed",
            failed.load(Ordering::Relaxed)
        )));
    }
    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    Ok((elapsed, reachable.load(Ordering::Relaxed), lat))
}

/// Latency at quantile `q` (0.0–1.0) of an ascending-sorted sample
/// (nearest-rank; the sample is complete, not an estimate).
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Milliseconds with two decimals (latency columns).
fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

pub fn throughput(cfg: &BenchConfig) -> Result<()> {
    let n = cfg.nodes(100_000, 0.01);
    let g = generate::power_law(n, 3, 1..=100, cfg.seed);
    // Enough queries that the pool stays busy across every sweep point.
    let pairs = query_pairs(n, cfg.queries.max(4) * 8, cfg.seed);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    let mut baseline_qps = 0.0f64;
    let mut baseline_reachable = usize::MAX;
    for workers in [1usize, 2, 4, 8] {
        let svc = PathService::new(&g, workers)?;
        let (elapsed, reachable, lat) = drive(&svc, &pairs)?;
        if workers == 1 {
            baseline_reachable = reachable;
        } else {
            assert_eq!(
                reachable, baseline_reachable,
                "worker count must not change answers"
            );
        }
        let qps = pairs.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        if workers == 1 {
            baseline_qps = qps;
        }
        rows.push(vec![
            format!("{workers}"),
            format!("{}", pairs.len()),
            secs(elapsed),
            format!("{qps:.1}"),
            format!("{:.2}x", qps / baseline_qps.max(1e-9)),
            ms(percentile(&lat, 0.50)),
            ms(percentile(&lat, 0.95)),
            ms(percentile(&lat, 0.99)),
            format!("{reachable}"),
        ]);
    }
    let header = [
        "workers",
        "queries",
        "total (s)",
        "queries/s",
        "speedup",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "reachable",
    ];
    print_table(
        &format!("Service throughput: PathService on Power |V|={n}, {cores} core(s) available"),
        &header,
        &rows,
    );
    println!(
        "expected shape: queries/sec scales with workers up to the \
         machine's available parallelism ({cores} here) — every worker \
         searches a private session over one shared read-only snapshot, \
         so there is no lock on the hot path; beyond the core count the \
         curve flattens rather than degrading. The p50/p95/p99 per-query \
         latencies keep the trajectory meaningful on single-core CI, \
         where aggregate qps alone stays flat across the sweep."
    );
    Ok(())
}
