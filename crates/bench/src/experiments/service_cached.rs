//! **Cached serving under Zipfian skew** — beyond the paper
//! (DESIGN.md §16): the sharded, version-keyed result cache measured
//! under the workload it was built for — skewed traffic where a small
//! set of hot `(s, t)` pairs dominates.
//!
//! A fixed pool of query pairs is replayed as a Zipfian trace at several
//! skew parameters θ (0 = uniform … 1.2 = extreme head concentration),
//! once against a cache-enabled [`PathService`] and once against an
//! identically-configured cache-disabled one. The table reports the hit
//! rate and the cached vs uncached latency quantiles side by side.
//! Expected shape: at θ ≈ 1 (the YCSB-style skew) most of the trace
//! lands on a few dozen hot pairs, the hit rate clears 50% and the
//! cached p50 collapses to a hash-map probe, while the uniform row
//! shows the honest worst case — a cache can only help as much as the
//! workload repeats itself.
//!
//! The final row measures **invalidation cost**: after an edge mutation
//! bumps the graph version, every cached verdict is stale by
//! construction, so the same hot trace must re-pay one full computation
//! per distinct pair before the hit rate recovers. That recovery — not
//! the steady state — is the price of serving mutations from a cache
//! keyed by `(s, t, graph_version)`.

use crate::harness::{print_table, query_pairs, zipf_trace, BenchConfig};
use fempath_core::{PathService, PathServiceOptions};
use fempath_graph::generate;
use fempath_sql::Result;
use std::time::{Duration, Instant};

/// Replays `trace` through `svc.query` on one client thread, returning
/// ascending per-query latencies (single-threaded replay keeps the
/// quantiles clean: no queue-wait noise on top of the cache effect).
fn replay(svc: &PathService, trace: &[(i64, i64)]) -> Result<Vec<Duration>> {
    let mut lat = Vec::with_capacity(trace.len());
    for &(s, t) in trace {
        let q = Instant::now();
        svc.query(s, t)?;
        lat.push(q.elapsed());
    }
    lat.sort_unstable();
    Ok(lat)
}

/// Nearest-rank quantile of an ascending-sorted complete sample.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Microseconds with one decimal — cached probes sit well under a
/// millisecond, so the ms scale used elsewhere would print zeros.
fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

pub fn run(cfg: &BenchConfig) -> Result<()> {
    let n = cfg.nodes(100_000, 0.01);
    let g = generate::power_law(n, 3, 1..=100, cfg.seed);
    // The trace must dwarf the distinct-pair pool regardless of
    // --queries, or the compulsory misses (one per distinct pair) swamp
    // the hit rate the CI smoke gate asserts on; the pool in turn scales
    // with the trace so uniform replay keeps paying compulsory misses
    // while Zipfian skew concentrates on the head ranks.
    let trace_len = (cfg.queries * 100).clamp(400, 20_000);
    let pool = query_pairs(n, (trace_len / 2).clamp(64, 4096), cfg.seed);
    let workers = 4;

    let mk_svc = |cache_bytes: usize| {
        PathService::with_options(
            &g,
            &PathServiceOptions {
                workers,
                cache_bytes,
                ..Default::default()
            },
        )
    };

    let mut rows = Vec::new();
    let mut hot_svc = None;
    let mut hot_trace = Vec::new();
    for &theta in &[0.0f64, 0.5, 0.99, 1.2] {
        let trace = zipf_trace(&pool, trace_len, theta, cfg.seed);
        let cached_svc = mk_svc(fempath_core::DEFAULT_CACHE_BYTES)?;
        let uncached_svc = mk_svc(0)?;
        let cached = replay(&cached_svc, &trace)?;
        let uncached = replay(&uncached_svc, &trace)?;
        let stats = cached_svc.stats();
        let hit_rate = stats.cache_hit_rate();
        rows.push(vec![
            format!("{theta:.2}"),
            format!("{trace_len}"),
            format!("{}", pool.len()),
            format!("{:.1}%", hit_rate * 100.0),
            us(percentile(&cached, 0.50)),
            us(percentile(&cached, 0.95)),
            us(percentile(&cached, 0.99)),
            us(percentile(&uncached, 0.50)),
            us(percentile(&uncached, 0.95)),
            us(percentile(&uncached, 0.99)),
            format!(
                "{:.1}x",
                percentile(&uncached, 0.50).as_secs_f64()
                    / percentile(&cached, 0.50).as_secs_f64().max(1e-9)
            ),
        ]);
        if theta == 0.99 {
            hot_svc = Some(cached_svc);
            hot_trace = trace;
        }
    }

    // Invalidation cost: mutate the graph under the θ=0.99 service and
    // replay the hot trace — every resident verdict is now stale, so the
    // first touch per distinct pair re-pays the full search.
    let Some(svc) = hot_svc else {
        return Err(fempath_sql::SqlError::Eval(
            "theta sweep no longer includes 0.99".into(),
        ));
    };
    let before = svc.stats();
    let (u, v) = pool[0];
    svc.insert_edge(u, v, 1)?;
    let post = replay(&svc, &hot_trace)?;
    let after = svc.stats();
    let post_hits = after.cache.hits - before.cache.hits;
    let post_misses = after.cache.misses - before.cache.misses;
    let post_total = (post_hits + post_misses).max(1);
    rows.push(vec![
        "0.99+mut".into(),
        format!("{}", hot_trace.len()),
        format!("{}", pool.len()),
        format!("{:.1}%", post_hits as f64 / post_total as f64 * 100.0),
        us(percentile(&post, 0.50)),
        us(percentile(&post, 0.95)),
        us(percentile(&post, 0.99)),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("stale {}", after.cache.stale - before.cache.stale),
    ]);

    let header = [
        "theta",
        "trace",
        "pool",
        "hit rate",
        "cached p50 (us)",
        "cached p95 (us)",
        "cached p99 (us)",
        "uncached p50 (us)",
        "uncached p95 (us)",
        "uncached p99 (us)",
        "p50 speedup",
    ];
    print_table(
        &format!(
            "Cached serving under Zipfian skew: PathService on Power |V|={n}, \
             {workers} workers, version-keyed result cache (DESIGN.md §16)"
        ),
        &header,
        &rows,
    );
    println!(
        "expected shape: at theta ~= 1 the trace concentrates on a few \
         dozen hot pairs, the hit rate clears 50% and the cached p50 \
         collapses to a sharded hash probe, while uniform replay (theta \
         0) pays one compulsory miss per distinct pair and barely \
         benefits; the 0.99+mut row replays the hot trace after an edge \
         mutation bumped the graph version — every resident verdict is \
         stale by construction (the `stale` count in the last column), \
         so the hit rate dips to the re-fill rate and recovers within \
         one pass over the distinct pairs."
    );
    Ok(())
}
