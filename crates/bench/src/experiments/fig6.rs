//! **Figure 6** — FEM framework and set-at-a-time evaluation on Power
//! graphs: (a) BDJ vs BSDJ query time, (b) time per phase, (c) time per
//! operator, (d) NSQL vs TSQL.

use crate::harness::{measure, print_table, query_pairs, secs, BenchConfig};
use fempath_core::{
    BdjFinder, BsdjFinder, ExecMode, FemOperator, GraphDb, Phase, ShortestPathFinder, SqlStyle,
};
use fempath_graph::generate;
use fempath_sql::Result;
use std::time::Duration;

const PAPER_SIZES: [usize; 5] = [20_000, 40_000, 60_000, 80_000, 100_000];
const FRACTION: f64 = 0.05;

type Setup = (GraphDb, Vec<(i64, i64)>, usize);

fn setup(cfg: &BenchConfig, i: usize, paper_n: usize) -> Result<Setup> {
    let n = cfg.nodes(paper_n, FRACTION);
    let g = generate::power_law(n, 3, 1..=100, cfg.seed + i as u64);
    let gdb = GraphDb::in_memory(&g)?;
    let pairs = query_pairs(n, cfg.queries, cfg.seed + i as u64);
    Ok((gdb, pairs, n))
}

/// Fig 6(a): BDJ vs BSDJ query time vs graph scale, each measured on the
/// row-at-a-time (PR-3 baseline) and the vectorized executor over the
/// same cached plans — the before/after pair of DESIGN.md §11.
pub fn fig6a(cfg: &BenchConfig) -> Result<()> {
    let mut rows = Vec::new();
    for (i, &paper_n) in PAPER_SIZES.iter().enumerate() {
        let (mut gdb, pairs, n) = setup(cfg, i, paper_n)?;
        gdb.set_exec_mode(ExecMode::RowAtATime);
        let bdj_row = measure(&mut gdb, &BdjFinder::default(), &pairs)?;
        let bsdj_row = measure(&mut gdb, &BsdjFinder::default(), &pairs)?;
        gdb.set_exec_mode(ExecMode::Vectorized);
        let bdj = measure(&mut gdb, &BdjFinder::default(), &pairs)?;
        let bsdj = measure(&mut gdb, &BsdjFinder::default(), &pairs)?;
        let speedup = |row: Duration, vec: Duration| {
            format!("{:.2}x", row.as_secs_f64() / vec.as_secs_f64().max(1e-9))
        };
        rows.push(vec![
            format!("{n}"),
            secs(bdj_row.avg_time),
            secs(bdj.avg_time),
            speedup(bdj_row.avg_time, bdj.avg_time),
            secs(bsdj_row.avg_time),
            secs(bsdj.avg_time),
            speedup(bsdj_row.avg_time, bsdj.avg_time),
            format!(
                "{:.2}x",
                bdj.avg_time.as_secs_f64() / bsdj.avg_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    let header = [
        "|V|",
        "BDJ row",
        "BDJ vec",
        "BDJ vec-x",
        "BSDJ row",
        "BSDJ vec",
        "BSDJ vec-x",
        "BDJ/BSDJ",
    ];
    print_table(
        "Fig 6(a): query time (s) vs graph scale — BDJ vs BSDJ (Power), row-at-a-time vs vectorized executor",
        &header,
        &rows,
    );
    println!(
        "paper shape: BSDJ ~1/3 of BDJ across all sizes; vec-x columns record \
         the batch-at-a-time executor's win over the PR-3 row baseline"
    );
    Ok(())
}

/// Fig 6(b): BSDJ time per phase (PE / SC / FPR).
pub fn fig6b(cfg: &BenchConfig) -> Result<()> {
    let mut rows = Vec::new();
    for (i, &paper_n) in PAPER_SIZES.iter().enumerate() {
        let (mut gdb, pairs, n) = setup(cfg, i, paper_n)?;
        let finder = BsdjFinder::default();
        let mut pe = Duration::ZERO;
        let mut sc = Duration::ZERO;
        let mut fpr = Duration::ZERO;
        for &(s, t) in &pairs {
            let out = finder.find_path(&mut gdb, s, t)?;
            pe += out.stats.phase(Phase::PathExpansion);
            sc += out.stats.phase(Phase::StatsCollection);
            fpr += out.stats.phase(Phase::FullPathRecovery);
        }
        let q = pairs.len() as u32;
        rows.push(vec![
            format!("{n}"),
            secs(pe / q),
            secs(sc / q),
            secs(fpr / q),
        ]);
    }
    let header = ["|V|", "PE", "SC", "FPR"];
    print_table(
        "Fig 6(b): query time (s) per phase — BSDJ (Power)",
        &header,
        &rows,
    );
    println!("paper shape: path expansion (PE) dominates");
    Ok(())
}

/// Fig 6(c): BSDJ time per operator (F / E / M), split-statement mode.
pub fn fig6c(cfg: &BenchConfig) -> Result<()> {
    let mut rows = Vec::new();
    for (i, &paper_n) in PAPER_SIZES.iter().enumerate() {
        let (mut gdb, pairs, n) = setup(cfg, i, paper_n)?;
        let finder = BsdjFinder {
            split_operators: true,
            ..Default::default()
        };
        let mut f = Duration::ZERO;
        let mut e = Duration::ZERO;
        let mut m = Duration::ZERO;
        for &(s, t) in &pairs {
            let out = finder.find_path(&mut gdb, s, t)?;
            f += out.stats.operator(FemOperator::F);
            e += out.stats.operator(FemOperator::E);
            m += out.stats.operator(FemOperator::M);
        }
        let q = pairs.len() as u32;
        let total = (f + e + m).as_secs_f64().max(1e-9);
        rows.push(vec![
            format!("{n}"),
            secs(f / q),
            secs(e / q),
            secs(m / q),
            format!("{:.0}%", e.as_secs_f64() / total * 100.0),
        ]);
    }
    let header = ["|V|", "F-op", "E-op", "M-op", "E share"];
    print_table(
        "Fig 6(c): query time (s) per operator — BSDJ, split statements (Power)",
        &header,
        &rows,
    );
    println!("paper shape: the E-operator takes ~75% (it joins the graph table)");
    Ok(())
}

/// Fig 6(d): NSQL (window + MERGE) vs TSQL (aggregate-join + UPDATE/INSERT).
pub fn fig6d(cfg: &BenchConfig) -> Result<()> {
    let mut rows = Vec::new();
    for (i, &paper_n) in PAPER_SIZES.iter().enumerate() {
        let (mut gdb, pairs, n) = setup(cfg, i, paper_n)?;
        let nsql = measure(&mut gdb, &BsdjFinder::default(), &pairs)?;
        let tsql = measure(
            &mut gdb,
            &BsdjFinder {
                style: SqlStyle::Traditional,
                ..Default::default()
            },
            &pairs,
        )?;
        rows.push(vec![
            format!("{n}"),
            secs(nsql.avg_time),
            secs(tsql.avg_time),
            format!(
                "{:.2}x",
                tsql.avg_time.as_secs_f64() / nsql.avg_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    let header = ["|V|", "NSQL", "TSQL", "TSQL/NSQL"];
    print_table(
        "Fig 6(d): query time (s) — NSQL vs TSQL, BSDJ (Power)",
        &header,
        &rows,
    );
    println!("paper shape: NSQL outperforms TSQL significantly");
    Ok(())
}
