//! **Figure 9** — SegTable construction: index size and construction time
//! across thresholds, databases, SQL styles, buffer sizes and graph scale.

use crate::harness::{print_table, BenchConfig};
use fempath_core::{build_segtable_with, GraphDb, GraphDbOptions, SqlStyle};
use fempath_graph::{generate, Graph};
use fempath_sql::{Dialect, Result};

const POWER_PAPER_SIZES: [usize; 5] = [100_000, 200_000, 300_000, 400_000, 500_000];

fn power_graphs(cfg: &BenchConfig, fraction: f64) -> Vec<(usize, Graph)> {
    POWER_PAPER_SIZES
        .iter()
        .enumerate()
        .map(|(i, &paper_n)| {
            let n = cfg.nodes(paper_n, fraction);
            (n, generate::power_law(n, 3, 1..=100, cfg.seed + i as u64))
        })
        .collect()
}

fn sweep_build(
    title: &str,
    graphs: Vec<(String, Graph)>,
    lthds: &[i64],
    report_size: bool,
    dialect: Dialect,
    style: SqlStyle,
) -> Result<()> {
    let mut rows = Vec::new();
    for (name, g) in graphs {
        let mut cells = vec![name];
        for &lthd in lthds {
            let mut gdb = GraphDb::new(
                &g,
                &GraphDbOptions {
                    dialect,
                    ..Default::default()
                },
            )?;
            let stats = build_segtable_with(&mut gdb, lthd, style)?;
            if report_size {
                cells.push(format!("{}", stats.segments));
            } else {
                cells.push(format!("{:.2}", stats.build_time.as_secs_f64()));
            }
        }
        rows.push(cells);
    }
    let labels: Vec<String> = lthds.iter().map(|l| format!("lthd={l}")).collect();
    let mut header = vec!["graph"];
    header.extend(labels.iter().map(|s| s.as_str()));
    print_table(title, &header, &rows);
    Ok(())
}

/// Fig 9(a): index size (segments) vs lthd on Power graphs.
pub fn fig9a(cfg: &BenchConfig) -> Result<()> {
    let graphs = power_graphs(cfg, 0.005)
        .into_iter()
        .map(|(n, g)| (format!("Power{n}"), g))
        .collect();
    sweep_build(
        "Fig 9(a): SegTable size (segments) vs lthd — Power",
        graphs,
        &[10, 20, 30, 40],
        true,
        Dialect::DBMS_X,
        SqlStyle::New,
    )?;
    println!("paper shape: size grows with lthd, ~linear in |V|");
    Ok(())
}

/// Fig 9(b): index size vs lthd on GoogleWeb/DBLP stand-ins.
pub fn fig9b(cfg: &BenchConfig) -> Result<()> {
    let web_n = cfg.nodes(855_802, 0.004);
    let dblp_n = cfg.nodes(312_967, 0.004);
    let graphs = vec![
        (
            format!("GoogleWeb~{web_n}"),
            generate::webgraph_like(web_n, 1..=100, cfg.seed),
        ),
        (
            format!("DBLP~{dblp_n}"),
            generate::dblp_like(dblp_n, 1..=100, cfg.seed + 1),
        ),
    ];
    sweep_build(
        "Fig 9(b): SegTable size (segments) vs lthd — GoogleWeb/DBLP stand-ins",
        graphs,
        &[2, 4, 6, 8, 10],
        true,
        Dialect::DBMS_X,
        SqlStyle::New,
    )?;
    println!("paper shape: GoogleWeb more lthd-sensitive (skewed degrees)");
    Ok(())
}

/// Fig 9(c): construction time vs lthd on Power graphs.
pub fn fig9c(cfg: &BenchConfig) -> Result<()> {
    let graphs = power_graphs(cfg, 0.005)
        .into_iter()
        .map(|(n, g)| (format!("Power{n}"), g))
        .collect();
    sweep_build(
        "Fig 9(c): SegTable construction time (s) vs lthd — Power",
        graphs,
        &[10, 20, 30, 40],
        false,
        Dialect::DBMS_X,
        SqlStyle::New,
    )?;
    println!("paper shape: larger lthd -> longer construction");
    Ok(())
}

/// Fig 9(d): construction time vs lthd on the real-graph stand-ins.
pub fn fig9d(cfg: &BenchConfig) -> Result<()> {
    let web_n = cfg.nodes(855_802, 0.004);
    let dblp_n = cfg.nodes(312_967, 0.004);
    let graphs = vec![
        (
            format!("GoogleWeb~{web_n}"),
            generate::webgraph_like(web_n, 1..=100, cfg.seed),
        ),
        (
            format!("DBLP~{dblp_n}"),
            generate::dblp_like(dblp_n, 1..=100, cfg.seed + 1),
        ),
    ];
    sweep_build(
        "Fig 9(d): SegTable construction time (s) vs lthd — GoogleWeb/DBLP stand-ins",
        graphs,
        &[2, 4, 6, 8],
        false,
        Dialect::DBMS_X,
        SqlStyle::New,
    )?;
    Ok(())
}

/// Fig 9(e): construction time on the PostgreSQL dialect.
pub fn fig9e(cfg: &BenchConfig) -> Result<()> {
    let graphs = power_graphs(cfg, 0.005)
        .into_iter()
        .map(|(n, g)| (format!("Power{n}"), g))
        .collect();
    sweep_build(
        "Fig 9(e): SegTable construction time (s) on PostgreSQL dialect — Power",
        graphs,
        &[10, 20, 30],
        false,
        Dialect::POSTGRES,
        SqlStyle::New,
    )?;
    println!("paper shape: same behaviour as DBMS-x");
    Ok(())
}

/// Fig 9(f): construction NSQL vs TSQL.
pub fn fig9f(cfg: &BenchConfig) -> Result<()> {
    let mut rows = Vec::new();
    for (n, g) in power_graphs(cfg, 0.005) {
        let mut a = GraphDb::in_memory(&g)?;
        let sa = build_segtable_with(&mut a, 20, SqlStyle::New)?;
        let mut b = GraphDb::in_memory(&g)?;
        let sb = build_segtable_with(&mut b, 20, SqlStyle::Traditional)?;
        rows.push(vec![
            format!("{n}"),
            format!("{:.2}", sa.build_time.as_secs_f64()),
            format!("{:.2}", sb.build_time.as_secs_f64()),
            format!(
                "{:.2}x",
                sb.build_time.as_secs_f64() / sa.build_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print_table(
        "Fig 9(f): SegTable construction time (s), lthd=20 — NSQL vs TSQL (Power)",
        &["|V|", "NSQL", "TSQL", "TSQL/NSQL"],
        &rows,
    );
    println!("paper shape: NSQL still wins, but by less than in path finding");
    Ok(())
}

/// Fig 9(g): construction time vs buffer size.
pub fn fig9g(cfg: &BenchConfig) -> Result<()> {
    let n = cfg.nodes(4_847_571, 0.002);
    let g = generate::livejournal_like(n, 1..=100, cfg.seed);
    let mut rows = Vec::new();
    for buffer_pages in [64usize, 128, 256, 512, 1024, 2048] {
        let mut gdb = GraphDb::new(
            &g,
            &GraphDbOptions {
                buffer_pages,
                on_disk: true,
                ..Default::default()
            },
        )?;
        let stats = build_segtable_with(&mut gdb, 3, SqlStyle::New)?;
        rows.push(vec![
            format!("{buffer_pages}"),
            format!("{:.1}", buffer_pages as f64 * 8.0 / 1024.0),
            format!("{:.2}", stats.build_time.as_secs_f64()),
            format!("{}", stats.io.disk_reads),
        ]);
    }
    print_table(
        "Fig 9(g): SegTable construction time (s) vs buffer size — LiveJournal-like, lthd=3",
        &["pages", "MiB", "time (s)", "disk reads"],
        &rows,
    );
    println!("paper shape: improves with buffer, flattens past the working set");
    Ok(())
}

/// Fig 9(h): construction time vs graph scale.
pub fn fig9h(cfg: &BenchConfig) -> Result<()> {
    let paper_sizes = [500_000usize, 1_000_000, 2_000_000, 4_000_000];
    let mut rows = Vec::new();
    for (i, &paper_n) in paper_sizes.iter().enumerate() {
        let n = cfg.nodes(paper_n, 0.005);
        let g = generate::livejournal_like(n, 1..=100, cfg.seed + i as u64);
        let mut gdb = GraphDb::in_memory(&g)?;
        let stats = build_segtable_with(&mut gdb, 3, SqlStyle::New)?;
        rows.push(vec![
            format!("{n}"),
            format!("{:.2}", stats.build_time.as_secs_f64()),
            format!("{}", stats.segments),
        ]);
    }
    print_table(
        "Fig 9(h): SegTable construction time (s) vs graph scale — LiveJournal-like, lthd=3",
        &["|V|", "time (s)", "segments"],
        &rows,
    );
    println!("paper shape: ~linear in graph size (only local segments are encoded)");
    Ok(())
}
