//! **Batch throughput** — beyond the paper (DESIGN.md §8): pairs/second of
//! the batched multi-pair finder vs. looping single-query finders over the
//! same pairs, for batch sizes 1, 8 and 64.
//!
//! Two loop baselines bracket the comparison:
//!
//! * **BDJ** — the batched finder's single-query namesake (bidirectional
//!   Dijkstra, node-at-a-time). Batching amortizes both the per-statement
//!   overhead and the node-at-a-time evaluation, so this is where the
//!   batch win is largest.
//! * **BSDJ** — the paper's strongest raw-edge finder (set-at-a-time).
//!   Batching still amortizes per-statement overhead against it, but both
//!   now expand sets, so the margin is thinner.

use crate::harness::{print_table, query_pairs, secs, BenchConfig};
use fempath_core::{
    BatchBdjFinder, BatchShortestPathFinder, BdjFinder, BsdjFinder, ExecMode, GraphDb,
    ShortestPathFinder,
};
use fempath_graph::generate;
use fempath_sql::Result;
use std::time::{Duration, Instant};

/// Pairs/second with a guard against zero elapsed.
fn rate(pairs: usize, elapsed: Duration) -> String {
    format!("{:.1}", pairs as f64 / elapsed.as_secs_f64().max(1e-9))
}

/// Times one full pass of `f` over the workload.
fn timed(mut f: impl FnMut() -> Result<usize>) -> Result<(Duration, usize)> {
    let t = Instant::now();
    let reachable = f()?;
    Ok((t.elapsed(), reachable))
}

pub fn throughput(cfg: &BenchConfig) -> Result<()> {
    let n = cfg.nodes(100_000, 0.01);
    let g = generate::power_law(n, 3, 1..=100, cfg.seed);
    let mut gdb = GraphDb::in_memory(&g)?;
    let bdj = BdjFinder::default();
    let bsdj = BsdjFinder::default();
    let batched = BatchBdjFinder::default();

    let mut rows = Vec::new();
    for (i, &batch) in [1usize, 8, 64].iter().enumerate() {
        let pairs = query_pairs(n, batch, cfg.seed + i as u64);

        let loop_over = |gdb: &mut GraphDb, f: &dyn ShortestPathFinder| -> Result<usize> {
            let mut reachable = 0;
            for &(s, t) in &pairs {
                if f.find_path(gdb, s, t)?.path.is_some() {
                    reachable += 1;
                }
            }
            Ok(reachable)
        };
        let (bdj_time, bdj_reach) = timed(|| loop_over(&mut gdb, &bdj))?;
        let (bsdj_time, bsdj_reach) = timed(|| loop_over(&mut gdb, &bsdj))?;
        // The batched finder runs on both executors: `row` is the PR-3
        // row-at-a-time baseline, `vec` the batch-at-a-time engine — the
        // before/after pair of DESIGN.md §11.
        gdb.set_exec_mode(ExecMode::RowAtATime);
        let (batch_row_time, batch_row_reach) = timed(|| {
            let out = batched.find_paths(&mut gdb, &pairs)?;
            Ok(out.paths.iter().filter(|p| p.is_some()).count())
        })?;
        gdb.set_exec_mode(ExecMode::Vectorized);
        let (batch_time, batch_reach) = timed(|| {
            let out = batched.find_paths(&mut gdb, &pairs)?;
            Ok(out.paths.iter().filter(|p| p.is_some()).count())
        })?;
        assert_eq!(bdj_reach, batch_reach, "loop and batch must agree");
        assert_eq!(bsdj_reach, batch_reach, "loop and batch must agree");
        assert_eq!(batch_row_reach, batch_reach, "executors must agree");

        rows.push(vec![
            format!("{batch}"),
            secs(bdj_time),
            rate(batch, bdj_time),
            secs(bsdj_time),
            rate(batch, bsdj_time),
            secs(batch_row_time),
            secs(batch_time),
            rate(batch, batch_time),
            format!(
                "{:.2}x",
                batch_row_time.as_secs_f64() / batch_time.as_secs_f64().max(1e-9)
            ),
            format!(
                "{:.2}x",
                bdj_time.as_secs_f64() / batch_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    let header = [
        "batch",
        "BDJ loop (s)",
        "BDJ pairs/s",
        "BSDJ loop (s)",
        "BSDJ pairs/s",
        "batched row (s)",
        "batched vec (s)",
        "batched pairs/s",
        "vec/row",
        "speedup",
    ];
    print_table(
        &format!("Batch throughput: BatchBDJ vs looped BDJ/BSDJ, Power graph |V|={n}"),
        &header,
        &rows,
    );
    println!(
        "expected shape: batched pairs/sec beats the BDJ loop at every size. \
         Prepared statements with cached physical plans removed most \
         per-statement overhead from the looped baselines too (BDJ ~2-3x \
         faster than pre-prepared), so the batch margin over BDJ is narrower \
         than the pre-prepared 2x-at-batch-8, and the set-at-a-time BSDJ \
         loop — whose statements were always few and fat — is now the \
         tougher bar."
    );
    Ok(())
}
