//! Synthetic graph generators matching the paper's five dataset families
//! (§5.1): Random, Power (Barabási–Albert), and stand-ins for the three
//! real graphs (DBLP, GoogleWeb, LiveJournal) that reproduce their salient
//! topology — degree skew, clustering, density. All weights are drawn
//! uniformly from a configurable range (the paper uses `[1, 100]`).
//!
//! Every generator is fully deterministic given its seed.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::RangeInclusive;

fn weight(rng: &mut StdRng, range: &RangeInclusive<u32>) -> u32 {
    rng.gen_range(range.clone())
}

/// Random graph exactly as the paper builds it: "we randomly select the
/// source and target node for m times among n nodes", with `m = n * avg_degree`.
pub fn random_graph(n: usize, avg_degree: usize, weights: RangeInclusive<u32>, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = n * avg_degree;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        edges.push((u, v, weight(&mut rng, &weights)));
    }
    Graph::from_undirected_edges(n, edges)
}

/// Barabási–Albert preferential attachment — the paper's "Power" family
/// (generated there with the Barabási Graph Generator v1.4). Each new node
/// attaches `attach` edges to existing nodes with probability proportional
/// to their degree.
pub fn power_law(n: usize, attach: usize, weights: RangeInclusive<u32>, seed: u64) -> Graph {
    assert!(n > attach && attach >= 1, "need n > attach >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32, u32)> = Vec::with_capacity(n * attach);
    // Repeated-endpoint list: node ids appear once per incident edge, so a
    // uniform draw is a degree-proportional draw.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * attach);
    // Seed clique over the first `attach + 1` nodes.
    for u in 0..=(attach as u32) {
        for v in (u + 1)..=(attach as u32) {
            edges.push((u, v, weight(&mut rng, &weights)));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in (attach as u32 + 1)..(n as u32) {
        let mut chosen = Vec::with_capacity(attach);
        let mut guard = 0;
        while chosen.len() < attach && guard < attach * 20 {
            guard += 1;
            let v = endpoints[rng.gen_range(0..endpoints.len())];
            if v != u && !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        for v in chosen {
            edges.push((u, v, weight(&mut rng, &weights)));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    Graph::from_undirected_edges(n, edges)
}

/// Rectangular grid (road-network-like, near-planar). Node `(r, c)` is
/// `r * cols + c`; 4-neighbour connectivity.
pub fn grid(rows: usize, cols: usize, weights: RangeInclusive<u32>, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(2 * rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1), weight(&mut rng, &weights)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c), weight(&mut rng, &weights)));
            }
        }
    }
    Graph::from_undirected_edges(rows * cols, edges)
}

/// DBLP-like collaboration graph: overlapping cliques (papers) over an
/// author population with skewed activity. Density targets DBLP's ≈ 3.7
/// arcs/node (313 K nodes, 1.15 M arcs).
pub fn dblp_like(n: usize, weights: RangeInclusive<u32>, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    let target_arcs = n * 37 / 10;
    // Zipf-ish author activity: low ids are prolific.
    let pick_author = |rng: &mut StdRng| -> u32 {
        let x: f64 = rng.gen_range(0.0f64..1.0);
        // Quadratic skew toward small ids. Reduce in usize before the u32
        // narrowing: casting the product to u32 first would wrap for node
        // counts past u32::MAX and skew the modulus.
        (((x * x) * n as f64) as usize % n) as u32
    };
    let mut arcs = 0usize;
    while arcs < target_arcs {
        // Paper with 2..=6 authors.
        let k = rng.gen_range(2..=6usize);
        let mut authors = Vec::with_capacity(k);
        for _ in 0..k {
            let a = pick_author(&mut rng);
            if !authors.contains(&a) {
                authors.push(a);
            }
        }
        for i in 0..authors.len() {
            for j in (i + 1)..authors.len() {
                edges.push((authors[i], authors[j], weight(&mut rng, &weights)));
                arcs += 2;
            }
        }
    }
    Graph::from_undirected_edges(n, edges)
}

/// GoogleWeb-like graph via the copying model: each new page copies the
/// out-links of a random prototype with probability `0.5`, otherwise links
/// uniformly. Produces the skewed in-degree distribution the paper calls
/// out in Fig 9(b). Density targets ≈ 5.9 arcs/node.
pub fn webgraph_like(n: usize, weights: RangeInclusive<u32>, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let out_deg = 3usize; // ×2 arcs per undirected edge ≈ 6 arcs/node
    let mut targets_of: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut edges = Vec::with_capacity(n * out_deg);
    targets_of.push(Vec::new());
    for u in 1..n as u32 {
        let mut mine = Vec::with_capacity(out_deg);
        let prototype = rng.gen_range(0..u) as usize;
        for slot in 0..out_deg {
            let v = if rng.gen_bool(0.5) && slot < targets_of[prototype].len() {
                targets_of[prototype][slot]
            } else {
                rng.gen_range(0..u)
            };
            if v != u && !mine.contains(&v) {
                mine.push(v);
            }
        }
        for &v in &mine {
            edges.push((u, v, weight(&mut rng, &weights)));
        }
        targets_of.push(mine);
    }
    Graph::from_undirected_edges(n, edges)
}

/// LiveJournal-like social graph: preferential attachment at higher density
/// (LiveJournal has ≈ 8.9 arcs/node: 4.8 M nodes, 43 M arcs).
pub fn livejournal_like(n: usize, weights: RangeInclusive<u32>, seed: u64) -> Graph {
    power_law(n.max(6), 4, weights, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: RangeInclusive<u32> = 1..=100;

    #[test]
    fn random_graph_determinism_and_density() {
        let a = random_graph(1000, 3, W, 7);
        let b = random_graph(1000, 3, W, 7);
        assert_eq!(a.num_arcs(), b.num_arcs());
        let c = random_graph(1000, 3, W, 8);
        assert!(
            a.num_arcs() != c.num_arcs() || {
                let av: Vec<_> = a.iter_arcs().collect();
                let cv: Vec<_> = c.iter_arcs().collect();
                av != cv
            }
        );
        // ~2 * n * deg arcs (minus self-loop rejections).
        assert!(
            a.num_arcs() > 5000 && a.num_arcs() <= 6000,
            "{}",
            a.num_arcs()
        );
    }

    #[test]
    fn weights_respect_range() {
        let g = random_graph(500, 3, 5..=10, 42);
        for (_, _, w) in g.iter_arcs() {
            assert!((5..=10).contains(&w));
        }
        assert!(g.min_weight() >= 5);
    }

    #[test]
    fn power_law_has_skewed_degrees() {
        let g = power_law(5000, 3, W, 1);
        let mut degs: Vec<usize> = (0..5000u32).map(|u| g.degree(u)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // Hubs exist: the max degree is far above the average.
        let avg = g.avg_degree();
        assert!(
            degs[0] as f64 > avg * 8.0,
            "max degree {} should dwarf avg {avg}",
            degs[0]
        );
        // No isolated nodes by construction.
        assert!(degs[degs.len() - 1] >= 1);
    }

    #[test]
    fn grid_degrees() {
        let g = grid(10, 10, W, 3);
        assert_eq!(g.num_nodes(), 100);
        // Corner has degree 2, interior 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5 * 10 + 5), 4);
    }

    #[test]
    fn dblp_like_density_close_to_real() {
        let g = dblp_like(2000, W, 9);
        let d = g.avg_degree();
        assert!(
            (3.0..6.0).contains(&d),
            "avg degree {d} out of DBLP-ish range"
        );
    }

    #[test]
    fn webgraph_like_in_degree_skew() {
        let g = webgraph_like(3000, W, 11);
        // With symmetric storage, degree = in+out; skew shows up as a heavy
        // maximum relative to the mean.
        let max_deg = (0..3000u32).map(|u| g.degree(u)).max().unwrap();
        assert!(
            max_deg as f64 > g.avg_degree() * 5.0,
            "web graph should have hub pages (max {max_deg}, avg {})",
            g.avg_degree()
        );
    }

    #[test]
    fn livejournal_like_is_denser() {
        let g = livejournal_like(2000, W, 13);
        assert!(
            g.avg_degree() >= 6.0,
            "LJ-like should be dense, got {}",
            g.avg_degree()
        );
    }

    #[test]
    fn generators_are_connected_enough_for_queries() {
        // Most nodes should be reachable from node 0 in BA graphs
        // (preferential attachment grows one connected component).
        let g = power_law(1000, 3, W, 21);
        let mut seen = vec![false; 1000];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for a in g.out_arcs(u) {
                if !seen[a.to as usize] {
                    seen[a.to as usize] = true;
                    count += 1;
                    stack.push(a.to);
                }
            }
        }
        assert_eq!(count, 1000, "BA graph must be connected");
    }
}
