//! Loading graphs into relational tables (§2.1, Figure 1 of the paper):
//! `TNodes(nid)` and `TEdges(fid, tid, cost)`, with the index strategy of
//! Fig 8(c) applied to `TEdges`.

use crate::graph::Graph;
use fempath_sql::{Database, Result};
use fempath_storage::Value;

/// Physical index configuration for a table — the three strategies the
/// paper sweeps in Fig 8(c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// No index at all: every access is a scan.
    NoIndex,
    /// Non-clustered secondary B+tree.
    Secondary,
    /// Clustered (index-organized) B+tree — the paper's default for
    /// `TEdges(fid)` and the SegTable.
    #[default]
    Clustered,
}

/// Loader options.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Index on `TEdges(fid)`.
    pub edges_index: IndexKind,
    /// Also create the `TNodes` table (needed for SegTable construction).
    pub with_nodes: bool,
    /// Rows per multi-row INSERT statement.
    pub batch_size: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            edges_index: IndexKind::Clustered,
            with_nodes: true,
            batch_size: 256,
        }
    }
}

/// Creates and populates `TNodes` / `TEdges` from `graph`.
pub fn load_graph(db: &mut Database, graph: &Graph, opts: &LoadOptions) -> Result<()> {
    db.execute("CREATE TABLE TEdges (fid INT, tid INT, cost INT)")?;
    if opts.with_nodes {
        db.execute("CREATE TABLE TNodes (nid INT, PRIMARY KEY(nid))")?;
        let mut batch: Vec<i64> = Vec::with_capacity(opts.batch_size);
        for u in 0..graph.num_nodes() as i64 {
            batch.push(u);
            if batch.len() == opts.batch_size {
                insert_nodes(db, &batch)?;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            insert_nodes(db, &batch)?;
        }
    }
    let mut batch: Vec<(u32, u32, u32)> = Vec::with_capacity(opts.batch_size);
    for arc in graph.iter_arcs() {
        batch.push(arc);
        if batch.len() == opts.batch_size {
            insert_edges(db, &batch)?;
            batch.clear();
        }
    }
    if !batch.is_empty() {
        insert_edges(db, &batch)?;
    }
    match opts.edges_index {
        IndexKind::NoIndex => {}
        IndexKind::Secondary => {
            db.execute("CREATE INDEX idx_tedges_fid ON TEdges(fid)")?;
        }
        IndexKind::Clustered => {
            db.execute("CREATE CLUSTERED INDEX idx_tedges_fid ON TEdges(fid)")?;
        }
    }
    Ok(())
}

/// Bulk-loader options: the same physical end states as [`LoadOptions`]
/// plus the segment-compressed edge store.
#[derive(Debug, Clone)]
pub struct BulkLoadOptions {
    /// Index on `TEdges(fid)` — ignored when `segmented` is set (the
    /// segment store has the fid access path built in).
    pub edges_index: IndexKind,
    /// Also create the `TNodes` table.
    pub with_nodes: bool,
    /// Store `TEdges` as delta-encoded compressed segments (read-only)
    /// instead of heap/clustered rows.
    pub segmented: bool,
}

impl Default for BulkLoadOptions {
    fn default() -> Self {
        BulkLoadOptions {
            edges_index: IndexKind::Clustered,
            with_nodes: true,
            segmented: false,
        }
    }
}

/// Bulk-load variant of [`load_graph`]: creates the same `TNodes` /
/// `TEdges` catalog (identical names and index end-state, so plans are
/// interchangeable), then streams the graph's CSR arcs straight into
/// page-packing heap batches and bottom-up-built B+trees — bypassing
/// per-row SQL INSERT entirely. Indexes are created *before* the fill:
/// reorganising an empty table is free, and the fill then bulk-builds
/// every tree from sorted input.
pub fn load_graph_bulk(db: &mut Database, graph: &Graph, opts: &BulkLoadOptions) -> Result<()> {
    use fempath_sql::ast::ColumnDef;
    use fempath_storage::DataType;
    if opts.segmented {
        let cols = ["fid", "tid", "cost"]
            .iter()
            .map(|n| ColumnDef {
                name: (*n).into(),
                dtype: DataType::Int,
            })
            .collect();
        db.create_segmented_table("TEdges", cols)?;
    } else {
        db.execute("CREATE TABLE TEdges (fid INT, tid INT, cost INT)")?;
        match opts.edges_index {
            IndexKind::NoIndex => {}
            IndexKind::Secondary => {
                db.execute("CREATE INDEX idx_tedges_fid ON TEdges(fid)")?;
            }
            IndexKind::Clustered => {
                db.execute("CREATE CLUSTERED INDEX idx_tedges_fid ON TEdges(fid)")?;
            }
        }
    }
    if opts.with_nodes {
        db.execute("CREATE TABLE TNodes (nid INT, PRIMARY KEY(nid))")?;
        db.bulk_load_rows(
            "TNodes",
            (0..graph.num_nodes() as i64).map(|u| vec![Value::Int(u)]),
        )?;
    }
    // CSR arc order is (fid, position) order — sorted on fid for the
    // clustered key and the fid index. Segment packing needs full
    // (fid, tid, cost) order, so each node's run is sorted on the fly.
    if opts.segmented {
        db.bulk_load_segments(
            "TEdges",
            (0..graph.num_nodes()).flat_map(|u| {
                let mut run: Vec<(i64, i64, i64)> = graph
                    .out_arcs(u as u32)
                    .iter()
                    .map(|a| (u as i64, a.to as i64, a.weight as i64))
                    .collect();
                run.sort_unstable();
                run
            }),
        )?;
    } else {
        db.bulk_load_rows(
            "TEdges",
            graph.iter_arcs().map(|(f, t, c)| {
                vec![
                    Value::Int(f as i64),
                    Value::Int(t as i64),
                    Value::Int(c as i64),
                ]
            }),
        )?;
    }
    Ok(())
}

/// Reads a SNAP-style edge list from `path` and bulk-loads it — the
/// million-node ingest path of the scaled fig6/fig7 harness.
pub fn load_snap_file_bulk(
    db: &mut Database,
    path: impl AsRef<std::path::Path>,
    opts: &BulkLoadOptions,
) -> Result<Graph> {
    let graph = crate::io::read_arcs(path)
        .map_err(|e| fempath_sql::SqlError::Eval(format!("reading edge list: {e}")))?;
    load_graph_bulk(db, &graph, opts)?;
    Ok(graph)
}

fn insert_nodes(db: &mut Database, nids: &[i64]) -> Result<()> {
    // Multi-row VALUES with parameters, batched so the AST cache stays
    // effective (one cached statement per distinct batch size).
    let placeholders: Vec<&str> = nids.iter().map(|_| "(?)").collect();
    let sql = format!(
        "INSERT INTO TNodes (nid) VALUES {}",
        placeholders.join(", ")
    );
    let params: Vec<Value> = nids.iter().map(|&n| Value::Int(n)).collect();
    db.execute_params(&sql, &params)?;
    Ok(())
}

fn insert_edges(db: &mut Database, arcs: &[(u32, u32, u32)]) -> Result<()> {
    let placeholders: Vec<&str> = arcs.iter().map(|_| "(?, ?, ?)").collect();
    let sql = format!(
        "INSERT INTO TEdges (fid, tid, cost) VALUES {}",
        placeholders.join(", ")
    );
    let mut params = Vec::with_capacity(arcs.len() * 3);
    for &(f, t, c) in arcs {
        params.push(Value::Int(f as i64));
        params.push(Value::Int(t as i64));
        params.push(Value::Int(c as i64));
    }
    db.execute_params(&sql, &params)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn load_small_graph_all_strategies() {
        let g = generate::grid(5, 5, 1..=10, 1);
        for kind in [
            IndexKind::NoIndex,
            IndexKind::Secondary,
            IndexKind::Clustered,
        ] {
            let mut db = Database::in_memory(256);
            load_graph(
                &mut db,
                &g,
                &LoadOptions {
                    edges_index: kind,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(db.table_len("TEdges").unwrap(), g.num_arcs() as u64);
            assert_eq!(db.table_len("TNodes").unwrap(), 25);
            // Neighbor query works under every strategy.
            let rs = db
                .query_params(
                    "SELECT tid, cost FROM TEdges WHERE fid = ?",
                    &[Value::Int(12)],
                )
                .unwrap();
            assert_eq!(rs.len(), 4, "interior grid node has 4 neighbours");
        }
    }

    #[test]
    fn bulk_load_matches_row_load_every_strategy() {
        let g = generate::power_law(300, 3, 1..=10, 4);
        for kind in [
            IndexKind::NoIndex,
            IndexKind::Secondary,
            IndexKind::Clustered,
        ] {
            let mut row_db = Database::in_memory(512);
            load_graph(
                &mut row_db,
                &g,
                &LoadOptions {
                    edges_index: kind,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut bulk_db = Database::in_memory(512);
            load_graph_bulk(
                &mut bulk_db,
                &g,
                &BulkLoadOptions {
                    edges_index: kind,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                row_db.table_len("TEdges").unwrap(),
                bulk_db.table_len("TEdges").unwrap()
            );
            assert_eq!(bulk_db.table_len("TNodes").unwrap(), 300);
            for probe in [0i64, 7, 123, 299] {
                let sql = "SELECT tid, cost FROM TEdges WHERE fid = ? ORDER BY tid, cost";
                let a = row_db.query_params(sql, &[Value::Int(probe)]).unwrap();
                let b = bulk_db.query_params(sql, &[Value::Int(probe)]).unwrap();
                assert_eq!(a.rows, b.rows, "kind={kind:?} fid={probe}");
            }
        }
    }

    #[test]
    fn segmented_bulk_load_answers_neighbor_queries() {
        let g = generate::power_law(300, 3, 1..=10, 4);
        let mut row_db = Database::in_memory(512);
        load_graph(&mut row_db, &g, &LoadOptions::default()).unwrap();
        let mut seg_db = Database::in_memory(512);
        load_graph_bulk(
            &mut seg_db,
            &g,
            &BulkLoadOptions {
                segmented: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(seg_db.table_len("TEdges").unwrap(), g.num_arcs() as u64);
        for probe in [0i64, 1, 99, 299] {
            let sql = "SELECT tid, cost FROM TEdges WHERE fid = ? ORDER BY tid, cost";
            let a = row_db.query_params(sql, &[Value::Int(probe)]).unwrap();
            let b = seg_db.query_params(sql, &[Value::Int(probe)]).unwrap();
            assert_eq!(a.rows, b.rows, "fid={probe}");
        }
        // Full-table aggregates agree too.
        let a = row_db
            .query("SELECT COUNT(*), SUM(cost) FROM TEdges")
            .unwrap();
        let b = seg_db
            .query("SELECT COUNT(*), SUM(cost) FROM TEdges")
            .unwrap();
        assert_eq!(a.rows, b.rows);
    }

    /// Regression for node-id width audits: u32::MAX-magnitude weights
    /// must survive the row-building path into i64 columns unmangled.
    #[test]
    fn extreme_weights_survive_bulk_load() {
        let w = u32::MAX;
        let g = crate::graph::Graph::from_undirected_edges(3, vec![(0, 1, w), (1, 2, w - 1)]);
        for segmented in [false, true] {
            let mut db = Database::in_memory(128);
            load_graph_bulk(
                &mut db,
                &g,
                &BulkLoadOptions {
                    segmented,
                    ..Default::default()
                },
            )
            .unwrap();
            let rs = db
                .query("SELECT cost FROM TEdges WHERE fid = 0 AND tid = 1")
                .unwrap();
            assert_eq!(
                rs.rows[0][0],
                Value::Int(u32::MAX as i64),
                "segmented={segmented}"
            );
        }
    }

    #[test]
    fn edge_weights_roundtrip() {
        let g = crate::graph::Graph::from_undirected_edges(3, vec![(0, 1, 42), (1, 2, 7)]);
        let mut db = Database::in_memory(64);
        load_graph(&mut db, &g, &LoadOptions::default()).unwrap();
        let rs = db
            .query("SELECT cost FROM TEdges WHERE fid = 0 AND tid = 1")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(42));
    }
}
