//! Loading graphs into relational tables (§2.1, Figure 1 of the paper):
//! `TNodes(nid)` and `TEdges(fid, tid, cost)`, with the index strategy of
//! Fig 8(c) applied to `TEdges`.

use crate::graph::Graph;
use fempath_sql::{Database, Result};
use fempath_storage::Value;

/// Physical index configuration for a table — the three strategies the
/// paper sweeps in Fig 8(c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// No index at all: every access is a scan.
    NoIndex,
    /// Non-clustered secondary B+tree.
    Secondary,
    /// Clustered (index-organized) B+tree — the paper's default for
    /// `TEdges(fid)` and the SegTable.
    #[default]
    Clustered,
}

/// Loader options.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Index on `TEdges(fid)`.
    pub edges_index: IndexKind,
    /// Also create the `TNodes` table (needed for SegTable construction).
    pub with_nodes: bool,
    /// Rows per multi-row INSERT statement.
    pub batch_size: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            edges_index: IndexKind::Clustered,
            with_nodes: true,
            batch_size: 256,
        }
    }
}

/// Creates and populates `TNodes` / `TEdges` from `graph`.
pub fn load_graph(db: &mut Database, graph: &Graph, opts: &LoadOptions) -> Result<()> {
    db.execute("CREATE TABLE TEdges (fid INT, tid INT, cost INT)")?;
    if opts.with_nodes {
        db.execute("CREATE TABLE TNodes (nid INT, PRIMARY KEY(nid))")?;
        let mut batch: Vec<i64> = Vec::with_capacity(opts.batch_size);
        for u in 0..graph.num_nodes() as i64 {
            batch.push(u);
            if batch.len() == opts.batch_size {
                insert_nodes(db, &batch)?;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            insert_nodes(db, &batch)?;
        }
    }
    let mut batch: Vec<(u32, u32, u32)> = Vec::with_capacity(opts.batch_size);
    for arc in graph.iter_arcs() {
        batch.push(arc);
        if batch.len() == opts.batch_size {
            insert_edges(db, &batch)?;
            batch.clear();
        }
    }
    if !batch.is_empty() {
        insert_edges(db, &batch)?;
    }
    match opts.edges_index {
        IndexKind::NoIndex => {}
        IndexKind::Secondary => {
            db.execute("CREATE INDEX idx_tedges_fid ON TEdges(fid)")?;
        }
        IndexKind::Clustered => {
            db.execute("CREATE CLUSTERED INDEX idx_tedges_fid ON TEdges(fid)")?;
        }
    }
    Ok(())
}

fn insert_nodes(db: &mut Database, nids: &[i64]) -> Result<()> {
    // Multi-row VALUES with parameters, batched so the AST cache stays
    // effective (one cached statement per distinct batch size).
    let placeholders: Vec<&str> = nids.iter().map(|_| "(?)").collect();
    let sql = format!(
        "INSERT INTO TNodes (nid) VALUES {}",
        placeholders.join(", ")
    );
    let params: Vec<Value> = nids.iter().map(|&n| Value::Int(n)).collect();
    db.execute_params(&sql, &params)?;
    Ok(())
}

fn insert_edges(db: &mut Database, arcs: &[(u32, u32, u32)]) -> Result<()> {
    let placeholders: Vec<&str> = arcs.iter().map(|_| "(?, ?, ?)").collect();
    let sql = format!(
        "INSERT INTO TEdges (fid, tid, cost) VALUES {}",
        placeholders.join(", ")
    );
    let mut params = Vec::with_capacity(arcs.len() * 3);
    for &(f, t, c) in arcs {
        params.push(Value::Int(f as i64));
        params.push(Value::Int(t as i64));
        params.push(Value::Int(c as i64));
    }
    db.execute_params(&sql, &params)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn load_small_graph_all_strategies() {
        let g = generate::grid(5, 5, 1..=10, 1);
        for kind in [
            IndexKind::NoIndex,
            IndexKind::Secondary,
            IndexKind::Clustered,
        ] {
            let mut db = Database::in_memory(256);
            load_graph(
                &mut db,
                &g,
                &LoadOptions {
                    edges_index: kind,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(db.table_len("TEdges").unwrap(), g.num_arcs() as u64);
            assert_eq!(db.table_len("TNodes").unwrap(), 25);
            // Neighbor query works under every strategy.
            let rs = db
                .query_params(
                    "SELECT tid, cost FROM TEdges WHERE fid = ?",
                    &[Value::Int(12)],
                )
                .unwrap();
            assert_eq!(rs.len(), 4, "interior grid node has 4 neighbours");
        }
    }

    #[test]
    fn edge_weights_roundtrip() {
        let g = crate::graph::Graph::from_undirected_edges(3, vec![(0, 1, 42), (1, 2, 7)]);
        let mut db = Database::in_memory(64);
        load_graph(&mut db, &g, &LoadOptions::default()).unwrap();
        let rs = db
            .query("SELECT cost FROM TEdges WHERE fid = 0 AND tid = 1")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(42));
    }
}
