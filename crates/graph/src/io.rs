//! Plain-text edge-list I/O (`u v w` per line, `#` comments), compatible
//! with the SNAP-style downloads the paper uses, extended with a weight
//! column.

use crate::graph::Graph;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Writes `graph` as a directed arc list.
pub fn write_arcs(graph: &Graph, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# fempath arc list: {} nodes", graph.num_nodes())?;
    for (u, v, wt) in graph.iter_arcs() {
        writeln!(w, "{u} {v} {wt}")?;
    }
    w.flush()
}

/// Reads a directed arc list. Unweighted lines (`u v`) default to weight 1.
pub fn read_arcs(path: impl AsRef<Path>) -> io::Result<Graph> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut arcs = Vec::new();
    let mut max_node = 0u32;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        // Parse ids as u64 first so an id past the u32 node-id space is a
        // clear error instead of a generic parse failure.
        let parse = |s: Option<&str>| -> io::Result<u32> {
            let wide: u64 = s
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad arc line"))?;
            u32::try_from(wide).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("node id {wide} exceeds the supported u32 id space"),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        let w = match it.next() {
            Some(s) => s
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad weight"))?,
            None => 1,
        };
        max_node = max_node.max(u).max(v);
        arcs.push((u, v, w));
    }
    let n = if arcs.is_empty() {
        0
    } else {
        max_node as usize + 1
    };
    Ok(Graph::from_arcs(n, arcs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn roundtrip() {
        let g = generate::random_graph(100, 3, 1..=100, 5);
        let mut path = std::env::temp_dir();
        path.push(format!("fempath-io-test-{}.txt", std::process::id()));
        write_arcs(&g, &path).unwrap();
        let g2 = read_arcs(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_arcs(), g2.num_arcs());
        let a: Vec<_> = g.iter_arcs().collect();
        let b: Vec<_> = g2.iter_arcs().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn oversized_node_ids_are_a_clear_error() {
        let mut path = std::env::temp_dir();
        path.push(format!("fempath-io-test3-{}.txt", std::process::id()));
        std::fs::write(&path, format!("0 {} 1\n", u32::MAX as u64 + 1)).unwrap();
        let err = read_arcs(&path).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(
            err.to_string()
                .contains("exceeds the supported u32 id space"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn comments_and_unweighted_lines() {
        let mut path = std::env::temp_dir();
        path.push(format!("fempath-io-test2-{}.txt", std::process::id()));
        std::fs::write(&path, "# header\n0 1\n1 2 9\n\n").unwrap();
        let g = read_arcs(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_arcs(), 2);
        let arcs: Vec<_> = g.iter_arcs().collect();
        assert_eq!(arcs[0], (0, 1, 1));
        assert_eq!(arcs[1], (1, 2, 9));
    }
}
