//! Weighted graph model (CSR adjacency).
//!
//! Graphs are stored **symmetrically**: every undirected edge appears as two
//! directed arcs with the same weight. This matches the paper's evaluation
//! datasets (collaboration and social networks are undirected; the road/web
//! graphs are symmetrized for bidirectional search) and lets the backward
//! expansion reuse the forward (`fid`-clustered) access path — see
//! DESIGN.md §4.

/// A directed arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arc {
    pub to: u32,
    pub weight: u32,
}

/// A weighted graph in compressed sparse row form.
#[derive(Debug, Clone)]
pub struct Graph {
    num_nodes: usize,
    offsets: Vec<usize>,
    arcs: Vec<Arc>,
    min_weight: u32,
}

impl Graph {
    /// Builds a graph from directed arcs `(from, to, weight)`. Node ids must
    /// be `< num_nodes`. Self-loops are dropped; parallel arcs are kept.
    pub fn from_arcs(num_nodes: usize, arcs: impl IntoIterator<Item = (u32, u32, u32)>) -> Graph {
        // Degree counters are usize, not u32: a counter that wraps past
        // ~4 B arcs would silently corrupt the CSR offsets.
        let mut per_node: Vec<usize> = vec![0; num_nodes];
        let mut all: Vec<(u32, u32, u32)> = Vec::new();
        for (u, v, w) in arcs {
            debug_assert!((u as usize) < num_nodes && (v as usize) < num_nodes);
            if u == v {
                continue;
            }
            per_node[u as usize] += 1;
            all.push((u, v, w));
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for n in &per_node {
            acc += *n;
            offsets.push(acc);
        }
        let mut cursor: Vec<usize> = offsets[..num_nodes].to_vec();
        let mut arcs_out = vec![Arc { to: 0, weight: 0 }; all.len()];
        let mut min_weight = u32::MAX;
        for (u, v, w) in all {
            arcs_out[cursor[u as usize]] = Arc { to: v, weight: w };
            cursor[u as usize] += 1;
            min_weight = min_weight.min(w);
        }
        if arcs_out.is_empty() {
            min_weight = 1;
        }
        Graph {
            num_nodes,
            offsets,
            arcs: arcs_out,
            min_weight,
        }
    }

    /// Builds a symmetric graph from undirected edges: each `(u, v, w)`
    /// produces arcs in both directions.
    pub fn from_undirected_edges(
        num_nodes: usize,
        edges: impl IntoIterator<Item = (u32, u32, u32)>,
    ) -> Graph {
        let mut arcs = Vec::new();
        for (u, v, w) in edges {
            arcs.push((u, v, w));
            arcs.push((v, u, w));
        }
        Graph::from_arcs(num_nodes, arcs)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed arcs (twice the undirected edge count).
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Outgoing arcs of `u`.
    pub fn out_arcs(&self, u: u32) -> &[Arc] {
        &self.arcs[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: u32) -> usize {
        self.out_arcs(u).len()
    }

    /// The minimal arc weight `w_min` (Theorems 2 and 3 of the paper bound
    /// iteration counts with it). Returns 1 for empty graphs.
    pub fn min_weight(&self) -> u32 {
        self.min_weight
    }

    /// Iterates all arcs as `(from, to, weight)`.
    pub fn iter_arcs(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        // Range over usize — `num_nodes as u32` would silently truncate
        // the iteration space for node counts past u32::MAX.
        (0..self.num_nodes).flat_map(move |u| {
            let u = u as u32;
            self.out_arcs(u).iter().map(move |a| (u, a.to, a.weight))
        })
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            return 0.0;
        }
        self.arcs.len() as f64 / self.num_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_layout() {
        let g = Graph::from_arcs(4, vec![(0, 1, 5), (0, 2, 3), (2, 3, 1), (1, 0, 5)]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.out_arcs(0).len(), 2);
        assert_eq!(g.out_arcs(1), &[Arc { to: 0, weight: 5 }]);
        assert_eq!(g.out_arcs(2), &[Arc { to: 3, weight: 1 }]);
        assert!(g.out_arcs(3).is_empty());
        assert_eq!(g.min_weight(), 1);
    }

    #[test]
    fn self_loops_dropped() {
        let g = Graph::from_arcs(2, vec![(0, 0, 1), (0, 1, 2)]);
        assert_eq!(g.num_arcs(), 1);
    }

    #[test]
    fn undirected_symmetry() {
        let g = Graph::from_undirected_edges(3, vec![(0, 1, 7), (1, 2, 2)]);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.out_arcs(1).len(), 2);
        // Arc weights match in both directions.
        let fwd: Vec<_> = g.iter_arcs().collect();
        for (u, v, w) in &fwd {
            assert!(fwd.contains(&(*v, *u, *w)), "missing reverse of {u}->{v}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_arcs(0, vec![]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.min_weight(), 1);
    }

    #[test]
    fn iter_arcs_matches_adjacency() {
        let g = Graph::from_arcs(3, vec![(0, 1, 1), (1, 2, 2), (2, 0, 3)]);
        let collected: Vec<_> = g.iter_arcs().collect();
        assert_eq!(collected, vec![(0, 1, 1), (1, 2, 2), (2, 0, 3)]);
    }
}
