//! # fempath-graph
//!
//! Graph model, synthetic workload generators, and relational loaders for
//! the fempath reproduction.
//!
//! * [`Graph`] — weighted CSR adjacency (stored symmetrically, see
//!   DESIGN.md §4);
//! * [`generate`] — the paper's dataset families: `random_graph`,
//!   `power_law` (Barabási), `grid`, plus stand-ins for DBLP, GoogleWeb and
//!   LiveJournal;
//! * [`loader`] — `TNodes`/`TEdges` loading with the Fig 8(c) index
//!   strategies;
//! * [`io`] — edge-list files.

#![forbid(unsafe_code)]

pub mod generate;
pub mod graph;
pub mod io;
pub mod loader;

pub use graph::{Arc, Graph};
pub use loader::{
    load_graph, load_graph_bulk, load_snap_file_bulk, BulkLoadOptions, IndexKind, LoadOptions,
};
