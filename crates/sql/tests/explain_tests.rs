//! EXPLAIN output: verifies the planner makes the access-path choices the
//! paper's performance arguments rely on (clustered-index E-operator joins,
//! index point lookups, hash-join fallback).

use fempath_sql::Database;
use fempath_storage::Value;

fn plan_of(db: &mut Database, sql: &str) -> Vec<String> {
    let rs = db.query(&format!("EXPLAIN {sql}")).unwrap();
    rs.rows
        .into_iter()
        .map(|r| r[0].as_str().unwrap().to_string())
        .collect()
}

fn setup() -> Database {
    let mut db = Database::in_memory(256);
    db.execute("CREATE TABLE TVisited (nid INT, d2s INT, f INT, PRIMARY KEY(nid))")
        .unwrap();
    db.execute("CREATE TABLE TEdges (fid INT, tid INT, cost INT)")
        .unwrap();
    db.execute("CREATE CLUSTERED INDEX ix_e ON TEdges(fid)")
        .unwrap();
    for u in 0..200i64 {
        db.execute_params(
            "INSERT INTO TEdges VALUES (?, ?, 1)",
            &[Value::Int(u), Value::Int((u + 1) % 200)],
        )
        .unwrap();
        db.execute_params(
            "INSERT INTO TVisited VALUES (?, ?, ?)",
            &[
                Value::Int(u),
                Value::Int(u),
                Value::Int(i64::from(u < 5) * 2),
            ],
        )
        .unwrap();
    }
    db
}

#[test]
fn point_lookup_uses_index() {
    let mut db = setup();
    let plan = plan_of(&mut db, "SELECT d2s FROM TVisited WHERE nid = 7");
    assert!(
        plan.iter().any(|l| l.contains("index lookup")),
        "expected index lookup, got {plan:?}"
    );
}

#[test]
fn full_scan_without_usable_predicate() {
    let mut db = setup();
    let plan = plan_of(&mut db, "SELECT nid FROM TVisited WHERE d2s > 100");
    assert!(
        plan.iter().any(|l| l.contains("full scan")),
        "expected a full scan, got {plan:?}"
    );
}

#[test]
fn e_operator_join_is_index_nested_loop() {
    // The paper's central performance mechanism: the frontier joins TEdges
    // through the clustered index on fid.
    let mut db = setup();
    let plan = plan_of(
        &mut db,
        "SELECT e.tid FROM TVisited q, TEdges e WHERE q.nid = e.fid AND q.f = 2",
    );
    assert!(
        plan.iter().any(
            |l| l.contains("INDEX NESTED LOOP JOIN") && l.contains("tedges")
                || l.contains("INDEX NESTED LOOP JOIN") && l.contains("TEdges")
        ),
        "expected INL join into TEdges, got {plan:?}"
    );
}

#[test]
fn join_without_index_hashes() {
    let mut db = setup();
    db.execute("CREATE TABLE plain (x INT)").unwrap();
    db.execute("INSERT INTO plain VALUES (1), (2)").unwrap();
    let plan = plan_of(
        &mut db,
        "SELECT p.x FROM TVisited v, plain p WHERE v.d2s = p.x",
    );
    assert!(
        plan.iter().any(|l| l.contains("HASH JOIN")),
        "expected hash join, got {plan:?}"
    );
}

#[test]
fn cross_join_reports_nested_loop() {
    let mut db = setup();
    db.execute("CREATE TABLE a (x INT)").unwrap();
    db.execute("CREATE TABLE b (y INT)").unwrap();
    db.execute("INSERT INTO a VALUES (1)").unwrap();
    db.execute("INSERT INTO b VALUES (2)").unwrap();
    let plan = plan_of(&mut db, "SELECT x, y FROM a, b");
    assert!(
        plan.iter().any(|l| l.contains("NESTED LOOP JOIN")),
        "expected nested loop, got {plan:?}"
    );
}

#[test]
fn explain_reports_result_cardinality() {
    let mut db = setup();
    let plan = plan_of(&mut db, "SELECT nid FROM TVisited WHERE f = 2");
    assert!(
        plan.last().unwrap().contains("RESULT 5 row(s)"),
        "got {plan:?}"
    );
}

#[test]
fn explain_non_select_rejected() {
    let mut db = setup();
    assert!(db.execute("EXPLAIN DELETE FROM TVisited").is_err());
}
