//! End-to-end tests of the SQL engine, including the paper's exact
//! statement patterns (Listings 2–4).

use fempath_sql::{Database, Dialect, SqlError};
use fempath_storage::Value;

fn db() -> Database {
    Database::in_memory(512)
}

fn ints(vals: &[i64]) -> Vec<Value> {
    vals.iter().map(|&v| Value::Int(v)).collect()
}

/// The tiny graph of Figure 1 of the paper, loaded into TEdges (directed
/// both ways, i.e. undirected). Node ids: s=0 b=1 c=2 d=3 e=4 f=5 g=6 h=7
/// i=8 j=9 t=10.
fn load_figure1(db: &mut Database) {
    db.execute("CREATE TABLE TEdges (fid INT, tid INT, cost INT)")
        .unwrap();
    db.execute("CREATE CLUSTERED INDEX idx_edges ON TEdges(fid)")
        .unwrap();
    let edges: &[(i64, i64, i64)] = &[
        (0, 1, 2),
        (0, 2, 1),
        (0, 3, 6),
        (1, 4, 2),
        (2, 3, 1),
        (2, 4, 3),
        (3, 9, 7),
        (4, 6, 3),
        (4, 5, 7),
        (4, 7, 8),
        (5, 6, 4),
        (5, 8, 9),
        (6, 7, 4),
        (7, 10, 3),
        (8, 9, 2),
        (8, 10, 5),
        (9, 10, 8),
    ];
    for &(u, v, w) in edges {
        for (a, b) in [(u, v), (v, u)] {
            db.execute_params(
                "INSERT INTO TEdges (fid, tid, cost) VALUES (?, ?, ?)",
                &ints(&[a, b, w]),
            )
            .unwrap();
        }
    }
}

#[test]
fn create_insert_select_roundtrip() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT, b TEXT, c FLOAT)")
        .unwrap();
    d.execute("INSERT INTO t VALUES (1, 'one', 1.5), (2, 'two', 2.5)")
        .unwrap();
    let rs = d.query("SELECT a, b, c FROM t ORDER BY a").unwrap();
    assert_eq!(rs.columns, vec!["a", "b", "c"]);
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][1], Value::Text("one".into()));
    assert_eq!(rs.rows[1][2], Value::Float(2.5));
}

#[test]
fn where_filters_and_order_desc() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    for i in 0..10 {
        d.execute_params("INSERT INTO t VALUES (?)", &ints(&[i]))
            .unwrap();
    }
    let rs = d
        .query("SELECT a FROM t WHERE a >= 5 AND a < 8 ORDER BY a DESC")
        .unwrap();
    let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(got, vec![7, 6, 5]);
}

#[test]
fn select_top_with_min_subquery_listing2_2() {
    // Listing 2(2): locate the next node to be expanded.
    let mut d = db();
    d.execute("CREATE TABLE TVisited (nid INT, d2s INT, p2s INT, f INT, PRIMARY KEY(nid))")
        .unwrap();
    d.execute("INSERT INTO TVisited VALUES (0, 0, 0, 1), (1, 5, 0, 0), (2, 3, 0, 0), (3, 3, 0, 1)")
        .unwrap();
    let rs = d
        .query(
            "SELECT TOP 1 nid FROM TVisited WHERE f=0 \
             AND d2s=(SELECT MIN(d2s) FROM TVisited WHERE f=0)",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(2));
}

#[test]
fn scalar_aggregates() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    d.execute("INSERT INTO t VALUES (3), (1), (4), (1), (5)")
        .unwrap();
    let rs = d
        .query("SELECT MIN(a), MAX(a), SUM(a), COUNT(*), AVG(a) FROM t")
        .unwrap();
    assert_eq!(
        rs.rows[0],
        vec![
            Value::Int(1),
            Value::Int(5),
            Value::Int(14),
            Value::Int(5),
            Value::Float(2.8),
        ]
    );
}

#[test]
fn scalar_aggregate_on_empty_table() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    let rs = d.query("SELECT MIN(a), COUNT(*) FROM t").unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Null);
    assert_eq!(rs.rows[0][1], Value::Int(0));
}

#[test]
fn group_by_with_having() {
    let mut d = db();
    d.execute("CREATE TABLE t (g INT, v INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1, 10), (1, 20), (2, 5), (2, 7), (3, 100)")
        .unwrap();
    let rs = d
        .query("SELECT g, SUM(v) AS total FROM t GROUP BY g HAVING SUM(v) > 12 ORDER BY g")
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(30)]);
    assert_eq!(rs.rows[1], vec![Value::Int(3), Value::Int(100)]);
}

#[test]
fn join_via_clustered_index() {
    let mut d = db();
    load_figure1(&mut d);
    d.execute("CREATE TABLE frontier (nid INT, d2s INT)")
        .unwrap();
    d.execute("INSERT INTO frontier VALUES (2, 1)").unwrap();
    // Expansion from node c (=2): neighbors s(0), d(3), e(4).
    let rs = d
        .query(
            "SELECT e.tid, q.d2s + e.cost AS nd FROM frontier q, TEdges e \
             WHERE q.nid = e.fid ORDER BY e.tid",
        )
        .unwrap();
    let got: Vec<(i64, i64)> = rs
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    assert_eq!(got, vec![(0, 2), (3, 2), (4, 4)]);
}

#[test]
fn window_function_row_number_paper_e_operator() {
    // The paper's E-operator: pick the minimum-cost occurrence per target
    // node, keeping the parent column available.
    let mut d = db();
    d.execute("CREATE TABLE exp (tid INT, fid INT, cost INT)")
        .unwrap();
    d.execute("INSERT INTO exp VALUES (4, 2, 4), (4, 1, 4), (4, 0, 9), (3, 2, 2), (3, 0, 6)")
        .unwrap();
    let rs = d
        .query(
            "SELECT nid, p2s, cost FROM \
               (SELECT tid AS nid, fid AS p2s, cost, \
                       ROW_NUMBER() OVER (PARTITION BY tid ORDER BY cost, fid) AS rownum \
                FROM exp) tmp \
             WHERE rownum = 1 ORDER BY nid",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    // Node 3: min cost 2 via parent 2. Node 4: min cost 4, tie broken by fid -> parent 1.
    assert_eq!(rs.rows[0], ints(&[3, 2, 2]));
    assert_eq!(rs.rows[1], ints(&[4, 1, 4]));
}

#[test]
fn rank_window_function_handles_ties() {
    let mut d = db();
    d.execute("CREATE TABLE t (g INT, v INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1, 10), (1, 10), (1, 20), (2, 5)")
        .unwrap();
    let rs = d
        .query("SELECT g, v, RANK() OVER (PARTITION BY g ORDER BY v) AS r FROM t ORDER BY g, v, r")
        .unwrap();
    let got: Vec<i64> = rs.rows.iter().map(|r| r[2].as_i64().unwrap()).collect();
    assert_eq!(got, vec![1, 1, 3, 1]);
}

#[test]
fn merge_statement_updates_and_inserts_listing2_4() {
    let mut d = db();
    d.execute("CREATE TABLE TVisited (nid INT, d2s INT, p2s INT, f INT, PRIMARY KEY(nid))")
        .unwrap();
    d.execute("CREATE TABLE ek (nid INT, p2s INT, cost INT)")
        .unwrap();
    // Visited: node 3 at distance 6; node 0 finalized at 0.
    d.execute("INSERT INTO TVisited VALUES (0, 0, 0, 1), (3, 6, 0, 0)")
        .unwrap();
    // Expanded: node 3 now reachable at cost 2 (update), node 4 new (insert),
    // node 0 at cost 99 (no update: worse).
    d.execute("INSERT INTO ek VALUES (3, 2, 2), (4, 2, 4), (0, 2, 99)")
        .unwrap();
    let out = d
        .execute(
            "MERGE INTO TVisited AS target USING ek AS source ON source.nid = target.nid \
             WHEN MATCHED AND target.d2s > source.cost THEN \
               UPDATE SET d2s = source.cost, p2s = source.p2s, f = 0 \
             WHEN NOT MATCHED THEN \
               INSERT (nid, d2s, p2s, f) VALUES (source.nid, source.cost, source.p2s, 0)",
        )
        .unwrap();
    assert_eq!(out.rows_affected, 2, "one update + one insert");
    let rs = d
        .query("SELECT nid, d2s, p2s, f FROM TVisited ORDER BY nid")
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.rows[0], ints(&[0, 0, 0, 1]), "unchanged: worse cost");
    assert_eq!(rs.rows[1], ints(&[3, 2, 2, 0]), "updated");
    assert_eq!(rs.rows[2], ints(&[4, 4, 2, 0]), "inserted");
}

#[test]
fn merge_rejected_on_postgres_dialect() {
    let mut d = Database::in_memory(64).with_dialect(Dialect::POSTGRES);
    d.execute("CREATE TABLE a (x INT, PRIMARY KEY(x))").unwrap();
    d.execute("CREATE TABLE b (x INT)").unwrap();
    let err = d.execute(
        "MERGE INTO a USING b ON b.x = a.x \
         WHEN NOT MATCHED THEN INSERT (x) VALUES (b.x)",
    );
    assert!(matches!(err, Err(SqlError::UnsupportedByDialect { .. })));
}

#[test]
fn update_from_plus_insert_not_in_replaces_merge() {
    // The TSQL / PostgreSQL M-operator: UPDATE … FROM then INSERT … NOT IN.
    let mut d = Database::in_memory(64).with_dialect(Dialect::POSTGRES);
    d.execute("CREATE TABLE TVisited (nid INT, d2s INT, p2s INT, f INT, PRIMARY KEY(nid))")
        .unwrap();
    d.execute("CREATE TABLE ek (nid INT, p2s INT, cost INT)")
        .unwrap();
    d.execute("INSERT INTO TVisited VALUES (0, 0, 0, 1), (3, 6, 0, 0)")
        .unwrap();
    d.execute("INSERT INTO ek VALUES (3, 2, 2), (4, 2, 4), (0, 2, 99)")
        .unwrap();

    let upd = d
        .execute(
            "UPDATE TVisited SET d2s = ek.cost, p2s = ek.p2s, f = 0 FROM ek \
             WHERE TVisited.nid = ek.nid AND TVisited.d2s > ek.cost",
        )
        .unwrap();
    assert_eq!(upd.rows_affected, 1);
    let ins = d
        .execute(
            "INSERT INTO TVisited (nid, d2s, p2s, f) \
             SELECT nid, cost, p2s, 0 FROM ek \
             WHERE nid NOT IN (SELECT nid FROM TVisited)",
        )
        .unwrap();
    assert_eq!(ins.rows_affected, 1);
    let rs = d
        .query("SELECT nid, d2s FROM TVisited ORDER BY nid")
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.rows[1], ints(&[3, 2]));
    assert_eq!(rs.rows[2], ints(&[4, 4]));
}

#[test]
fn views_expand_at_query_time() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    d.execute("CREATE VIEW big AS SELECT a FROM t WHERE a > 10")
        .unwrap();
    d.execute("INSERT INTO t VALUES (5), (15), (25)").unwrap();
    let rs = d.query("SELECT a FROM big ORDER BY a").unwrap();
    assert_eq!(rs.rows.len(), 2);
    // New inserts are visible through the view.
    d.execute("INSERT INTO t VALUES (99)").unwrap();
    assert_eq!(d.query("SELECT a FROM big").unwrap().rows.len(), 3);
    d.execute("DROP VIEW big").unwrap();
    assert!(d.query("SELECT a FROM big").is_err());
}

#[test]
fn delete_and_truncate() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    for i in 0..10 {
        d.execute_params("INSERT INTO t VALUES (?)", &ints(&[i]))
            .unwrap();
    }
    let out = d.execute("DELETE FROM t WHERE a % 2 = 0").unwrap();
    assert_eq!(out.rows_affected, 5);
    assert_eq!(d.table_len("t").unwrap(), 5);
    let out = d.execute("TRUNCATE TABLE t").unwrap();
    assert_eq!(out.rows_affected, 5);
    assert_eq!(d.table_len("t").unwrap(), 0);
}

#[test]
fn update_with_scalar_subquery_listing4_1() {
    // Listing 4(1): mark frontier nodes in the BSEG expansion.
    let mut d = db();
    d.execute("CREATE TABLE TVisited (nid INT, d2s INT, f INT)")
        .unwrap();
    d.execute("INSERT INTO TVisited VALUES (1, 3, 0), (2, 8, 0), (3, 20, 0), (4, 1, 1)")
        .unwrap();
    // fwd*lthd = 6: select nodes with d2s <= 6 or minimal d2s, among f=0.
    let out = d
        .execute(
            "UPDATE TVisited SET f = 2 \
             WHERE (d2s <= 6 OR d2s = (SELECT MIN(d2s) FROM TVisited WHERE f = 0)) AND f = 0",
        )
        .unwrap();
    assert_eq!(out.rows_affected, 1, "only node 1 (d2s=3) qualifies");
    let rs = d.query("SELECT nid FROM TVisited WHERE f = 2").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(1));
}

#[test]
fn insert_select_self_reference_snapshots() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    // Must not loop forever: source evaluated against pre-statement state.
    let out = d.execute("INSERT INTO t SELECT a + 10 FROM t").unwrap();
    assert_eq!(out.rows_affected, 2);
    assert_eq!(d.table_len("t").unwrap(), 4);
}

#[test]
fn duplicate_primary_key_rejected() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT, b INT, PRIMARY KEY(a))")
        .unwrap();
    d.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    let err = d.execute("INSERT INTO t VALUES (1, 2)");
    assert!(matches!(err, Err(SqlError::DuplicateKey { .. })));
}

#[test]
fn distinct_and_limit() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1), (1), (2), (2), (3)")
        .unwrap();
    let rs = d.query("SELECT DISTINCT a FROM t ORDER BY a").unwrap();
    assert_eq!(rs.rows.len(), 3);
    let rs = d
        .query("SELECT DISTINCT a FROM t ORDER BY a LIMIT 2")
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn three_way_join() {
    let mut d = db();
    d.execute("CREATE TABLE a (x INT)").unwrap();
    d.execute("CREATE TABLE b (x INT, y INT)").unwrap();
    d.execute("CREATE TABLE c (y INT, z INT)").unwrap();
    d.execute("INSERT INTO a VALUES (1), (2)").unwrap();
    d.execute("INSERT INTO b VALUES (1, 10), (2, 20), (3, 30)")
        .unwrap();
    d.execute("INSERT INTO c VALUES (10, 100), (20, 200)")
        .unwrap();
    let rs = d
        .query("SELECT a.x, c.z FROM a, b, c WHERE a.x = b.x AND b.y = c.y ORDER BY a.x")
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0], ints(&[1, 100]));
    assert_eq!(rs.rows[1], ints(&[2, 200]));
}

#[test]
fn exists_and_not_exists() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1)").unwrap();
    let rs = d.query("SELECT 1 WHERE EXISTS (SELECT * FROM t)").unwrap();
    assert_eq!(rs.rows.len(), 1);
    let rs = d
        .query("SELECT 1 WHERE NOT EXISTS (SELECT * FROM t WHERE a > 5)")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
}

#[test]
fn prepared_statement_reuse_with_params() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT, b INT, PRIMARY KEY(a))")
        .unwrap();
    let sql = "INSERT INTO t (a, b) VALUES (?, ?)";
    for i in 0..50 {
        d.execute_params(sql, &ints(&[i, i * i])).unwrap();
    }
    let rs = d
        .query_params("SELECT b FROM t WHERE a = ?", &ints(&[7]))
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(49));
    // Wrong parameter count errors cleanly.
    assert!(matches!(
        d.execute_params(sql, &ints(&[1])),
        Err(SqlError::ParamCount { .. })
    ));
}

#[test]
fn null_handling_in_filters() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    d.execute("INSERT INTO t (a, b) VALUES (1, 10), (2, NULL)")
        .unwrap();
    // NULL comparisons exclude the row.
    assert_eq!(
        d.query("SELECT a FROM t WHERE b > 5").unwrap().rows.len(),
        1
    );
    assert_eq!(
        d.query("SELECT a FROM t WHERE b IS NULL")
            .unwrap()
            .rows
            .len(),
        1
    );
    assert_eq!(
        d.query("SELECT a FROM t WHERE b IS NOT NULL")
            .unwrap()
            .rows
            .len(),
        1
    );
}

#[test]
fn qualified_wildcard_and_aliases() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1, 2)").unwrap();
    let rs = d.query("SELECT x.* FROM t x").unwrap();
    assert_eq!(rs.columns, vec!["a", "b"]);
    let rs = d.query("SELECT x.a AS first FROM t x").unwrap();
    assert_eq!(rs.columns, vec!["first"]);
}

#[test]
fn io_stats_reflect_buffer_pressure() {
    // A table bigger than a tiny buffer pool must incur disk reads when
    // scanned repeatedly — the mechanism behind Fig 8(b).
    let mut d = Database::with_pool(fempath_storage::BufferPool::in_memory(4));
    d.execute("CREATE TABLE t (a INT, pad TEXT)").unwrap();
    let pad = "x".repeat(500);
    for i in 0..200 {
        d.execute_params(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Int(i), Value::Text(pad.clone())],
        )
        .unwrap();
    }
    d.reset_io_stats();
    d.query("SELECT MIN(a) FROM t").unwrap();
    let small = d.io_stats();
    assert!(small.buffer_misses > 0, "tiny pool must miss");

    d.set_buffer_capacity(1024).unwrap();
    d.query("SELECT MIN(a) FROM t").unwrap(); // warm the pool
    d.reset_io_stats();
    d.query("SELECT MIN(a) FROM t").unwrap();
    let big = d.io_stats();
    assert_eq!(big.buffer_misses, 0, "large pool must serve from memory");
}

#[test]
fn statement_counter_tracks_executions() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    let before = d.statements_executed();
    d.execute("INSERT INTO t VALUES (1)").unwrap();
    d.query("SELECT * FROM t").unwrap();
    assert_eq!(d.statements_executed(), before + 2);
}

#[test]
fn drop_index_falls_back_to_scan() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    d.execute("CREATE INDEX ix ON t(a)").unwrap();
    d.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
    assert_eq!(
        d.query_params("SELECT b FROM t WHERE a = ?", &ints(&[2]))
            .unwrap()
            .rows[0][0],
        Value::Int(20)
    );
    d.execute("DROP INDEX ix").unwrap();
    assert_eq!(
        d.query_params("SELECT b FROM t WHERE a = ?", &ints(&[2]))
            .unwrap()
            .rows[0][0],
        Value::Int(20)
    );
}

#[test]
fn derived_table_with_renamed_columns() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1, 2), (3, 4)").unwrap();
    let rs = d
        .query("SELECT x, y FROM (SELECT a, b FROM t) r (x, y) WHERE x > 1")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0], ints(&[3, 4]));
}

#[test]
fn update_assignments_see_pre_update_row() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1, 2)").unwrap();
    d.execute("UPDATE t SET a = b, b = a").unwrap();
    let rs = d.query("SELECT a, b FROM t").unwrap();
    assert_eq!(rs.rows[0], ints(&[2, 1]), "swap semantics");
}
