//! Plan-shape regression tests: which access path and join strategy a
//! prepared plan chose (via `PreparedStmt::describe`), plus the
//! catalog-version invalidation rules — prepare → DDL → re-execute must
//! transparently replan (picking up new indexes, erroring cleanly on
//! dropped tables), while TRUNCATE must NOT invalidate anything.

use fempath_sql::{Database, SqlError};
use fempath_storage::Value;

fn db() -> Database {
    let mut d = Database::in_memory(256);
    d.execute("CREATE TABLE TVisited (nid INT, d2s INT, f INT, PRIMARY KEY(nid))")
        .unwrap();
    d.execute("CREATE TABLE TEdges (fid INT, tid INT, cost INT)")
        .unwrap();
    d.execute("CREATE CLUSTERED INDEX ix_e ON TEdges(fid)")
        .unwrap();
    d.execute("CREATE TABLE bare (x INT, y INT)").unwrap();
    for i in 0..20i64 {
        d.execute_params(
            "INSERT INTO TVisited VALUES (?, ?, 0)",
            &[Value::Int(i), Value::Int(i % 5)],
        )
        .unwrap();
        d.execute_params(
            "INSERT INTO TEdges VALUES (?, ?, 1)",
            &[Value::Int(i), Value::Int((i + 1) % 20)],
        )
        .unwrap();
        d.execute_params(
            "INSERT INTO bare VALUES (?, ?)",
            &[Value::Int(i % 4), Value::Int(i)],
        )
        .unwrap();
    }
    d
}

fn describe(d: &mut Database, sql: &str) -> String {
    d.prepare(sql).unwrap().describe().join("\n")
}

#[test]
fn point_lookup_uses_unique_index() {
    let mut d = db();
    let plan = describe(&mut d, "SELECT d2s FROM TVisited WHERE nid = 7");
    assert!(
        plan.contains("via index lookup on columns [0]"),
        "expected index lookup, got:\n{plan}"
    );
}

#[test]
fn clustered_prefix_lookup() {
    let mut d = db();
    let plan = describe(&mut d, "SELECT tid FROM TEdges WHERE fid = ?");
    assert!(
        plan.contains("SCAN TEdges (TEdges) via index lookup on columns [0]"),
        "expected clustered prefix lookup, got:\n{plan}"
    );
}

#[test]
fn unindexed_predicate_full_scans() {
    let mut d = db();
    let plan = describe(&mut d, "SELECT y FROM bare WHERE x = 1");
    assert!(
        plan.contains("full scan, 1 pushed filter(s)"),
        "expected filtered full scan, got:\n{plan}"
    );
}

#[test]
fn join_with_inner_index_is_index_nested_loop() {
    let mut d = db();
    let plan = describe(
        &mut d,
        "SELECT q.nid, e.tid FROM TVisited q, TEdges e WHERE q.nid = e.fid",
    );
    assert!(
        plan.contains("INDEX NESTED LOOP JOIN TEdges (e) probing index columns [0]"),
        "expected index nested loop, got:\n{plan}"
    );
}

#[test]
fn join_without_index_is_hash_join() {
    let mut d = db();
    let plan = describe(
        &mut d,
        "SELECT a.y, b.y FROM bare a, bare b WHERE a.x = b.x",
    );
    assert!(
        plan.contains("HASH JOIN on 1 column(s)"),
        "expected hash join, got:\n{plan}"
    );
}

#[test]
fn join_without_equalities_is_nested_loop() {
    let mut d = db();
    let plan = describe(
        &mut d,
        "SELECT a.y, b.y FROM bare a, bare b WHERE a.x < b.x",
    );
    assert!(
        plan.contains("NESTED LOOP JOIN"),
        "expected nested loop, got:\n{plan}"
    );
}

#[test]
fn aggregate_and_limit_stages_appear() {
    let mut d = db();
    let plan = describe(
        &mut d,
        "SELECT TOP 3 x, COUNT(*) FROM bare GROUP BY x ORDER BY x",
    );
    assert!(
        plan.contains("AGGREGATE (1 group key(s), 1 aggregate(s))"),
        "{plan}"
    );
    assert!(plan.contains("SORT"), "{plan}");
    assert!(plan.contains("LIMIT 3"), "{plan}");
}

#[test]
fn update_from_probes_target_index() {
    let mut d = db();
    let plan = describe(
        &mut d,
        "UPDATE TVisited SET d2s = e.cost FROM TEdges e \
         WHERE TVisited.nid = e.tid AND TVisited.d2s > e.cost",
    );
    assert!(
        plan.contains("UPDATE TVisited probing columns [0]"),
        "expected probe on nid, got:\n{plan}"
    );
}

#[test]
fn prepared_select_picks_up_new_index_after_create() {
    let mut d = db();
    let sql = "SELECT y FROM bare WHERE x = 2";
    let stmt = d.prepare(sql).unwrap();
    assert!(stmt.describe().join("\n").contains("full scan"));
    let before = d.execute_prepared(&stmt, &[]).unwrap();

    d.execute("CREATE INDEX ix_bare_x ON bare(x)").unwrap();
    // The old handle is stale but still executes (transparent replan) and
    // returns the same rows.
    let after = d.execute_prepared(&stmt, &[]).unwrap();
    assert_eq!(before.rows.unwrap().rows, after.rows.unwrap().rows);
    // A fresh prepare of the same SQL now chooses the index.
    let replanned = d.prepare(sql).unwrap();
    assert!(
        replanned
            .describe()
            .join("\n")
            .contains("via index lookup on columns [0]"),
        "replanned:\n{}",
        replanned.describe().join("\n")
    );
    assert!(replanned.catalog_version() > stmt.catalog_version());
}

#[test]
fn dropped_table_fails_cleanly_not_stale() {
    let mut d = db();
    let stmt = d.prepare("SELECT y FROM bare WHERE x = 2").unwrap();
    d.execute_prepared(&stmt, &[]).unwrap();
    d.execute("DROP TABLE bare").unwrap();
    let err = d.execute_prepared(&stmt, &[]);
    assert!(
        matches!(err, Err(SqlError::Catalog(_))),
        "expected catalog error after DROP TABLE, got {err:?}"
    );
}

#[test]
fn truncate_does_not_invalidate_plans() {
    let mut d = db();
    let stmt = d.prepare("SELECT COUNT(*) FROM bare").unwrap();
    let v = d.catalog_version();
    assert_eq!(
        d.execute_prepared(&stmt, &[]).unwrap().rows.unwrap().rows,
        vec![vec![Value::Int(20)]]
    );
    d.execute("TRUNCATE TABLE bare").unwrap();
    assert_eq!(d.catalog_version(), v, "TRUNCATE must not bump the version");
    assert_eq!(
        d.execute_prepared(&stmt, &[]).unwrap().rows.unwrap().rows,
        vec![vec![Value::Int(0)]]
    );
}

#[test]
fn plan_cache_hits_across_executions() {
    let mut d = db();
    let sql = "SELECT d2s FROM TVisited WHERE nid = ?";
    for i in 0..10i64 {
        d.execute_params(sql, &[Value::Int(i)]).unwrap();
    }
    let cached = d.cached_plans();
    for i in 0..10i64 {
        d.execute_params(sql, &[Value::Int(i)]).unwrap();
    }
    assert_eq!(d.cached_plans(), cached, "re-execution must not re-plan");
}

#[test]
fn prepared_handle_metadata() {
    let mut d = db();
    let stmt = d
        .prepare("SELECT d2s FROM TVisited WHERE nid = ? AND d2s < ?")
        .unwrap();
    assert_eq!(stmt.param_count(), 2);
    assert_eq!(
        stmt.sql(),
        "SELECT d2s FROM TVisited WHERE nid = ? AND d2s < ?"
    );
    // Executing with too few parameters errors cleanly.
    assert!(matches!(
        d.execute_prepared(&stmt, &[Value::Int(1)]),
        Err(SqlError::ParamCount { .. })
    ));
}
