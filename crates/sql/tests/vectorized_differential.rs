//! Differential tests targeting the vectorized executor's generic-column
//! fallback: tables whose columns mix Int, NULL, Text and Float values
//! force the `Chunk` columns off the typed `Vec<i64>` fast path, and every
//! query must still agree with both the row-at-a-time plan executor and
//! the AST interpreter — in both dialects. A property test generates
//! random mixed tables and sweeps a family of query shapes over them.

use fempath_sql::{Database, Dialect, ExecMode, ExecOutcome, Result};
use fempath_storage::Value;
use proptest::prelude::*;

/// Triplet of databases kept in lock-step.
struct Trio {
    vec_db: Database,
    row_db: Database,
    interp: Database,
}

impl Trio {
    fn new(dialect: Dialect) -> Trio {
        let vec_db = Database::in_memory(256).with_dialect(dialect);
        let mut row_db = Database::in_memory(256).with_dialect(dialect);
        row_db.set_exec_mode(ExecMode::RowAtATime);
        let interp = Database::in_memory(256).with_dialect(dialect);
        Trio {
            vec_db,
            row_db,
            interp,
        }
    }

    fn setup(&mut self, sql: &str) {
        self.vec_db.execute(sql).unwrap();
        self.row_db.execute(sql).unwrap();
        self.interp.execute(sql).unwrap();
    }

    fn setup_params(&mut self, sql: &str, params: &[Value]) {
        self.vec_db.execute_params(sql, params).unwrap();
        self.row_db.execute_params(sql, params).unwrap();
        self.interp.execute_params(sql, params).unwrap();
    }

    /// Runs a statement through all three paths; panics on divergence.
    /// Returns whether the statement succeeded.
    fn step(&mut self, sql: &str) -> bool {
        let v = self.vec_db.execute_params(sql, &[]);
        let r = self.row_db.execute_params(sql, &[]);
        let i = self.interp.execute_unplanned(sql, &[]);
        assert_same(sql, &v, &i, "vectorized vs interpreter");
        assert_same(sql, &v, &r, "vectorized vs row-at-a-time");
        v.is_ok()
    }
}

fn assert_same(sql: &str, a: &Result<ExecOutcome>, b: &Result<ExecOutcome>, pair: &str) {
    match (a, b) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a.rows_affected, b.rows_affected,
                "rows_affected diverged ({pair}) for: {sql}"
            );
            match (&a.rows, &b.rows) {
                (None, None) => {}
                (Some(ra), Some(rb)) => {
                    assert_eq!(ra.rows, rb.rows, "result rows diverged ({pair}) for: {sql}");
                }
                _ => panic!("result-set presence diverged ({pair}) for: {sql}"),
            }
        }
        (Err(_), Err(_)) => {}
        (Ok(_), Err(e)) => panic!("{pair}: second path failed ({e}) for: {sql}"),
        (Err(e), Ok(_)) => panic!("{pair}: first path failed ({e}) for: {sql}"),
    }
}

/// One random cell for the mixed table: Int-heavy, with NULLs, text and
/// floats mixed in so a column can demote mid-chunk.
fn arb_cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-20i64..20).prop_map(Value::Int),
        Just(Value::Null),
        (0u8..5).prop_map(|i| Value::Text(format!("t{i}"))),
        (-4i64..4).prop_map(|i| Value::Float(i as f64 / 2.0)),
    ]
}

/// Query shapes swept over the mixed table `m (a, b, c)` and the
/// all-integer side table `s (k, w)`. Every comparison, arithmetic,
/// grouping and join below hits mixed columns, exercising the
/// generic-column fallback and the typed/generic boundary.
const MIXED_QUERIES: &[&str] = &[
    "SELECT * FROM m",
    "SELECT a, b FROM m WHERE a = 3",
    "SELECT a FROM m WHERE a < 2",
    "SELECT b FROM m WHERE a IS NULL",
    "SELECT a FROM m WHERE b IS NOT NULL AND a > -5",
    "SELECT a + 1 FROM m WHERE a IS NOT NULL",
    "SELECT a, b FROM m WHERE a = b",
    "SELECT COUNT(*), COUNT(a), MIN(a), MAX(a) FROM m",
    "SELECT SUM(a), AVG(a) FROM m WHERE a IS NOT NULL",
    "SELECT a, COUNT(*) FROM m GROUP BY a ORDER BY a",
    "SELECT b, COUNT(*) FROM m GROUP BY b ORDER BY b",
    "SELECT DISTINCT a FROM m ORDER BY a",
    "SELECT TOP 3 a, b FROM m ORDER BY a, b, c",
    "SELECT m.a, s.w FROM m, s WHERE m.a = s.k",
    "SELECT m.b, s.w FROM m, s WHERE m.b = s.k AND s.w > 1",
    "SELECT a FROM m WHERE a IN (SELECT k FROM s)",
    "SELECT a FROM m WHERE a NOT IN (SELECT k FROM s WHERE w = 0)",
    "SELECT a, ROW_NUMBER() OVER (PARTITION BY b ORDER BY a, c) AS rn FROM m ORDER BY b, a, c, rn",
    "SELECT CASE_MARKER FROM m", // replaced below; keeps index alignment honest
    "SELECT a FROM m WHERE NOT (a = 1) ORDER BY a",
    "SELECT a, b FROM m WHERE a = 1 OR b = 1 ORDER BY a, b, c",
];

fn run_mixed_case(rows: &[(Value, Value, Value)], dialect: Dialect) {
    let mut trio = Trio::new(dialect);
    // `a`/`b` are declared INT but receive mixed values through the
    // untyped path? No — the engine coerces on insert, so mixed *types*
    // need TEXT/FLOAT declarations; NULLs exercise the bitmap either way.
    trio.setup("CREATE TABLE m (a INT, b INT, c TEXT)");
    trio.setup("CREATE TABLE s (k INT, w INT)");
    for i in 0..6i64 {
        trio.setup_params(
            "INSERT INTO s VALUES (?, ?)",
            &[Value::Int(i - 2), Value::Int(i % 3)],
        );
    }
    for (a, b, c) in rows {
        // Coercible values go in as-is; text lands in `c`, floats coerce
        // to INT in `a`/`b` — every combination is valid input, and NULLs
        // pepper all three columns.
        let a = match a {
            Value::Text(_) => Value::Null,
            other => other.clone(),
        };
        let b = match b {
            Value::Text(_) => Value::Null,
            other => other.clone(),
        };
        let c = match c {
            Value::Int(i) => Value::Text(format!("s{i}")),
            Value::Float(_) => Value::Null,
            other => other.clone(),
        };
        trio.setup_params("INSERT INTO m VALUES (?, ?, ?)", &[a, b, c]);
    }
    for q in MIXED_QUERIES {
        let q = if q.contains("CASE_MARKER") {
            "SELECT c FROM m WHERE c = 't1' OR c IS NULL".to_string()
        } else {
            q.to_string()
        };
        trio.step(&q);
    }
    // DML over mixed columns, then a final full check.
    trio.step("UPDATE m SET b = b + 1 WHERE a IS NOT NULL AND a < 0");
    trio.step("DELETE FROM m WHERE a = 2");
    trio.step("INSERT INTO m SELECT a, b, c FROM m WHERE b = 1");
    trio.step("SELECT * FROM m ORDER BY a, b, c");
    trio.step("SELECT COUNT(*) FROM m");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mixed_columns_agree_across_executors(
        rows in prop::collection::vec((arb_cell(), arb_cell(), arb_cell()), 0..40),
        pg in prop::bool::ANY,
    ) {
        let dialect = if pg { Dialect::POSTGRES } else { Dialect::DBMS_X };
        run_mixed_case(&rows, dialect);
    }
}

/// A hand-written worst case: a column that starts integer and demotes to
/// text mid-table (after more than one chunk boundary would have passed
/// in a larger table), plus float/int comparisons across columns.
#[test]
fn late_demotion_and_float_int_comparisons() {
    for dialect in [Dialect::DBMS_X, Dialect::POSTGRES] {
        let mut trio = Trio::new(dialect);
        trio.setup("CREATE TABLE t (x INT, f FLOAT, s TEXT)");
        for i in 0..50i64 {
            trio.setup_params(
                "INSERT INTO t VALUES (?, ?, ?)",
                &[
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                    Value::Float(i as f64 / 2.0),
                    if i % 3 == 0 {
                        Value::Null
                    } else {
                        Value::Text(format!("v{}", i % 5))
                    },
                ],
            );
        }
        trio.step("SELECT x FROM t WHERE f = 2.0");
        trio.step("SELECT x FROM t WHERE x = f + f");
        trio.step("SELECT COUNT(*) FROM t WHERE x < f");
        trio.step("SELECT s, COUNT(*) FROM t GROUP BY s ORDER BY s");
        trio.step("SELECT x FROM t WHERE s = 'v2' ORDER BY x");
        trio.step("SELECT MIN(f), MAX(f), SUM(f) FROM t WHERE x IS NOT NULL");
        trio.step("SELECT x / x FROM t WHERE x = 0"); // both paths: clean empty or same error
        trio.step("UPDATE t SET f = f * 2 WHERE x > 40");
        trio.step("SELECT * FROM t ORDER BY x, f, s");
    }
}

/// Joins whose build (right) side is empty — a zero-column chunk on the
/// vectorized path — must return empty results, not panic, for every
/// join strategy and an empty derived build side too.
#[test]
fn empty_build_side_joins() {
    let mut trio = Trio::new(Dialect::DBMS_X);
    trio.setup("CREATE TABLE a (x INT)");
    trio.setup("CREATE TABLE b (y INT)");
    trio.setup("CREATE TABLE c (z INT)");
    trio.setup("CREATE INDEX ix_c ON c(z)");
    trio.setup_params("INSERT INTO a VALUES (?)", &[Value::Int(1)]);
    trio.step("SELECT a.x, b.y FROM a, b WHERE a.x = b.y"); // hash, empty build
    trio.step("SELECT a.x, c.z FROM a, c WHERE a.x = c.z"); // index loop, empty inner
    trio.step("SELECT a.x, b.y FROM a, b WHERE a.x < b.y"); // nested loop, empty right
    trio.step("SELECT a.x, d.y FROM a, (SELECT y FROM b WHERE y > 0) d WHERE a.x = d.y");
    trio.step("SELECT COUNT(*) FROM a, b WHERE a.x = b.y");
}

/// A multi-batch `INSERT … SELECT` whose coercion fails in a *late*
/// chunk must leave the target untouched on every path — the vectorized
/// executor coerces all batches before writing, like the row executor
/// coerces all rows.
#[test]
fn late_chunk_coercion_failure_inserts_nothing() {
    let mut trio = Trio::new(Dialect::DBMS_X);
    trio.setup("CREATE TABLE target (x INT)");
    trio.setup("CREATE TABLE src (c TEXT)");
    // 1300 NULLs (coerce fine into INT) followed by one text row: the
    // failure sits in the second 1024-row chunk.
    for _ in 0..1300 {
        trio.setup_params("INSERT INTO src VALUES (?)", &[Value::Null]);
    }
    trio.setup_params("INSERT INTO src VALUES (?)", &[Value::Text("boom".into())]);
    let ok = trio.step("INSERT INTO target SELECT c FROM src");
    assert!(!ok, "text into INT must fail");
    trio.step("SELECT COUNT(*) FROM target"); // must be 0 on all paths
}

/// The all-integer fast path and the generic fallback must agree when a
/// statement's WHERE mixes typed-column comparisons with text equality.
#[test]
fn typed_and_generic_predicates_compose() {
    let mut trio = Trio::new(Dialect::DBMS_X);
    trio.setup("CREATE TABLE g (id INT, tag TEXT, v INT)");
    for i in 0..30i64 {
        trio.setup_params(
            "INSERT INTO g VALUES (?, ?, ?)",
            &[
                Value::Int(i),
                Value::Text(format!("g{}", i % 4)),
                if i % 5 == 0 {
                    Value::Null
                } else {
                    Value::Int(i * 3)
                },
            ],
        );
    }
    trio.step("SELECT id FROM g WHERE v > 10 AND tag = 'g1'");
    trio.step("SELECT id FROM g WHERE tag = 'g2' AND v IS NULL");
    trio.step("SELECT tag, SUM(v) FROM g GROUP BY tag ORDER BY tag");
    trio.step("DELETE FROM g WHERE tag = 'g3' AND v < 50");
    trio.step("SELECT * FROM g ORDER BY id");
}

/// The landmark-index build shapes (fempath-core's `landmarks` module):
/// a bulk `INSERT … SELECT` with constants in the projection routes the
/// whole Dijkstra tree through the vectorized chunked-append path, the
/// clustered index arrives *after* the heap fill, and the selection /
/// bound queries lean on NOT IN subqueries, grouped-subquery aliases and
/// an UPDATE … FROM a grouped source. All of it must agree across the
/// vectorized, row-at-a-time and interpreted paths in both dialects.
#[test]
fn landmark_index_build_shapes() {
    for dialect in [Dialect::DBMS_X, Dialect::POSTGRES] {
        let mut trio = Trio::new(dialect);
        trio.setup("CREATE TABLE TEdges (fid INT, tid INT, cost INT)");
        trio.setup("CREATE TABLE TVisited (nid INT, d2s INT, p2s INT)");
        trio.setup("CREATE TABLE TLandmarks (lm INT, nid INT, d INT, p INT)");
        for i in 0..40i64 {
            let (f, t) = (i % 8, (i * 3 + 1) % 8);
            trio.setup_params(
                "INSERT INTO TEdges VALUES (?, ?, ?)",
                &[Value::Int(f), Value::Int(t), Value::Int(1 + i % 5)],
            );
            trio.setup_params(
                "INSERT INTO TEdges VALUES (?, ?, ?)",
                &[Value::Int(t), Value::Int(f), Value::Int(1 + i % 5)],
            );
        }
        for n in 0..8i64 {
            trio.setup_params(
                "INSERT INTO TVisited VALUES (?, ?, ?)",
                &[Value::Int(n), Value::Int(n * 2), Value::Int((n + 7) % 8)],
            );
        }
        // Max-degree selection: grouped subquery, then the two-aggregate
        // tie-break over the same candidate set.
        trio.step(
            "SELECT MAX(deg) FROM (SELECT fid, COUNT(*) AS deg FROM TEdges \
             WHERE fid NOT IN (SELECT lm FROM TLandmarks) GROUP BY fid) cand",
        );
        // Bulk tree store: constants in the SELECT list, filtered source.
        trio.step("INSERT INTO TLandmarks (lm, nid, d, p) SELECT 3, nid, d2s, p2s FROM TVisited WHERE d2s < 12");
        trio.step("INSERT INTO TLandmarks (lm, nid, d, p) SELECT 5, nid, d2s, p2s FROM TVisited WHERE d2s < 99");
        trio.step("CREATE CLUSTERED INDEX idx_tlandmarks ON TLandmarks(nid)");
        // Triangle-inequality bound: self-join on the landmark column.
        trio.step(
            "SELECT MIN(a.d + b.d) FROM TLandmarks a, TLandmarks b \
             WHERE a.nid = 1 AND b.nid = 6 AND a.lm = b.lm",
        );
        // Coverage pass: per-node minimum distance, then the farthest node.
        trio.step(
            "SELECT MAX(md) FROM (SELECT nid, MIN(d) AS md FROM TLandmarks GROUP BY nid) cov",
        );
        // Batched bound seeding: UPDATE … FROM a grouped subquery.
        trio.setup("CREATE TABLE TBounds (qid INT, s INT, t INT, bound INT)");
        trio.step(
            "INSERT INTO TBounds VALUES (0, 1, 6, 4000000000000000), (1, 2, 7, 4000000000000000)",
        );
        trio.step(
            "UPDATE TBounds SET bound = src.u + 1 \
             FROM (SELECT q.qid AS sqid, MIN(a.d + b.d) AS u \
                   FROM TBounds q, TLandmarks a, TLandmarks b \
                   WHERE a.nid = q.s AND b.nid = q.t AND a.lm = b.lm \
                   GROUP BY q.qid) src \
             WHERE TBounds.qid = src.sqid",
        );
        trio.step("SELECT qid, bound FROM TBounds ORDER BY qid");
        // The pruning ceiling's arithmetic min over (mincost, bound).
        trio.step("SELECT qid, 7 + (bound < 7) * (bound - 7) AS wmc FROM TBounds ORDER BY qid");
    }
}
