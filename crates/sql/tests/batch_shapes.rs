//! Executor coverage for the statement shapes the batched (multi-query)
//! FEM path leans on: composite-key MERGE driven by a window partitioned
//! over two columns, `UPDATE … FROM` against a grouped derived table, and
//! `UPDATE … FROM` joining two base tables on a shared key column. See
//! DESIGN.md §8 for the batched schema these shapes serve.

use fempath_sql::Database;
use fempath_storage::Value;

fn db() -> Database {
    Database::in_memory(64)
}

/// Builds a two-query visited table plus an edge table:
/// qid 0 explores from node 0, qid 1 from node 10.
fn seed_batch(db: &mut Database) {
    db.execute("CREATE TABLE BV (qid INT, nid INT, d INT, p INT, f INT)")
        .unwrap();
    db.execute("CREATE UNIQUE CLUSTERED INDEX idx_bv ON BV(qid, nid)")
        .unwrap();
    db.execute("CREATE TABLE E (fid INT, tid INT, cost INT)")
        .unwrap();
    db.execute("CREATE CLUSTERED INDEX idx_e ON E(fid)")
        .unwrap();
    db.execute("INSERT INTO BV VALUES (0, 0, 0, -1, 2), (1, 10, 0, -1, 2)")
        .unwrap();
    db.execute("INSERT INTO E VALUES (0, 1, 5), (0, 2, 3), (2, 1, 1), (10, 11, 7)")
        .unwrap();
}

#[test]
fn merge_on_composite_key_with_two_column_window_partition() {
    let mut db = db();
    seed_batch(&mut db);
    // The batched E+M operator: per-(qid, tid) minimum via ROW_NUMBER
    // partitioned over both columns, merged on the composite key.
    let n = db
        .execute(
            "MERGE INTO BV AS target USING ( \
               SELECT qid, nid, np, cost FROM ( \
                 SELECT q.qid AS qid, e.tid AS nid, e.fid AS np, e.cost + q.d AS cost, \
                        ROW_NUMBER() OVER (PARTITION BY q.qid, e.tid ORDER BY e.cost + q.d) AS rownum \
                 FROM BV q, E e WHERE q.nid = e.fid AND q.f = 2 \
               ) tmp WHERE rownum = 1 \
             ) AS source (qid, nid, np, cost) \
             ON source.qid = target.qid AND source.nid = target.nid \
             WHEN MATCHED AND target.d > source.cost THEN \
               UPDATE SET d = source.cost, p = source.np, f = 0 \
             WHEN NOT MATCHED THEN \
               INSERT (qid, nid, d, p, f) VALUES (source.qid, source.nid, source.cost, source.np, 0)",
        )
        .unwrap()
        .rows_affected;
    // qid 0 discovers nodes 1 and 2; qid 1 discovers node 11.
    assert_eq!(n, 3);
    let rs = db
        .query("SELECT qid, nid, d FROM BV WHERE f = 0 ORDER BY qid, nid")
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(0), Value::Int(1), Value::Int(5)],
            vec![Value::Int(0), Value::Int(2), Value::Int(3)],
            vec![Value::Int(1), Value::Int(11), Value::Int(7)],
        ]
    );
}

#[test]
fn update_from_grouped_derived_table() {
    let mut db = db();
    db.execute("CREATE TABLE B (qid INT, l INT, n INT, done INT)")
        .unwrap();
    db.execute("CREATE UNIQUE CLUSTERED INDEX idx_b ON B(qid)")
        .unwrap();
    db.execute("CREATE TABLE BV (qid INT, d INT, f INT)")
        .unwrap();
    db.execute("INSERT INTO B VALUES (0, -1, -1, 0), (1, -1, -1, 0), (2, -1, -1, 1)")
        .unwrap();
    db.execute("INSERT INTO BV VALUES (0, 4, 0), (0, 9, 0), (0, 2, 1), (1, 7, 0), (2, 1, 0)")
        .unwrap();
    // Per-qid candidate stats folded into the bounds table in one statement.
    let n = db
        .execute(
            "UPDATE B SET l = src.l, n = src.c \
             FROM (SELECT qid, MIN(d) AS l, COUNT(*) AS c FROM BV WHERE f = 0 GROUP BY qid) src \
             WHERE B.qid = src.qid AND B.done = 0",
        )
        .unwrap()
        .rows_affected;
    assert_eq!(n, 2, "done groups must not be refreshed");
    let rs = db.query("SELECT qid, l, n FROM B ORDER BY qid").unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(0), Value::Int(4), Value::Int(2)],
            vec![Value::Int(1), Value::Int(7), Value::Int(1)],
            vec![Value::Int(2), Value::Int(-1), Value::Int(-1)],
        ]
    );
}

#[test]
fn update_from_base_table_with_cross_predicates() {
    let mut db = db();
    db.execute("CREATE TABLE B (qid INT, lf INT, done INT)")
        .unwrap();
    db.execute("CREATE TABLE BV (qid INT, nid INT, d INT, f INT)")
        .unwrap();
    db.execute("CREATE UNIQUE CLUSTERED INDEX idx_bv ON BV(qid, nid)")
        .unwrap();
    db.execute("INSERT INTO B VALUES (0, 3, 0), (1, 5, 0), (2, 1, 1)")
        .unwrap();
    db.execute(
        "INSERT INTO BV VALUES (0, 7, 3, 0), (0, 8, 3, 0), (0, 9, 4, 0), \
         (1, 7, 5, 0), (2, 7, 1, 0)",
    )
    .unwrap();
    // The batched F-operator: mark candidates sitting at their own query's
    // minimum, skipping finished queries.
    let n = db
        .execute(
            "UPDATE BV SET f = 2 FROM B \
             WHERE BV.qid = B.qid AND B.done = 0 AND BV.f = 0 AND BV.d = B.lf",
        )
        .unwrap()
        .rows_affected;
    assert_eq!(n, 3);
    let rs = db
        .query("SELECT qid, nid FROM BV WHERE f = 2 ORDER BY qid, nid")
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(0), Value::Int(7)],
            vec![Value::Int(0), Value::Int(8)],
            vec![Value::Int(1), Value::Int(7)],
        ]
    );
}

#[test]
fn update_from_with_source_column_comparison_in_where() {
    let mut db = db();
    db.execute("CREATE TABLE B (qid INT, mincost INT, done INT)")
        .unwrap();
    db.execute("CREATE UNIQUE CLUSTERED INDEX idx_b ON B(qid)")
        .unwrap();
    db.execute("CREATE TABLE BV (qid INT, ds INT, dt INT)")
        .unwrap();
    db.execute("INSERT INTO B VALUES (0, 100, 0), (1, 4, 0)")
        .unwrap();
    db.execute("INSERT INTO BV VALUES (0, 2, 3), (0, 4, 9), (1, 5, 5)")
        .unwrap();
    // minCost tightening: only write when the fresh minimum improves.
    let n = db
        .execute(
            "UPDATE B SET mincost = src.mc \
             FROM (SELECT qid, MIN(ds + dt) AS mc FROM BV GROUP BY qid) src \
             WHERE B.qid = src.qid AND B.done = 0 AND src.mc < B.mincost",
        )
        .unwrap()
        .rows_affected;
    assert_eq!(n, 1, "qid 1's stale bound (4 < 10) must be kept");
    let rs = db.query("SELECT mincost FROM B ORDER BY qid").unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(5)], vec![Value::Int(4)]]);
}

#[test]
fn grouped_aggregate_join_source_for_traditional_style() {
    let mut db = db();
    seed_batch(&mut db);
    // The TSQL-style batched E-operator: GROUP BY (qid, tid) minimum plus a
    // rejoin recovering the parent, all before any window support.
    let rs = db
        .query(
            "SELECT q2.qid AS qid, e2.tid AS nid, MIN(e2.fid) AS np, m.c AS cost \
             FROM BV q2, E e2, ( \
                SELECT q.qid AS mqid, e.tid AS mtid, MIN(e.cost + q.d) AS c \
                FROM BV q, E e WHERE q.nid = e.fid AND q.f = 2 \
                GROUP BY q.qid, e.tid \
             ) m \
             WHERE q2.nid = e2.fid AND q2.f = 2 AND q2.qid = m.mqid AND e2.tid = m.mtid \
               AND e2.cost + q2.d = m.c \
             GROUP BY q2.qid, e2.tid, m.c \
             ORDER BY qid, nid",
        )
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(0), Value::Int(1), Value::Int(0), Value::Int(5)],
            vec![Value::Int(0), Value::Int(2), Value::Int(0), Value::Int(3)],
            vec![Value::Int(1), Value::Int(11), Value::Int(10), Value::Int(7)],
        ]
    );
}

#[test]
fn update_from_keeps_ambiguous_unqualified_columns_an_error() {
    let mut db = db();
    db.execute("CREATE TABLE TA (id INT, flag INT)").unwrap();
    db.execute("CREATE TABLE TB (id INT, flag INT)").unwrap();
    db.execute("INSERT INTO TA VALUES (1, 0)").unwrap();
    db.execute("INSERT INTO TB VALUES (1, 1)").unwrap();
    // `flag` resolves in both the target and the source. The source-side
    // pushdown must leave it to combined-schema binding (where it is an
    // ambiguity error), not silently consume it as a source filter.
    let out = db.execute("UPDATE TA SET id = 2 FROM TB WHERE TA.id = TB.id AND flag = 1");
    assert!(out.is_err(), "ambiguous column must not be silently bound");
    // Qualified references on either side still work.
    let n = db
        .execute(
            "UPDATE TA SET flag = 9 FROM TB WHERE TA.id = TB.id AND TB.flag = 1 AND TA.flag = 0",
        )
        .unwrap()
        .rows_affected;
    assert_eq!(n, 1);
}
