//! Property tests for the femcheck semantic analyzer.
//!
//! Positive direction: statements generated *well-typed by construction*
//! against a fixed catalog must analyze to zero diagnostics under both
//! dialects — the analyzer may not cry wolf on the statement family the
//! SQL generators actually emit (projections, aggregates, joins, guarded
//! NOT IN, DML). Negative direction: a table of one-line counterexamples,
//! one per rule in the catalog, pinned to the exact rule it must trigger,
//! plus a randomized unknown-identifier injection.
//!
//! Case count honours `PROPTEST_CASES` (the CI admissibility job runs 512).

use fempath_sql::analyze::Rule;
use fempath_sql::{Database, Dialect};
use proptest::prelude::*;

/// The fixed catalog: the paper's working tables plus a text-bearing one.
/// `TEdges` is clustered on `fid`, `TVisited` uniquely indexed on `nid`,
/// `TExp` and `TNames` are plain heaps.
fn db(dialect: Dialect) -> Database {
    let mut db = Database::in_memory(64).with_dialect(dialect);
    for sql in [
        "CREATE TABLE TEdges (fid INT, tid INT, cost INT)",
        "CREATE CLUSTERED INDEX idx_tedges ON TEdges(fid)",
        "CREATE TABLE TVisited (nid INT, d2s INT, p2s INT, f INT)",
        "CREATE UNIQUE INDEX idx_tvisited_nid ON TVisited(nid)",
        "CREATE TABLE TExp (nid INT, p2s INT, cost INT)",
        "CREATE TABLE TNames (id INT, name TEXT)",
    ] {
        db.execute(sql).unwrap();
    }
    db
}

/// (table, integer columns) pairs the generator draws from.
const TABLES: &[(&str, &[&str])] = &[
    ("TEdges", &["fid", "tid", "cost"]),
    ("TVisited", &["nid", "d2s", "p2s", "f"]),
    ("TExp", &["nid", "p2s", "cost"]),
];

fn arb_table() -> impl Strategy<Value = usize> {
    0..TABLES.len()
}

/// A column index into the chosen table's column list. Sampled wide and
/// taken modulo the actual column count at render time.
fn arb_col() -> impl Strategy<Value = usize> {
    0usize..8
}

fn arb_cmp() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("="),
        Just("<>"),
        Just("<"),
        Just("<="),
        Just(">"),
        Just(">=")
    ]
}

fn arb_lit() -> impl Strategy<Value = i64> {
    -100i64..100
}

/// One well-typed predicate over table `t` (rendered later).
#[derive(Debug, Clone)]
enum Pred {
    ColLit(usize, &'static str, i64),
    ColCol(usize, &'static str, usize),
    IsNull(usize, bool),
    /// Guarded `NOT IN`: the subquery column carries an `IS NOT NULL`
    /// filter, so FC101 must stay silent.
    GuardedNotIn(usize, usize, usize),
    And(Box<Pred>, Box<Pred>),
}

fn arb_leaf() -> impl Strategy<Value = Pred> {
    prop_oneof![
        (arb_col(), arb_cmp(), arb_lit()).prop_map(|(c, op, l)| Pred::ColLit(c, op, l)),
        (arb_col(), arb_cmp(), arb_col()).prop_map(|(a, op, b)| Pred::ColCol(a, op, b)),
        (arb_col(), prop::bool::ANY).prop_map(|(c, n)| Pred::IsNull(c, n)),
        (arb_col(), arb_table(), arb_col()).prop_map(|(c, t, sc)| Pred::GuardedNotIn(c, t, sc)),
    ]
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    prop_oneof![
        arb_leaf(),
        (arb_leaf(), arb_leaf()).prop_map(|(a, b)| Pred::And(Box::new(a), Box::new(b))),
    ]
}

fn col(t: usize, c: usize) -> &'static str {
    let cols = TABLES[t].1;
    cols[c % cols.len()]
}

fn render_pred(t: usize, p: &Pred) -> String {
    match p {
        Pred::ColLit(c, op, l) => format!("{} {op} {l}", col(t, *c)),
        Pred::ColCol(a, op, b) => format!("{} {op} {}", col(t, *a), col(t, *b)),
        Pred::IsNull(c, neg) => format!("{} IS {}NULL", col(t, *c), if *neg { "NOT " } else { "" }),
        Pred::GuardedNotIn(c, st, sc) => {
            let (stab, _) = TABLES[*st];
            let scol = col(*st, *sc);
            format!(
                "{} NOT IN (SELECT {scol} FROM {stab} WHERE {scol} IS NOT NULL)",
                col(t, *c)
            )
        }
        Pred::And(a, b) => format!("{} AND {}", render_pred(t, a), render_pred(t, b)),
    }
}

/// A well-typed statement: the generator only combines integer columns of
/// one table with integer literals, so no rule has grounds to fire.
#[derive(Debug, Clone)]
enum Stmt {
    Select {
        t: usize,
        cols: Vec<usize>,
        pred: Option<Pred>,
        order: Option<usize>,
    },
    Agg {
        t: usize,
        func: &'static str,
        arg: usize,
        group: Option<usize>,
        pred: Option<Pred>,
    },
    Arith(usize, usize, i64, Option<Pred>),
    Insert(i64, i64, i64),
    Update(usize, i64, Pred),
    Delete(Pred),
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (
            arb_table(),
            prop::collection::vec(arb_col(), 1..4),
            prop::option::of(arb_pred()),
            prop::option::of(arb_col()),
        )
            .prop_map(|(t, cols, pred, order)| Stmt::Select {
                t,
                cols,
                pred,
                order
            }),
        (
            arb_table(),
            prop_oneof![
                Just("MIN"),
                Just("MAX"),
                Just("SUM"),
                Just("AVG"),
                Just("COUNT")
            ],
            arb_col(),
            prop::option::of(arb_col()),
            prop::option::of(arb_pred()),
        )
            .prop_map(|(t, func, arg, group, pred)| Stmt::Agg {
                t,
                func,
                arg,
                group,
                pred
            }),
        (
            arb_table(),
            arb_col(),
            arb_lit(),
            prop::option::of(arb_pred())
        )
            .prop_map(|(t, c, l, p)| Stmt::Arith(t, c, l, p)),
        (arb_lit(), arb_lit(), arb_lit()).prop_map(|(a, b, c)| Stmt::Insert(a, b, c)),
        (arb_col(), arb_lit(), arb_pred()).prop_map(|(c, l, p)| Stmt::Update(c, l, p)),
        arb_pred().prop_map(Stmt::Delete),
    ]
}

fn render_stmt(s: &Stmt) -> String {
    match s {
        Stmt::Select {
            t,
            cols,
            pred,
            order,
        } => {
            let (tab, _) = TABLES[*t];
            let proj: Vec<&str> = cols.iter().map(|&c| col(*t, c)).collect();
            let mut sql = format!("SELECT {} FROM {tab}", proj.join(", "));
            if let Some(p) = pred {
                sql.push_str(&format!(" WHERE {}", render_pred(*t, p)));
            }
            if let Some(o) = order {
                sql.push_str(&format!(" ORDER BY {}", col(*t, *o)));
            }
            sql
        }
        Stmt::Agg {
            t,
            func,
            arg,
            group,
            pred,
        } => {
            let (tab, _) = TABLES[*t];
            let agg = format!("{func}({})", col(*t, *arg));
            let mut sql = match group {
                Some(g) => format!("SELECT {}, {agg} FROM {tab}", col(*t, *g)),
                None => format!("SELECT {agg} FROM {tab}"),
            };
            if let Some(p) = pred {
                sql.push_str(&format!(" WHERE {}", render_pred(*t, p)));
            }
            if let Some(g) = group {
                sql.push_str(&format!(" GROUP BY {}", col(*t, *g)));
            }
            sql
        }
        Stmt::Arith(t, c, l, pred) => {
            let (tab, _) = TABLES[*t];
            let mut sql = format!("SELECT {} + {l} FROM {tab}", col(*t, *c));
            if let Some(p) = pred {
                sql.push_str(&format!(" WHERE {}", render_pred(*t, p)));
            }
            sql
        }
        Stmt::Insert(a, b, c) => {
            format!("INSERT INTO TExp (nid, p2s, cost) VALUES ({a}, {b}, {c})")
        }
        Stmt::Update(c, l, p) => {
            // Table 1 is TVisited.
            format!(
                "UPDATE TVisited SET {} = {l} WHERE {}",
                col(1, *c),
                render_pred(1, p)
            )
        }
        Stmt::Delete(p) => format!("DELETE FROM TExp WHERE {}", render_pred(2, p)),
    }
}

proptest! {
    /// Every generated well-typed statement is diagnostic-free in both
    /// dialects (cold analysis — hot-path policy is exercised separately).
    #[test]
    fn well_typed_statements_analyze_clean(s in arb_stmt(), pg in prop::bool::ANY) {
        let dialect = if pg { Dialect::POSTGRES } else { Dialect::DBMS_X };
        let sql = render_stmt(&s);
        let r = db(dialect).analyze(&sql).unwrap();
        prop_assert!(r.is_clean(), "false positive:\n{}", r.render());
    }

    /// Injecting an unknown identifier into an otherwise well-typed SELECT
    /// always surfaces FC002 — the resolver cannot be fooled by context.
    #[test]
    fn unknown_identifier_is_always_caught(t in arb_table(), pred in prop::option::of(arb_pred())) {
        let (tab, _) = TABLES[t];
        let mut sql = format!("SELECT zz9_missing FROM {tab}");
        if let Some(p) = &pred {
            sql.push_str(&format!(" WHERE {}", render_pred(t, p)));
        }
        let r = db(Dialect::DBMS_X).analyze(&sql).unwrap();
        prop_assert!(r.has_rule(Rule::UnknownColumn), "missed:\n{}", r.render());
    }
}

/// One pinned counterexample per rule: the statement must trigger exactly
/// the named rule (other rules may ride along, but the named one is the
/// contract).
#[test]
fn every_rule_has_a_live_counterexample() {
    let cases: &[(Rule, &str)] = &[
        (Rule::UnknownTable, "SELECT x FROM Nope"),
        (Rule::UnknownColumn, "SELECT nope FROM TEdges"),
        (
            Rule::TypeMismatch,
            "SELECT fid FROM TEdges WHERE cost = 'far'",
        ),
        (Rule::NonNumericArith, "SELECT name + 1 FROM TNames"),
        (
            Rule::StatementShape,
            "INSERT INTO TExp (nid, p2s) VALUES (1, 2, 3)",
        ),
        (
            Rule::NotInNullable,
            "SELECT nid FROM TVisited WHERE nid NOT IN (SELECT p2s FROM TVisited)",
        ),
        (
            Rule::AlwaysNullPredicate,
            "SELECT fid FROM TEdges WHERE fid = NULL",
        ),
    ];
    let d = db(Dialect::DBMS_X);
    for (rule, sql) in cases {
        let r = d.analyze(sql).unwrap();
        assert!(
            r.has_rule(*rule),
            "{} not triggered by `{sql}`:\n{}",
            rule.code(),
            r.render()
        );
    }
}

/// FC006: MERGE is rejected under a dialect without MERGE support and
/// accepted under one with it.
#[test]
fn merge_dialect_gate() {
    let merge = "MERGE INTO TVisited AS target USING TExp AS source \
                 ON source.nid = target.nid \
                 WHEN MATCHED AND target.d2s > source.cost THEN \
                   UPDATE SET d2s = source.cost, p2s = source.p2s, f = 0 \
                 WHEN NOT MATCHED THEN \
                   INSERT (nid, d2s, p2s, f) VALUES (source.nid, source.cost, source.p2s, 0)";
    let r = db(Dialect::POSTGRES).analyze(merge).unwrap();
    assert!(
        r.has_rule(Rule::DialectUnsupported),
        "FC006 missed:\n{}",
        r.render()
    );
    let r = db(Dialect::DBMS_X).analyze(merge).unwrap();
    assert!(r.is_clean(), "false positive:\n{}", r.render());
}

/// FC201: the same probe is clean cold, flagged hot when it full-scans an
/// indexed table, and clean hot when it rides the index.
#[test]
fn hot_path_full_scan_gate() {
    let d = db(Dialect::DBMS_X);
    let scan = "SELECT d2s FROM TVisited WHERE f = 0";
    assert!(d.analyze(scan).unwrap().is_clean());
    let r = d.analyze_hot_path(scan).unwrap();
    assert!(
        r.has_rule(Rule::HotPathFullScan),
        "FC201 missed:\n{}",
        r.render()
    );
    let probe = "SELECT d2s FROM TVisited WHERE nid = 7";
    assert!(d.analyze_hot_path(probe).unwrap().is_clean());
}
