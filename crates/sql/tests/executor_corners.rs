//! Executor corner cases: join strategies, subquery placement, window and
//! aggregate edges, DML interactions — the situations the paper's SQL
//! exercises indirectly and a general user would hit directly.

use fempath_sql::{Database, SqlError};
use fempath_storage::Value;

fn db() -> Database {
    Database::in_memory(256)
}

#[test]
fn hash_join_without_any_index() {
    let mut d = db();
    d.execute("CREATE TABLE a (x INT, y INT)").unwrap();
    d.execute("CREATE TABLE b (x INT, z INT)").unwrap();
    for i in 0..50 {
        d.execute_params(
            "INSERT INTO a VALUES (?, ?)",
            &[Value::Int(i), Value::Int(i * 2)],
        )
        .unwrap();
        d.execute_params(
            "INSERT INTO b VALUES (?, ?)",
            &[Value::Int(i), Value::Int(i * 3)],
        )
        .unwrap();
    }
    let rs = d
        .query("SELECT a.y, b.z FROM a, b WHERE a.x = b.x AND a.x = 7")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(14), Value::Int(21)]]);
}

#[test]
fn cross_join_with_residual_filter() {
    let mut d = db();
    d.execute("CREATE TABLE a (x INT)").unwrap();
    d.execute("CREATE TABLE b (y INT)").unwrap();
    d.execute("INSERT INTO a VALUES (1), (2), (3)").unwrap();
    d.execute("INSERT INTO b VALUES (10), (20)").unwrap();
    let rs = d
        .query("SELECT x, y FROM a, b WHERE x + y > 21 ORDER BY x, y")
        .unwrap();
    // (2,20), (3,20)
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0], vec![Value::Int(2), Value::Int(20)]);
}

#[test]
fn join_predicate_with_expression_on_outer_side() {
    // The E-operator joins on q.nid = e.fid where the left side could be an
    // expression — check index-nested-loop handles computed keys.
    let mut d = db();
    d.execute("CREATE TABLE probe (v INT)").unwrap();
    d.execute("CREATE TABLE data (k INT, payload INT)").unwrap();
    d.execute("CREATE CLUSTERED INDEX ix ON data(k)").unwrap();
    d.execute("INSERT INTO probe VALUES (5), (10)").unwrap();
    for k in 0..30 {
        d.execute_params(
            "INSERT INTO data VALUES (?, ?)",
            &[Value::Int(k), Value::Int(k * 100)],
        )
        .unwrap();
    }
    let rs = d
        .query("SELECT d.payload FROM probe p, data d WHERE p.v * 2 = d.k ORDER BY d.payload")
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0][0], Value::Int(1000));
    assert_eq!(rs.rows[1][0], Value::Int(2000));
}

#[test]
fn scalar_subquery_returning_no_rows_is_null() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1)").unwrap();
    // MIN over empty set -> NULL; comparison with NULL -> no rows.
    let rs = d
        .query("SELECT a FROM t WHERE a = (SELECT MIN(a) FROM t WHERE a > 100)")
        .unwrap();
    assert!(rs.is_empty());
}

#[test]
fn scalar_subquery_with_multiple_rows_errors() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    let err = d.query("SELECT 1 WHERE 1 = (SELECT a FROM t)");
    assert!(matches!(err, Err(SqlError::Eval(_))));
}

#[test]
fn in_subquery_with_empty_result() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    assert!(d
        .query("SELECT a FROM t WHERE a IN (SELECT a FROM t WHERE a > 99)")
        .unwrap()
        .is_empty());
    // NOT IN over empty set keeps everything.
    assert_eq!(
        d.query("SELECT a FROM t WHERE a NOT IN (SELECT a FROM t WHERE a > 99)")
            .unwrap()
            .len(),
        2
    );
}

#[test]
fn window_over_empty_input() {
    let mut d = db();
    d.execute("CREATE TABLE t (g INT, v INT)").unwrap();
    let rs = d
        .query("SELECT g, ROW_NUMBER() OVER (PARTITION BY g ORDER BY v) AS rn FROM t")
        .unwrap();
    assert!(rs.is_empty());
}

#[test]
fn window_single_partition_no_partition_by() {
    let mut d = db();
    d.execute("CREATE TABLE t (v INT)").unwrap();
    d.execute("INSERT INTO t VALUES (30), (10), (20)").unwrap();
    let rs = d
        .query("SELECT v, ROW_NUMBER() OVER (ORDER BY v) AS rn FROM t ORDER BY rn")
        .unwrap();
    let got: Vec<(i64, i64)> = rs
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    assert_eq!(got, vec![(10, 1), (20, 2), (30, 3)]);
}

#[test]
fn window_rownum_filter_in_outer_query() {
    // The exact top-1-per-group idiom of Listing 2(3).
    let mut d = db();
    d.execute("CREATE TABLE t (g INT, v INT, tag INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1, 5, 100), (1, 3, 200), (2, 9, 300), (2, 9, 400)")
        .unwrap();
    let rs = d
        .query(
            "SELECT g, v, tag FROM ( \
               SELECT g, v, tag, ROW_NUMBER() OVER (PARTITION BY g ORDER BY v, tag) AS rn \
               FROM t) x WHERE rn = 1 ORDER BY g",
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(
        rs.rows[0],
        vec![Value::Int(1), Value::Int(3), Value::Int(200)]
    );
    assert_eq!(
        rs.rows[1],
        vec![Value::Int(2), Value::Int(9), Value::Int(300)]
    );
}

#[test]
fn group_by_expression_key() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    for i in 0..10 {
        d.execute_params("INSERT INTO t VALUES (?)", &[Value::Int(i)])
            .unwrap();
    }
    let rs = d
        .query("SELECT a % 3, COUNT(*) FROM t GROUP BY a % 3 ORDER BY a % 3")
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.rows[0][1], Value::Int(4)); // 0,3,6,9
    assert_eq!(rs.rows[1][1], Value::Int(3)); // 1,4,7
    assert_eq!(rs.rows[2][1], Value::Int(3)); // 2,5,8
}

#[test]
fn group_by_rejects_ungrouped_column() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1, 2)").unwrap();
    let err = d.query("SELECT b, COUNT(*) FROM t GROUP BY a");
    assert!(matches!(err, Err(SqlError::Bind(_))), "got {err:?}");
}

#[test]
fn aggregates_ignore_nulls() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    d.execute("INSERT INTO t (a) VALUES (1), (NULL), (3)")
        .unwrap();
    let rs = d
        .query("SELECT COUNT(*), COUNT(a), SUM(a), MIN(a), AVG(a) FROM t")
        .unwrap();
    assert_eq!(
        rs.rows[0],
        vec![
            Value::Int(3),
            Value::Int(2),
            Value::Int(4),
            Value::Int(1),
            Value::Float(2.0)
        ]
    );
}

#[test]
fn merge_with_derived_source_and_params() {
    // The algorithms merge from an inline derived table with parameters —
    // the exact Listing 4(2) shape.
    let mut d = db();
    d.execute("CREATE TABLE tgt (k INT, v INT, PRIMARY KEY(k))")
        .unwrap();
    d.execute("CREATE TABLE src (k INT, v INT)").unwrap();
    d.execute("INSERT INTO tgt VALUES (1, 100), (2, 100)")
        .unwrap();
    d.execute("INSERT INTO src VALUES (1, 50), (3, 70), (4, 999)")
        .unwrap();
    let out = d
        .execute_params(
            "MERGE INTO tgt AS target USING ( \
               SELECT k, v FROM src WHERE v < ? \
             ) AS source (k, v) ON source.k = target.k \
             WHEN MATCHED AND target.v > source.v THEN UPDATE SET v = source.v \
             WHEN NOT MATCHED THEN INSERT (k, v) VALUES (source.k, source.v)",
            &[Value::Int(100)],
        )
        .unwrap();
    assert_eq!(out.rows_affected, 2, "one update (k=1), one insert (k=3)");
    let rs = d.query("SELECT k, v FROM tgt ORDER BY k").unwrap();
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(50)]);
    assert_eq!(rs.rows[2], vec![Value::Int(3), Value::Int(70)]);
}

#[test]
fn merge_without_matched_clause() {
    let mut d = db();
    d.execute("CREATE TABLE tgt (k INT, PRIMARY KEY(k))")
        .unwrap();
    d.execute("CREATE TABLE src (k INT)").unwrap();
    d.execute("INSERT INTO tgt VALUES (1)").unwrap();
    d.execute("INSERT INTO src VALUES (1), (2)").unwrap();
    let out = d
        .execute(
            "MERGE INTO tgt USING src ON src.k = tgt.k \
             WHEN NOT MATCHED THEN INSERT (k) VALUES (src.k)",
        )
        .unwrap();
    assert_eq!(out.rows_affected, 1);
    assert_eq!(d.table_len("tgt").unwrap(), 2);
}

#[test]
fn update_from_derived_table() {
    let mut d = db();
    d.execute("CREATE TABLE t (k INT, v INT, PRIMARY KEY(k))")
        .unwrap();
    d.execute("CREATE TABLE delta (k INT, dv INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
    d.execute("INSERT INTO delta VALUES (1, 5), (1, 7), (2, 1)")
        .unwrap();
    // Aggregate the deltas first, then join-update.
    let out = d
        .execute(
            "UPDATE t SET v = s.total FROM ( \
               SELECT k, SUM(dv) AS total FROM delta GROUP BY k \
             ) AS s WHERE t.k = s.k",
        )
        .unwrap();
    assert_eq!(out.rows_affected, 2);
    let rs = d.query("SELECT v FROM t ORDER BY k").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(12));
    assert_eq!(rs.rows[1][0], Value::Int(1));
}

#[test]
fn top_and_limit_interact() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    for i in 0..10 {
        d.execute_params("INSERT INTO t VALUES (?)", &[Value::Int(i)])
            .unwrap();
    }
    assert_eq!(
        d.query("SELECT TOP 3 a FROM t ORDER BY a").unwrap().len(),
        3
    );
    assert_eq!(
        d.query("SELECT a FROM t ORDER BY a LIMIT 4").unwrap().len(),
        4
    );
    assert_eq!(
        d.query("SELECT TOP 5 a FROM t ORDER BY a LIMIT 2")
            .unwrap()
            .len(),
        2,
        "the tighter bound wins"
    );
}

#[test]
fn order_by_selects_output_alias() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1, 9), (2, 3), (3, 6)")
        .unwrap();
    let rs = d
        .query("SELECT a, a + b AS total FROM t ORDER BY total")
        .unwrap();
    let got: Vec<i64> = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
    assert_eq!(got, vec![5, 9, 10]);
}

#[test]
fn truncate_then_reuse_under_clustered_index() {
    let mut d = db();
    d.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    d.execute("CREATE CLUSTERED INDEX ix ON t(k)").unwrap();
    for i in 0..100 {
        d.execute_params(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Int(i), Value::Int(i)],
        )
        .unwrap();
    }
    d.execute("TRUNCATE TABLE t").unwrap();
    assert_eq!(d.table_len("t").unwrap(), 0);
    d.execute("INSERT INTO t VALUES (7, 70)").unwrap();
    let rs = d
        .query_params("SELECT v FROM t WHERE k = ?", &[Value::Int(7)])
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(70));
}

#[test]
fn self_join_with_aliases() {
    let mut d = db();
    d.execute("CREATE TABLE e (f INT, t INT)").unwrap();
    d.execute("INSERT INTO e VALUES (1, 2), (2, 3), (3, 4)")
        .unwrap();
    // Two-hop pairs.
    let rs = d
        .query("SELECT a.f, b.t FROM e a, e b WHERE a.t = b.f ORDER BY a.f")
        .unwrap();
    assert_eq!(rs.rows.len(), 2);
    assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(3)]);
    assert_eq!(rs.rows[1], vec![Value::Int(2), Value::Int(4)]);
}

#[test]
fn float_arithmetic_and_comparison() {
    let mut d = db();
    d.execute("CREATE TABLE t (x FLOAT)").unwrap();
    d.execute("INSERT INTO t VALUES (1.5), (2.5), (3.5)")
        .unwrap();
    let rs = d.query("SELECT SUM(x) FROM t WHERE x > 1.6").unwrap();
    assert_eq!(rs.rows[0][0], Value::Float(6.0));
    let rs = d.query("SELECT AVG(x) FROM t").unwrap();
    assert_eq!(rs.rows[0][0], Value::Float(2.5));
}

#[test]
fn text_filtering_and_ordering() {
    let mut d = db();
    d.execute("CREATE TABLE t (name TEXT, rank INT)").unwrap();
    d.execute("INSERT INTO t VALUES ('carol', 3), ('alice', 1), ('bob', 2)")
        .unwrap();
    let rs = d.query("SELECT name FROM t ORDER BY name").unwrap();
    let names: Vec<&str> = rs.rows.iter().map(|r| r[0].as_str().unwrap()).collect();
    assert_eq!(names, vec!["alice", "bob", "carol"]);
    let rs = d.query("SELECT rank FROM t WHERE name = 'bob'").unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(2));
}

#[test]
fn insert_select_with_column_mapping_and_defaults() {
    let mut d = db();
    d.execute("CREATE TABLE src (a INT, b INT)").unwrap();
    d.execute("CREATE TABLE dst (x INT, y INT, z INT)").unwrap();
    d.execute("INSERT INTO src VALUES (1, 2)").unwrap();
    d.execute("INSERT INTO dst (z, x) SELECT a, b FROM src")
        .unwrap();
    let rs = d.query("SELECT x, y, z FROM dst").unwrap();
    assert_eq!(rs.rows[0], vec![Value::Int(2), Value::Null, Value::Int(1)]);
}

#[test]
fn delete_via_subquery_filter() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    d.execute("CREATE TABLE kill (a INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1), (2), (3), (4)")
        .unwrap();
    d.execute("INSERT INTO kill VALUES (2), (4)").unwrap();
    let out = d
        .execute("DELETE FROM t WHERE a IN (SELECT a FROM kill)")
        .unwrap();
    assert_eq!(out.rows_affected, 2);
    let rs = d.query("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn statement_error_leaves_engine_usable() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    assert!(d.execute("SELECT nonexistent FROM t").is_err());
    assert!(d.execute("INSERT INTO missing VALUES (1)").is_err());
    // Engine still healthy.
    d.execute("INSERT INTO t VALUES (42)").unwrap();
    assert_eq!(
        d.query("SELECT a FROM t").unwrap().rows[0][0],
        Value::Int(42)
    );
}

#[test]
fn in_value_list_desugars() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1), (2), (3), (4), (5)")
        .unwrap();
    let rs = d
        .query("SELECT a FROM t WHERE a IN (2, 4, 99) ORDER BY a")
        .unwrap();
    let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(got, vec![2, 4]);
    let rs = d
        .query("SELECT a FROM t WHERE a NOT IN (2, 4) ORDER BY a")
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
}

#[test]
fn between_desugars_to_range() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT)").unwrap();
    for i in 0..10 {
        d.execute_params("INSERT INTO t VALUES (?)", &[Value::Int(i)])
            .unwrap();
    }
    let rs = d
        .query("SELECT a FROM t WHERE a BETWEEN 3 AND 6 ORDER BY a")
        .unwrap();
    let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(got, vec![3, 4, 5, 6]);
    let rs = d
        .query("SELECT a FROM t WHERE a NOT BETWEEN 2 AND 7 ORDER BY a")
        .unwrap();
    let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(got, vec![0, 1, 8, 9]);
}

#[test]
fn between_binds_tighter_than_and() {
    let mut d = db();
    d.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    d.execute("INSERT INTO t VALUES (5, 1), (5, 0), (99, 1)")
        .unwrap();
    // `a BETWEEN 1 AND 10 AND b = 1` must parse as (range) AND (b = 1).
    let rs = d
        .query("SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b = 1")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(5));
}

// --- Three-valued [NOT] IN semantics (both executors, both dialects) ---

/// Runs `sql` through the prepared path and the interpreter on twin
/// databases prepared by `setup`, asserting identical result rows, under
/// both dialects.
fn both_paths_both_dialects(setup: &dyn Fn(&mut Database), sql: &str) -> Vec<Vec<Value>> {
    use fempath_sql::Dialect;
    let mut reference: Option<Vec<Vec<Value>>> = None;
    for dialect in [Dialect::DBMS_X, Dialect::POSTGRES] {
        let mut planned = Database::in_memory(256).with_dialect(dialect);
        let mut interp = Database::in_memory(256).with_dialect(dialect);
        setup(&mut planned);
        setup(&mut interp);
        let a = planned
            .execute_params(sql, &[])
            .unwrap()
            .rows
            .map(|r| r.rows)
            .unwrap_or_default();
        let b = interp
            .execute_unplanned(sql, &[])
            .unwrap()
            .rows
            .map(|r| r.rows)
            .unwrap_or_default();
        assert_eq!(
            a, b,
            "prepared vs interpreted diverge on {sql} ({})",
            dialect.name
        );
        match &reference {
            None => reference = Some(a),
            Some(r) => assert_eq!(&a, r, "dialects diverge on {sql}"),
        }
    }
    reference.unwrap()
}

fn null_tables(d: &mut Database) {
    d.execute("CREATE TABLE t (x INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1), (2), (3), (NULL)")
        .unwrap();
    d.execute("CREATE TABLE sub (y INT)").unwrap();
    d.execute("INSERT INTO sub VALUES (2), (NULL)").unwrap();
    d.execute("CREATE TABLE nonull (y INT)").unwrap();
    d.execute("INSERT INTO nonull VALUES (2)").unwrap();
    d.execute("CREATE TABLE empty (y INT)").unwrap();
    d.execute("CREATE TABLE onlynull (y INT)").unwrap();
    d.execute("INSERT INTO onlynull VALUES (NULL)").unwrap();
}

#[test]
fn not_in_subquery_with_null_is_never_true() {
    // x NOT IN (2, NULL): for x=1 the comparison against NULL is UNKNOWN,
    // so no row qualifies — the pre-fix behaviour returned 1 and 3.
    let rows = both_paths_both_dialects(
        &null_tables,
        "SELECT x FROM t WHERE x NOT IN (SELECT y FROM sub) ORDER BY x",
    );
    assert_eq!(rows, Vec::<Vec<Value>>::new());
}

#[test]
fn not_in_subquery_without_null_is_complement() {
    let rows = both_paths_both_dialects(
        &null_tables,
        "SELECT x FROM t WHERE x NOT IN (SELECT y FROM nonull) ORDER BY x",
    );
    assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
}

#[test]
fn in_subquery_with_null_still_matches_present_values() {
    let rows = both_paths_both_dialects(
        &null_tables,
        "SELECT x FROM t WHERE x IN (SELECT y FROM sub) ORDER BY x",
    );
    assert_eq!(rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn not_in_empty_subquery_keeps_all_rows_even_null_probe() {
    // NOT IN over zero rows is TRUE for every probe, including NULL.
    let rows = both_paths_both_dialects(
        &null_tables,
        "SELECT COUNT(*) FROM t WHERE x NOT IN (SELECT y FROM empty)",
    );
    assert_eq!(rows, vec![vec![Value::Int(4)]]);
}

#[test]
fn not_in_all_null_subquery_is_unknown_for_all() {
    let rows = both_paths_both_dialects(
        &null_tables,
        "SELECT x FROM t WHERE x NOT IN (SELECT y FROM onlynull)",
    );
    assert_eq!(rows, Vec::<Vec<Value>>::new());
}

#[test]
fn not_in_null_in_projection_yields_null() {
    // As a value (not a filter), x NOT IN (…, NULL) for a non-matching x
    // is NULL, a match is 0/false.
    let rows = both_paths_both_dialects(
        &null_tables,
        "SELECT x, x NOT IN (SELECT y FROM sub) FROM t WHERE x IS NOT NULL ORDER BY x",
    );
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Int(0)],
            vec![Value::Int(3), Value::Null],
        ]
    );
}

// --- Error-path parity between the streaming executor and interpreter ---

/// Both paths must agree on success/error for `sql`, and on the result.
fn parity(setup: &dyn Fn(&mut Database), sql: &str) -> Result<Vec<Vec<Value>>, String> {
    let mut planned = Database::in_memory(256);
    let mut interp = Database::in_memory(256);
    setup(&mut planned);
    setup(&mut interp);
    let a = planned
        .execute_params(sql, &[])
        .map(|o| o.rows.map(|r| r.rows).unwrap_or_default());
    let b = interp
        .execute_unplanned(sql, &[])
        .map(|o| o.rows.map(|r| r.rows).unwrap_or_default());
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x, y, "row mismatch on {sql}");
            Ok(x)
        }
        (Err(x), Err(y)) => {
            assert_eq!(x.to_string(), y.to_string(), "error mismatch on {sql}");
            Err(x.to_string())
        }
        (a, b) => panic!("outcome mismatch on {sql}: prepared={a:?} interpreted={b:?}"),
    }
}

#[test]
fn zero_row_scalar_subquery_is_null_not_a_panic() {
    let r = parity(&null_tables, "SELECT (SELECT y FROM empty)");
    assert_eq!(r, Ok(vec![vec![Value::Null]]));
    // And NULL propagates through arithmetic instead of erroring.
    let r = parity(&null_tables, "SELECT 10 / (SELECT MAX(y) FROM empty)");
    assert_eq!(r, Ok(vec![vec![Value::Null]]));
}

#[test]
fn division_by_zero_is_a_clean_error_on_both_paths() {
    for sql in [
        "SELECT 10 / (SELECT COUNT(*) FROM empty)",
        "SELECT x, 10 / (x - 2) FROM t WHERE x IS NOT NULL",
        "UPDATE t SET x = 10 / (x - 2)",
        "DELETE FROM t WHERE 10 / (x - 2) > 0",
    ] {
        let r = parity(&null_tables, sql);
        assert!(
            r.is_err() && r.unwrap_err().contains("division by zero"),
            "{sql} must fail with a division-by-zero error on both paths"
        );
    }
}

#[test]
fn top_zero_never_evaluates_excluded_rows() {
    // TOP 0 / LIMIT 0 exclude every row, so row expressions must not run:
    // no division-by-zero error, just an empty result — on both paths.
    for sql in [
        "SELECT TOP 0 1/0 FROM t",
        "SELECT 10 / (x - x) FROM t LIMIT 0",
        // Materialized branches (sort / aggregate) must short-circuit too.
        "SELECT 1/0 FROM t ORDER BY x LIMIT 0",
        "SELECT 10 / (SUM(x) - SUM(x)) FROM t LIMIT 0",
    ] {
        let r = parity(&null_tables, sql);
        assert_eq!(r, Ok(Vec::new()), "{sql} must return empty, not error");
    }
    // The cap excludes rows from projection, not from earlier stages: a
    // division by zero in the ORDER BY key itself still errors.
    let r = parity(&null_tables, "SELECT x FROM t ORDER BY 1/0 LIMIT 0");
    assert!(r.is_err());
    // TOP 1 does evaluate the first row.
    let r = parity(&null_tables, "SELECT TOP 1 1/0 FROM t");
    assert!(r.is_err());
}

#[test]
fn oversized_scalar_subquery_errors_on_both_paths() {
    let r = parity(&null_tables, "SELECT (SELECT x FROM t)");
    assert!(r.unwrap_err().contains("more than one row"));
    let r = parity(&null_tables, "SELECT (SELECT x, x FROM t WHERE x = 1)");
    assert!(r.unwrap_err().contains("exactly one column"));
}
