//! Differential harness: every statement of a representative corpus runs
//! through THREE execution paths — the prepared/physical-plan pipeline on
//! the **vectorized** executor (`execute_params`, the default), the same
//! pipeline on the **row-at-a-time** executor, and the AST interpreter
//! (`execute_unplanned`) — on triplet databases, asserting identical
//! outcomes after every step.
//!
//! The corpus covers the feature matrix of `engine_tests.rs` /
//! `executor_corners.rs`: access paths (heap, secondary, clustered,
//! prefix), join strategies (index nested loop, hash, nested loop,
//! multi-way), derived tables and views, subqueries (scalar, IN, EXISTS),
//! aggregation/HAVING, window functions, ORDER BY/DISTINCT/TOP/LIMIT,
//! all DML forms including `UPDATE … FROM` and MERGE, `?` parameters,
//! NULL semantics, and error behaviour — plus the no-MERGE PostgreSQL
//! dialect.

use fempath_sql::{Database, Dialect, ExecMode, ExecOutcome, Result};
use fempath_storage::Value;

/// Runs one statement through all three paths and asserts identical
/// outcomes (the vectorized executor is compared against both the
/// row-at-a-time executor and the interpreter).
fn step(
    vec_db: &mut Database,
    row_db: &mut Database,
    interp: &mut Database,
    sql: &str,
    params: &[Value],
) {
    assert_eq!(vec_db.exec_mode(), ExecMode::Vectorized);
    assert_eq!(row_db.exec_mode(), ExecMode::RowAtATime);
    let v = vec_db.execute_params(sql, params);
    let r = row_db.execute_params(sql, params);
    let i = interp.execute_unplanned(sql, params);
    assert_same(sql, &v, &i);
    assert_same(sql, &v, &r);
}

fn assert_same(sql: &str, a: &Result<ExecOutcome>, b: &Result<ExecOutcome>) {
    match (a, b) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a.rows_affected, b.rows_affected,
                "rows_affected diverged for: {sql}"
            );
            match (&a.rows, &b.rows) {
                (None, None) => {}
                (Some(ra), Some(rb)) => {
                    assert_eq!(ra.columns, rb.columns, "columns diverged for: {sql}");
                    assert_eq!(ra.rows, rb.rows, "result rows diverged for: {sql}");
                }
                _ => panic!("result-set presence diverged for: {sql}"),
            }
        }
        (Err(_), Err(_)) => {} // both error — same observable behaviour
        (Ok(_), Err(e)) => panic!("first path succeeded, second failed ({e}) for: {sql}"),
        (Err(e), Ok(_)) => panic!("first path failed ({e}), second succeeded for: {sql}"),
    }
}

/// The shared schema + data both databases start from.
const SETUP: &[&str] = &[
    "CREATE TABLE TVisited (nid INT, d2s INT, p2s INT, f INT, PRIMARY KEY(nid))",
    "CREATE TABLE TEdges (fid INT, tid INT, cost INT)",
    "CREATE CLUSTERED INDEX ix_edges ON TEdges(fid)",
    "CREATE TABLE plain (x INT, y INT)",
    "CREATE TABLE other (x INT, z FLOAT)",
    "CREATE TABLE twocol (a INT, b INT)",
    "CREATE INDEX ix_twocol ON twocol(a, b)",
];

fn seed(db: &mut Database) {
    for sql in SETUP {
        db.execute(sql).unwrap();
    }
    for u in 0..30i64 {
        for d in 1..=3i64 {
            db.execute_params(
                "INSERT INTO TEdges VALUES (?, ?, ?)",
                &[Value::Int(u), Value::Int((u + d * 5) % 30), Value::Int(d)],
            )
            .unwrap();
        }
    }
    for u in 0..10i64 {
        db.execute_params(
            "INSERT INTO TVisited VALUES (?, ?, 0, ?)",
            &[
                Value::Int(u),
                Value::Int(u % 4),
                Value::Int(i64::from(u < 5) * 2),
            ],
        )
        .unwrap();
    }
    for i in 0..20i64 {
        db.execute_params(
            "INSERT INTO plain VALUES (?, ?)",
            &[Value::Int(i % 7), Value::Int(i)],
        )
        .unwrap();
        db.execute_params(
            "INSERT INTO other VALUES (?, ?)",
            &[Value::Int(i % 5), Value::Float(i as f64 / 2.0)],
        )
        .unwrap();
        db.execute_params(
            "INSERT INTO twocol VALUES (?, ?)",
            &[Value::Int(i % 3), Value::Int(i % 4)],
        )
        .unwrap();
    }
    db.execute("INSERT INTO plain VALUES (NULL, NULL)").unwrap();
}

/// (sql, params) corpus executed in order on both twins. Later statements
/// see the mutations of earlier ones, so DML differences would compound
/// and surface in the final full-table SELECTs.
fn corpus() -> Vec<(&'static str, Vec<Value>)> {
    let p = |v: &[i64]| v.iter().map(|&i| Value::Int(i)).collect::<Vec<_>>();
    vec![
        // --- access paths ---
        ("SELECT * FROM plain", vec![]),
        ("SELECT nid, d2s FROM TVisited WHERE nid = 3", vec![]),
        ("SELECT nid FROM TVisited WHERE nid = ?", p(&[7])),
        ("SELECT tid, cost FROM TEdges WHERE fid = 4", vec![]),
        ("SELECT a, b FROM twocol WHERE a = 1 AND b = 2", vec![]),
        ("SELECT a, b FROM twocol WHERE a = 2", vec![]),
        ("SELECT x FROM plain WHERE x = NULL", vec![]),
        ("SELECT y FROM plain WHERE x = 3 AND y > 10", vec![]),
        // --- joins ---
        (
            "SELECT q.nid, e.tid, e.cost FROM TVisited q, TEdges e \
             WHERE q.nid = e.fid AND q.f = 2",
            vec![],
        ),
        (
            "SELECT p.y, o.z FROM plain p, other o WHERE p.x = o.x AND p.y < 10",
            vec![],
        ),
        ("SELECT p.x, o.x FROM plain p, other o WHERE p.y + 1 = 20", vec![]),
        (
            "SELECT q.nid, e.tid, e2.tid FROM TVisited q, TEdges e, TEdges e2 \
             WHERE q.nid = e.fid AND e.tid = e2.fid AND q.f = 2 AND e2.cost = 1",
            vec![],
        ),
        // --- derived tables + views ---
        (
            "SELECT s.m FROM (SELECT MAX(y) AS m FROM plain) s",
            vec![],
        ),
        (
            "SELECT d.nid FROM (SELECT nid, d2s FROM TVisited WHERE f = 2) d (nid, dist) \
             WHERE d.dist < 3",
            vec![],
        ),
        ("CREATE VIEW frontier AS SELECT nid, d2s FROM TVisited WHERE f = 2", vec![]),
        ("SELECT * FROM frontier WHERE d2s > 0", vec![]),
        (
            "SELECT f.nid, e.tid FROM frontier f, TEdges e WHERE f.nid = e.fid",
            vec![],
        ),
        // --- subqueries ---
        (
            "SELECT nid FROM TVisited WHERE d2s = (SELECT MIN(d2s) FROM TVisited WHERE f = 2)",
            vec![],
        ),
        (
            "SELECT x, y FROM plain WHERE x IN (SELECT x FROM other WHERE z > 3)",
            vec![],
        ),
        (
            "SELECT x FROM plain WHERE x NOT IN (SELECT x FROM other)",
            vec![],
        ),
        (
            "SELECT 1 WHERE EXISTS (SELECT * FROM TVisited WHERE f = 2)",
            vec![],
        ),
        (
            "SELECT 1 WHERE NOT EXISTS (SELECT * FROM TVisited WHERE d2s > 100)",
            vec![],
        ),
        // --- aggregation / HAVING / ORDER / DISTINCT / TOP ---
        ("SELECT COUNT(*), MIN(y), MAX(y), SUM(y), AVG(y) FROM plain", vec![]),
        ("SELECT MIN(d2s), COUNT(*) FROM TVisited WHERE f = 2 AND d2s < 100", vec![]),
        (
            "SELECT x, COUNT(*) AS c, SUM(y) FROM plain GROUP BY x HAVING COUNT(*) > 2 ORDER BY c DESC, x",
            vec![],
        ),
        ("SELECT fid, MIN(cost) FROM TEdges GROUP BY fid ORDER BY fid", vec![]),
        ("SELECT DISTINCT x FROM plain ORDER BY x", vec![]),
        ("SELECT DISTINCT cost FROM TEdges", vec![]),
        ("SELECT TOP 3 nid, d2s FROM TVisited ORDER BY d2s DESC, nid", vec![]),
        ("SELECT y FROM plain ORDER BY y DESC LIMIT 5", vec![]),
        ("SELECT TOP 1 nid FROM TVisited WHERE d2s + 1 = 2", vec![]),
        ("SELECT x + y AS s FROM plain ORDER BY s", vec![]),
        ("SELECT COUNT(*) FROM plain WHERE 1 = 0", vec![]),
        // --- window functions ---
        (
            "SELECT nid, np, cost FROM ( \
               SELECT e.tid AS nid, e.fid AS np, e.cost + q.d2s AS cost, \
                      ROW_NUMBER() OVER (PARTITION BY e.tid ORDER BY e.cost + q.d2s, e.fid) AS rownum \
               FROM TVisited q, TEdges e WHERE q.nid = e.fid AND q.f = 2 \
             ) tmp WHERE rownum = 1 ORDER BY nid",
            vec![],
        ),
        (
            "SELECT x, y, RANK() OVER (PARTITION BY x ORDER BY y) AS r FROM plain ORDER BY x, y",
            vec![],
        ),
        // --- DML: UPDATE / DELETE / INSERT / MERGE ---
        ("UPDATE TVisited SET f = 1 WHERE f = 2 AND nid < 2", vec![]),
        ("UPDATE TVisited SET d2s = d2s + ? WHERE nid = ?", p(&[10, 3])),
        (
            "UPDATE TVisited SET d2s = e.cost, f = 0 FROM TEdges e \
             WHERE TVisited.nid = e.tid AND e.fid = 0 AND TVisited.d2s > e.cost",
            vec![],
        ),
        ("DELETE FROM plain WHERE y > 17", vec![]),
        ("DELETE FROM plain WHERE x IN (SELECT a FROM twocol WHERE b = 3)", vec![]),
        ("INSERT INTO plain VALUES (100, 200), (101, 201)", vec![]),
        ("INSERT INTO plain (y, x) VALUES (?, ?)", p(&[300, 102])),
        (
            "INSERT INTO plain SELECT a, b FROM twocol WHERE a = 0",
            vec![],
        ),
        (
            "INSERT INTO TVisited (nid, d2s, p2s, f) \
             SELECT tid, 99, fid, 0 FROM TEdges WHERE fid = 20 \
             AND tid NOT IN (SELECT nid FROM TVisited)",
            vec![],
        ),
        (
            "MERGE INTO TVisited AS target USING ( \
               SELECT nid, np, cost FROM ( \
                 SELECT e.tid AS nid, e.fid AS np, e.cost + q.d2s AS cost, \
                        ROW_NUMBER() OVER (PARTITION BY e.tid ORDER BY e.cost + q.d2s) AS rownum \
                 FROM TVisited q, TEdges e WHERE q.nid = e.fid AND q.f = 2 \
               ) tmp WHERE rownum = 1 \
             ) AS source (nid, np, cost) ON source.nid = target.nid \
             WHEN MATCHED AND target.d2s > source.cost THEN \
               UPDATE SET d2s = source.cost, p2s = source.np, f = 0 \
             WHEN NOT MATCHED THEN \
               INSERT (nid, d2s, p2s, f) VALUES (source.nid, source.cost, source.np, 0)",
            vec![],
        ),
        ("TRUNCATE TABLE twocol", vec![]),
        // --- error behaviour (both paths must fail) ---
        ("SELECT nosuch FROM plain", vec![]),
        ("SELECT * FROM nosuchtable", vec![]),
        ("SELECT p.x FROM plain p, other o WHERE x = 1", vec![]), // ambiguous x
        ("SELECT y FROM plain WHERE x = ?", vec![]),              // missing param
        // Missing param must error even when no row would reach the
        // parameterized expression (twocol was truncated above).
        ("SELECT a FROM twocol WHERE a = ?", vec![]),
        ("SELECT 1 / 0", vec![]),
        ("SELECT y / x FROM plain WHERE y = 14", vec![]), // division by zero mid-scan? x=0 rows
        ("UPDATE plain SET nosuch = 1", vec![]),
        // --- final state checks: mutations did not diverge ---
        ("SELECT * FROM plain ORDER BY x, y", vec![]),
        ("SELECT * FROM TVisited ORDER BY nid", vec![]),
        ("SELECT COUNT(*) FROM twocol", vec![]),
    ]
}

fn run_corpus(dialect: Dialect) {
    let mut vec_db = Database::in_memory(512).with_dialect(dialect);
    let mut row_db = Database::in_memory(512).with_dialect(dialect);
    row_db.set_exec_mode(ExecMode::RowAtATime);
    let mut interp = Database::in_memory(512).with_dialect(dialect);
    seed(&mut vec_db);
    seed(&mut row_db);
    seed(&mut interp);
    for (sql, params) in corpus() {
        step(&mut vec_db, &mut row_db, &mut interp, sql, &params);
    }
}

#[test]
fn prepared_matches_interpreter_dbms_x() {
    run_corpus(Dialect::DBMS_X);
}

/// The PostgreSQL dialect rejects MERGE on both paths and agrees on
/// everything else (the finders' no-MERGE UPDATE+INSERT formulation).
#[test]
fn prepared_matches_interpreter_postgres() {
    run_corpus(Dialect::POSTGRES);
}

/// Statements stay equivalent when re-executed from the plan cache (the
/// hot-loop pattern: same SQL string, different parameters, mutating data
/// between executions).
#[test]
fn repeated_prepared_executions_match() {
    let mut prepared = Database::in_memory(512);
    let mut row_db = Database::in_memory(512);
    row_db.set_exec_mode(ExecMode::RowAtATime);
    let mut interp = Database::in_memory(512);
    seed(&mut prepared);
    seed(&mut row_db);
    seed(&mut interp);
    for round in 0..5i64 {
        step(
            &mut prepared,
            &mut row_db,
            &mut interp,
            "UPDATE TVisited SET f = 2 WHERE f = 0 AND d2s = ?",
            &[Value::Int(round % 4)],
        );
        step(
            &mut prepared,
            &mut row_db,
            &mut interp,
            "MERGE INTO TVisited AS target USING ( \
               SELECT nid, np, cost FROM ( \
                 SELECT e.tid AS nid, e.fid AS np, e.cost + q.d2s AS cost, \
                        ROW_NUMBER() OVER (PARTITION BY e.tid ORDER BY e.cost + q.d2s) AS rownum \
                 FROM TVisited q, TEdges e WHERE q.nid = e.fid AND q.f = 2 \
               ) tmp WHERE rownum = 1 \
             ) AS source (nid, np, cost) ON source.nid = target.nid \
             WHEN MATCHED AND target.d2s > source.cost THEN \
               UPDATE SET d2s = source.cost, p2s = source.np, f = 0 \
             WHEN NOT MATCHED THEN \
               INSERT (nid, d2s, p2s, f) VALUES (source.nid, source.cost, source.np, 0)",
            &[],
        );
        step(
            &mut prepared,
            &mut row_db,
            &mut interp,
            "UPDATE TVisited SET f = 1 WHERE f = 2",
            &[],
        );
        step(
            &mut prepared,
            &mut row_db,
            &mut interp,
            "SELECT MIN(d2s), COUNT(*) FROM TVisited WHERE f = 0 AND d2s < 4000000000000000",
            &[],
        );
        step(
            &mut prepared,
            &mut row_db,
            &mut interp,
            "SELECT * FROM TVisited ORDER BY nid",
            &[],
        );
    }
}

/// DDL between executions invalidates cached plans without changing
/// results: the same SELECT agrees with the interpreter before and after
/// an index appears/disappears.
#[test]
fn ddl_between_executions_keeps_equivalence() {
    let mut prepared = Database::in_memory(512);
    let mut row_db = Database::in_memory(512);
    row_db.set_exec_mode(ExecMode::RowAtATime);
    let mut interp = Database::in_memory(512);
    seed(&mut prepared);
    seed(&mut row_db);
    seed(&mut interp);
    let q = "SELECT y FROM plain WHERE x = 3";
    step(&mut prepared, &mut row_db, &mut interp, q, &[]);
    step(
        &mut prepared,
        &mut row_db,
        &mut interp,
        "CREATE INDEX ix_plain_x ON plain(x)",
        &[],
    );
    step(&mut prepared, &mut row_db, &mut interp, q, &[]);
    step(
        &mut prepared,
        &mut row_db,
        &mut interp,
        "DROP INDEX ix_plain_x",
        &[],
    );
    step(&mut prepared, &mut row_db, &mut interp, q, &[]);
}
