//! Plan-cache lifecycle regressions: stale-version eviction after DDL,
//! the LRU size bound under statement churn, and snapshot sessions
//! sharing one compiled plan through the [`SharedPlanCache`].

use fempath_sql::Database;
use fempath_storage::Value;

fn db() -> Database {
    Database::in_memory(256)
}

#[test]
fn ddl_evicts_superseded_version_entries() {
    let mut d = db();
    d.execute("CREATE TABLE t (x INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    // Populate the cache with several distinct statements.
    for i in 0..10 {
        d.query(&format!("SELECT x + {i} FROM t")).unwrap();
    }
    assert!(d.cached_plans() >= 10);
    // DDL bumps the catalog version: every cached plan is now stale and
    // can never be served again. The first prepare afterwards must sweep
    // them all instead of leaking them until the cap.
    d.execute("CREATE TABLE u (y INT)").unwrap();
    d.query("SELECT COUNT(*) FROM u").unwrap();
    assert_eq!(
        d.cached_plans(),
        1,
        "only the current-version plan may remain after the DDL sweep"
    );
}

#[test]
fn cache_stays_bounded_under_distinct_statement_churn() {
    let mut d = db();
    d.execute("CREATE TABLE t (x INT)").unwrap();
    d.execute("INSERT INTO t VALUES (7)").unwrap();
    // Far more distinct statement texts than the cap (512).
    for i in 0..700 {
        d.query(&format!("SELECT x + {i} FROM t")).unwrap();
    }
    assert!(
        d.cached_plans() <= 512,
        "cache exceeded its bound: {}",
        d.cached_plans()
    );
    // Churn evicts LRU entries one at a time, not wholesale: the cache
    // must still be full of useful entries, not freshly cleared.
    assert!(d.cached_plans() >= 500, "cache was dropped wholesale");
}

#[test]
fn repeated_execution_does_not_grow_cache() {
    let mut d = db();
    d.execute("CREATE TABLE t (x INT)").unwrap();
    for i in 0..50 {
        d.execute_params("INSERT INTO t VALUES (?)", &[Value::Int(i)])
            .unwrap();
    }
    // Only the INSERT's plan: the CREATE TABLE plan was compiled against
    // the pre-DDL version and swept as stale.
    assert_eq!(d.cached_plans(), 1);
}

#[test]
fn stale_prepared_handle_replans_transparently() {
    let mut d = db();
    d.execute("CREATE TABLE t (x INT)").unwrap();
    d.execute("INSERT INTO t VALUES (3)").unwrap();
    let stmt = d.prepare("SELECT x FROM t WHERE x = ?").unwrap();
    let v0 = stmt.catalog_version();
    d.execute("CREATE INDEX idx_tx ON t (x)").unwrap();
    // The handle is stale now; execution must replan against the new
    // catalog version and still answer correctly.
    let out = d.execute_prepared(&stmt, &[Value::Int(3)]).unwrap();
    assert_eq!(out.rows.unwrap().rows, vec![vec![Value::Int(3)]]);
    let fresh = d.prepare("SELECT x FROM t WHERE x = ?").unwrap();
    assert!(fresh.catalog_version() > v0);
}

#[test]
fn snapshot_sessions_share_compiled_plans() {
    let mut d = db();
    d.execute("CREATE TABLE t (x INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let snap = d.freeze().unwrap();
    assert_eq!(snap.shared_plan_count(), 0);

    let mut a = snap.session();
    a.query("SELECT COUNT(*) FROM t").unwrap();
    let published = snap.shared_plan_count();
    assert!(published >= 1, "session must publish compiled plans");

    // A sibling session reuses the shared plan instead of recompiling.
    let mut b = snap.session();
    let rs = b.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.scalar_i64(), Some(3));
    assert_eq!(
        snap.shared_plan_count(),
        published,
        "second session must hit the shared cache, not republish"
    );
}

#[test]
fn snapshot_sessions_answer_queries_and_stay_isolated() {
    let mut d = db();
    d.execute("CREATE TABLE t (x INT, y INT, PRIMARY KEY(x))")
        .unwrap();
    for i in 0..20 {
        d.execute_params(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Int(i), Value::Int(i * i)],
        )
        .unwrap();
    }
    let snap = d.freeze().unwrap();
    let mut a = snap.session();
    let mut b = snap.session();
    // Point lookups through the frozen primary-key index.
    assert_eq!(
        a.query("SELECT y FROM t WHERE x = 7").unwrap().scalar_i64(),
        Some(49)
    );
    // Writes stay private to the session.
    a.execute("UPDATE t SET y = -1 WHERE x = 7").unwrap();
    assert_eq!(
        a.query("SELECT y FROM t WHERE x = 7").unwrap().scalar_i64(),
        Some(-1)
    );
    assert_eq!(
        b.query("SELECT y FROM t WHERE x = 7").unwrap().scalar_i64(),
        Some(49),
        "sibling session must not observe the other session's write"
    );
}

#[test]
fn shared_cache_stats_track_publish_once_and_hits() {
    let mut d = db();
    d.execute("CREATE TABLE t (x INT)").unwrap();
    d.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let snap = d.freeze().unwrap();
    let zero = snap.shared_plan_stats();
    assert_eq!((zero.publishes, zero.hits, zero.plans), (0, 0, 0));

    // First session compiles and publishes; the consult that preceded
    // the compile was a miss.
    let mut a = snap.session();
    a.query("SELECT COUNT(*) FROM t").unwrap();
    let after_a = snap.shared_plan_stats();
    assert!(after_a.publishes >= 1);
    assert!(after_a.misses >= 1);
    assert_eq!(after_a.plans as u64, after_a.publishes);

    // A sibling session running the same statement hits the shared
    // cache: no new publish, at least one hit.
    let mut b = snap.session();
    b.query("SELECT COUNT(*) FROM t").unwrap();
    let after_b = snap.shared_plan_stats();
    assert_eq!(
        after_b.publishes, after_a.publishes,
        "publish-once: the second session must reuse, not republish"
    );
    assert!(
        after_b.hits > after_a.hits,
        "sibling consult must count as a hit"
    );

    // A *distinct* statement still publishes exactly once more.
    b.query("SELECT SUM(x) FROM t").unwrap();
    let after_sum = snap.shared_plan_stats();
    assert_eq!(after_sum.publishes, after_a.publishes + 1);
    a.query("SELECT SUM(x) FROM t").unwrap();
    assert_eq!(
        snap.shared_plan_stats().publishes,
        after_sum.publishes,
        "the statement is shared once published, whoever compiled it"
    );
}
