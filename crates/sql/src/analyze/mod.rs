//! `femcheck` layer 1: static semantic analysis of SQL statements
//! (DESIGN.md §15).
//!
//! Given a parsed statement and a catalog snapshot, the analyzer
//!
//! 1. resolves every table and column reference (rules FC001/FC002),
//! 2. type-checks expressions against the interpreter's Int/Float/Text/
//!    NULL rules (FC003/FC004) and validates statement shape — arity,
//!    scalar-subquery columns, probe requirements (FC005/FC006),
//! 3. flags three-valued-logic pitfalls: `NOT IN` over a nullable
//!    subquery column (FC101) and comparisons with an always-NULL operand
//!    (FC102),
//! 4. emits a plan-shape verdict per table access — index point lookup,
//!    index range scan, or full scan, with the join strategy — by running
//!    the *same* access-path selection helpers the executor uses, and
//!    fails statements annotated hot-path that would full-scan an indexed
//!    table (FC201).
//!
//! Nothing here executes: no buffer pool, no rows, no parameters. The
//! analyzer sees exactly what the planner sees at prepare time, which is
//! what makes it usable as a test-time gate over the generated-SQL corpus
//! (`GraphDb::analyze_all_statements` in `fempath-core`).

mod select;
mod typeck;

use crate::ast::{
    CreateIndex, CreateTable, Delete, Expr, Insert, InsertSource, Merge, Stmt, Update,
};
use crate::catalog::Catalog;
use crate::dialect::Dialect;
use crate::error::Result;
use crate::exec::eval::split_conjuncts;
use crate::parser;
use select::{analyze_dml_source, analyze_equi_probe, analyze_select, refine_and_check};
use typeck::{infer, storable, TSchema};

pub use typeck::Ty;

/// Diagnostic severity. Errors describe statements that will misbehave or
/// be rejected; warnings describe constructs that are semantically
/// hazardous (three-valued-logic traps) but may be intentional.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

/// The lint catalog. Every diagnostic carries one of these rules; codes
/// are stable and documented in DESIGN.md §15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// FC001: reference to a table or view the catalog does not contain.
    UnknownTable,
    /// FC002: column reference that does not resolve (unknown or
    /// ambiguous).
    UnknownColumn,
    /// FC003: comparison or IN probe between Text and a numeric type —
    /// ordered by storage type tag, never equal.
    TypeMismatch,
    /// FC004: arithmetic (or SUM/AVG) over a Text operand.
    NonNumericArith,
    /// FC005: malformed statement shape — INSERT arity, scalar subquery
    /// column count, derived-table column list, missing MERGE/UPDATE-FROM
    /// equi-probe.
    StatementShape,
    /// FC006: statement needs a feature the active dialect lacks (MERGE
    /// without `supports_merge`).
    DialectUnsupported,
    /// FC101: `NOT IN (SELECT …)` where the subquery column is nullable —
    /// a single NULL makes the predicate UNKNOWN for every non-match.
    NotInNullable,
    /// FC102: a comparison with an operand that is NULL on every row.
    AlwaysNullPredicate,
    /// FC201: a statement annotated hot-path full-scans a table that has
    /// an index.
    HotPathFullScan,
}

impl Rule {
    /// Stable rule code (`FC…`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::UnknownTable => "FC001",
            Rule::UnknownColumn => "FC002",
            Rule::TypeMismatch => "FC003",
            Rule::NonNumericArith => "FC004",
            Rule::StatementShape => "FC005",
            Rule::DialectUnsupported => "FC006",
            Rule::NotInNullable => "FC101",
            Rule::AlwaysNullPredicate => "FC102",
            Rule::HotPathFullScan => "FC201",
        }
    }

    /// Severity class of the rule.
    pub fn severity(self) -> Severity {
        match self {
            Rule::NotInNullable | Rule::AlwaysNullPredicate => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: Rule,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.rule.severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "[{} {sev}] {}", self.rule.code(), self.message)
    }
}

/// How one table is read by the statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Unique-index point lookup (at most one row per probe).
    IndexEq,
    /// Index prefix/range scan.
    IndexRange,
    /// Every row is read.
    FullScan,
    /// A derived table or view — materialized subquery output.
    Derived,
}

/// How the access participates in the FROM pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// First (or only) relation of a FROM list, or a DML source stream.
    Source,
    /// Inner side of an index nested-loop join.
    IndexNestedLoop,
    /// Build side of a hash join.
    HashJoin,
    /// Nested-loop (cross product + filter) — no usable equi-pair.
    NestedLoop,
    /// MERGE / UPDATE-FROM target probed per source row.
    Probe,
}

/// Plan-shape verdict for one table reference.
#[derive(Debug, Clone)]
pub struct TableAccess {
    /// Base table name (or derived-table binding for `Derived`).
    pub table: String,
    /// Binding the statement uses (alias or table name).
    pub binding: String,
    pub access: AccessKind,
    pub join: JoinKind,
    /// Index columns driving an `IndexEq`/`IndexRange` access.
    pub index_cols: Vec<String>,
    /// Whether the table has any index at all (drives FC201: full-scanning
    /// an unindexed working table is expected, an indexed one is a bug).
    pub has_index: bool,
    /// True when the access happens inside a scalar/IN/EXISTS subquery —
    /// evaluated once per statement, exempt from FC201.
    pub in_subquery: bool,
}

/// Analysis options.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeOptions {
    /// The statement is annotated *hot-path*: it runs per search iteration
    /// (or per result probe) and must not full-scan an indexed table.
    pub hot_path: bool,
}

/// Everything the analyzer found for one statement.
#[derive(Debug, Clone)]
pub struct Report {
    /// The analyzed SQL text.
    pub sql: String,
    pub diagnostics: Vec<Diagnostic>,
    pub accesses: Vec<TableAccess>,
}

impl Report {
    /// True when no diagnostics (errors *or* warnings) were produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.rule.severity() == Severity::Error)
            .count()
    }

    /// True when some diagnostic carries `rule`.
    pub fn has_rule(&self, rule: Rule) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// One line per diagnostic, prefixed with the offending SQL on the
    /// first line — the shape test failures print.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.sql);
        for d in &self.diagnostics {
            out.push_str("\n  ");
            out.push_str(&d.to_string());
        }
        out
    }
}

/// Shared analysis state.
pub(crate) struct Ctx<'a> {
    pub(crate) catalog: &'a Catalog,
    pub(crate) dialect: Dialect,
    pub(crate) diags: Vec<Diagnostic>,
    pub(crate) accesses: Vec<TableAccess>,
    /// Depth of scalar/IN/EXISTS subquery nesting (FROM-derived tables do
    /// *not* count — they are the statement's main pipeline).
    pub(crate) subquery_depth: u32,
}

impl Ctx<'_> {
    pub(crate) fn diag(&mut self, rule: Rule, message: String) {
        self.diags.push(Diagnostic { rule, message });
    }
}

/// Parses and analyzes one statement against `catalog` under `dialect`.
/// `Err` only on parse failure; semantic problems come back as
/// [`Report::diagnostics`].
pub fn analyze_sql(
    catalog: &Catalog,
    dialect: Dialect,
    sql: &str,
    opts: &AnalyzeOptions,
) -> Result<Report> {
    let stmt = parser::parse_statement(sql)?;
    Ok(analyze_stmt(catalog, dialect, &stmt, sql, opts))
}

/// Analyzes an already-parsed statement.
pub fn analyze_stmt(
    catalog: &Catalog,
    dialect: Dialect,
    stmt: &Stmt,
    sql: &str,
    opts: &AnalyzeOptions,
) -> Report {
    let mut cx = Ctx {
        catalog,
        dialect,
        diags: Vec::new(),
        accesses: Vec::new(),
        subquery_depth: 0,
    };
    dispatch(&mut cx, stmt);
    if opts.hot_path {
        for a in &cx.accesses {
            if !a.in_subquery && a.access == AccessKind::FullScan && a.has_index {
                cx.diags.push(Diagnostic {
                    rule: Rule::HotPathFullScan,
                    message: format!(
                        "hot-path statement full-scans indexed table {} (as {})",
                        a.table, a.binding
                    ),
                });
            }
        }
    }
    Report {
        sql: sql.to_string(),
        diagnostics: cx.diags,
        accesses: cx.accesses,
    }
}

fn dispatch(cx: &mut Ctx<'_>, stmt: &Stmt) {
    match stmt {
        Stmt::Select(sel) => {
            analyze_select(cx, sel);
        }
        Stmt::Insert(ins) => analyze_insert(cx, ins),
        Stmt::Update(upd) => analyze_update(cx, upd),
        Stmt::Delete(del) => analyze_delete(cx, del),
        Stmt::Merge(m) => analyze_merge(cx, m),
        Stmt::Truncate { table } => {
            if !cx.catalog.has_table(table) {
                cx.diag(Rule::UnknownTable, format!("no such table {table}"));
            }
        }
        Stmt::CreateTable(ct) => analyze_create_table(cx, ct),
        Stmt::CreateIndex(ci) => analyze_create_index(cx, ci),
        Stmt::CreateView { query, .. } => {
            analyze_select(cx, query);
        }
        Stmt::DropTable { name, if_exists } => {
            if !if_exists && !cx.catalog.has_table(name) && cx.catalog.view(name).is_none() {
                cx.diag(Rule::UnknownTable, format!("no such table {name}"));
            }
        }
        // Index/view names live in catalog maps the analyzer does not
        // model; dropping them is not statically checked.
        Stmt::DropIndex { .. } | Stmt::DropView { .. } => {}
        Stmt::Explain(inner) => dispatch(cx, inner),
    }
}

fn analyze_create_table(cx: &mut Ctx<'_>, ct: &CreateTable) {
    for (i, a) in ct.columns.iter().enumerate() {
        if ct.columns[i + 1..]
            .iter()
            .any(|b| b.name.eq_ignore_ascii_case(&a.name))
        {
            cx.diag(
                Rule::StatementShape,
                format!("duplicate column {} in CREATE TABLE {}", a.name, ct.name),
            );
        }
    }
    if let Some(pk) = &ct.primary_key {
        for col in pk {
            if !ct.columns.iter().any(|c| c.name.eq_ignore_ascii_case(col)) {
                cx.diag(
                    Rule::UnknownColumn,
                    format!("PRIMARY KEY column {col} is not a column of {}", ct.name),
                );
            }
        }
    }
}

fn analyze_create_index(cx: &mut Ctx<'_>, ci: &CreateIndex) {
    let Ok(table) = cx.catalog.table(&ci.table) else {
        cx.diag(Rule::UnknownTable, format!("no such table {}", ci.table));
        return;
    };
    for col in &ci.columns {
        if table.schema.col_index(col).is_none() {
            cx.diag(
                Rule::UnknownColumn,
                format!("unknown column {col} in index on {}", ci.table),
            );
        }
    }
}

fn analyze_insert(cx: &mut Ctx<'_>, ins: &Insert) {
    let Ok(table) = cx.catalog.table(&ins.table) else {
        cx.diag(Rule::UnknownTable, format!("no such table {}", ins.table));
        return;
    };
    // Target column positions: the explicit list, or all columns.
    let targets: Vec<usize> = match &ins.columns {
        Some(cols) => {
            let mut out = Vec::with_capacity(cols.len());
            for c in cols {
                match table.schema.col_index(c) {
                    Some(i) => out.push(i),
                    None => {
                        cx.diag(
                            Rule::UnknownColumn,
                            format!("unknown column {c} in INSERT INTO {}", ins.table),
                        );
                        return;
                    }
                }
            }
            out
        }
        None => (0..table.schema.columns.len()).collect(),
    };
    let dtypes: Vec<_> = targets
        .iter()
        .map(|&i| table.schema.columns[i].clone())
        .collect();
    // Borrow of `table` ends here; the checks below re-derive nothing
    // from the catalog.
    match &ins.source {
        InsertSource::Values(rows) => {
            let empty = TSchema::default();
            for row in rows {
                if row.len() != dtypes.len() {
                    cx.diag(
                        Rule::StatementShape,
                        format!(
                            "INSERT INTO {} expects {} values, got {}",
                            ins.table,
                            dtypes.len(),
                            row.len()
                        ),
                    );
                    continue;
                }
                for (v, col) in row.iter().zip(&dtypes) {
                    let t = infer(cx, &empty, v, false);
                    if !storable(col.dtype, t.ty) {
                        cx.diag(
                            Rule::TypeMismatch,
                            format!(
                                "column {}.{} expects {}, got {}",
                                ins.table, col.name, col.dtype, t.ty
                            ),
                        );
                    }
                }
            }
        }
        InsertSource::Query(sel) => {
            let out = select::select_output(cx, sel);
            if out.open {
                return;
            }
            if out.cols.len() != dtypes.len() {
                cx.diag(
                    Rule::StatementShape,
                    format!(
                        "INSERT INTO {} expects {} columns, SELECT returns {}",
                        ins.table,
                        dtypes.len(),
                        out.cols.len()
                    ),
                );
                return;
            }
            for (c, col) in out.cols.iter().zip(&dtypes) {
                if !storable(col.dtype, c.ty) {
                    cx.diag(
                        Rule::TypeMismatch,
                        format!(
                            "column {}.{} expects {}, got {}",
                            ins.table, col.name, col.dtype, c.ty
                        ),
                    );
                }
            }
        }
    }
}

fn analyze_update(cx: &mut Ctx<'_>, upd: &Update) {
    let Ok(table) = cx.catalog.table(&upd.table) else {
        cx.diag(Rule::UnknownTable, format!("no such table {}", upd.table));
        return;
    };
    let binding = upd.alias.as_deref().unwrap_or(&upd.table).to_string();
    let target = TSchema::from_table(&binding, table);
    let conjuncts: Vec<Expr> = upd.filter.as_ref().map(split_conjuncts).unwrap_or_default();
    let assign_cols: Vec<(String, Option<fempath_storage::DataType>)> = upd
        .assignments
        .iter()
        .map(|(name, _)| {
            let dtype = table
                .schema
                .col_index(name)
                .map(|i| table.schema.columns[i].dtype);
            (name.clone(), dtype)
        })
        .collect();
    let has_index = select::has_any_index(table);
    let table_name = table.schema.name.clone();

    let combined = match &upd.from {
        None => {
            // Plain UPDATE: the executor always scans the target.
            cx.accesses.push(TableAccess {
                table: table_name.clone(),
                binding: binding.clone(),
                access: AccessKind::FullScan,
                join: JoinKind::Source,
                index_cols: Vec::new(),
                has_index,
                in_subquery: false,
            });
            target
        }
        Some(tref) => {
            let source = analyze_dml_source(cx, tref);
            let Ok(table) = cx.catalog.table(&upd.table) else {
                return;
            };
            analyze_equi_probe(cx, table, &binding, &target, &source, &conjuncts);
            target.concat(&source)
        }
    };

    let ts = refine_and_check(cx, combined, &conjuncts);
    for ((name, dtype), (_, value)) in assign_cols.iter().zip(&upd.assignments) {
        let Some(dtype) = dtype else {
            cx.diag(
                Rule::UnknownColumn,
                format!("unknown column {name} in UPDATE {}", upd.table),
            );
            continue;
        };
        let t = infer(cx, &ts, value, false);
        if !storable(*dtype, t.ty) {
            cx.diag(
                Rule::TypeMismatch,
                format!("column {}.{name} expects {dtype}, got {}", upd.table, t.ty),
            );
        }
    }
}

fn analyze_delete(cx: &mut Ctx<'_>, del: &Delete) {
    let Ok(table) = cx.catalog.table(&del.table) else {
        cx.diag(Rule::UnknownTable, format!("no such table {}", del.table));
        return;
    };
    let target = TSchema::from_table(&del.table, table);
    // DELETE always scans.
    cx.accesses.push(TableAccess {
        table: table.schema.name.clone(),
        binding: del.table.clone(),
        access: AccessKind::FullScan,
        join: JoinKind::Source,
        index_cols: Vec::new(),
        has_index: select::has_any_index(table),
        in_subquery: false,
    });
    let conjuncts: Vec<Expr> = del.filter.as_ref().map(split_conjuncts).unwrap_or_default();
    refine_and_check(cx, target, &conjuncts);
}

fn analyze_merge(cx: &mut Ctx<'_>, m: &Merge) {
    if !cx.dialect.supports_merge {
        cx.diag(
            Rule::DialectUnsupported,
            format!("MERGE is not supported by dialect {}", cx.dialect.name),
        );
    }
    let Ok(table) = cx.catalog.table(&m.target) else {
        cx.diag(Rule::UnknownTable, format!("no such table {}", m.target));
        return;
    };
    let binding = m.target_alias.as_deref().unwrap_or(&m.target).to_string();
    let target = TSchema::from_table(&binding, table);
    let target_cols = table.schema.columns.clone();
    let target_name = table.schema.name.clone();

    let source = analyze_dml_source(cx, &m.source);
    let conjuncts = split_conjuncts(&m.on);
    if let Ok(table) = cx.catalog.table(&m.target) {
        analyze_equi_probe(cx, table, &binding, &target, &source, &conjuncts);
    }

    let combined = target.concat(&source);
    let ts = refine_and_check(cx, combined, &conjuncts);

    if let Some(matched) = &m.when_matched {
        if let Some(cond) = &matched.condition {
            infer(cx, &ts, cond, false);
        }
        for (name, value) in &matched.assignments {
            let Some(i) = target_cols
                .iter()
                .position(|c| c.name.eq_ignore_ascii_case(name))
            else {
                cx.diag(
                    Rule::UnknownColumn,
                    format!("unknown column {name} in MERGE UPDATE of {target_name}"),
                );
                continue;
            };
            let t = infer(cx, &ts, value, false);
            if !storable(target_cols[i].dtype, t.ty) {
                cx.diag(
                    Rule::TypeMismatch,
                    format!(
                        "column {target_name}.{name} expects {}, got {}",
                        target_cols[i].dtype, t.ty
                    ),
                );
            }
        }
    }
    if let Some(not_matched) = &m.when_not_matched {
        if not_matched.values.len() != not_matched.columns.len() {
            cx.diag(
                Rule::StatementShape,
                format!(
                    "MERGE INSERT lists {} columns but {} values",
                    not_matched.columns.len(),
                    not_matched.values.len()
                ),
            );
        }
        for (name, value) in not_matched.columns.iter().zip(&not_matched.values) {
            let Some(i) = target_cols
                .iter()
                .position(|c| c.name.eq_ignore_ascii_case(name))
            else {
                cx.diag(
                    Rule::UnknownColumn,
                    format!("unknown column {name} in MERGE INSERT of {target_name}"),
                );
                continue;
            };
            // NOT MATCHED values are evaluated against the source row; the
            // combined schema is a superset, so no false unknown-column
            // findings.
            let t = infer(cx, &ts, value, false);
            if !storable(target_cols[i].dtype, t.ty) {
                cx.diag(
                    Rule::TypeMismatch,
                    format!(
                        "column {target_name}.{name} expects {}, got {}",
                        target_cols[i].dtype, t.ty
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Database;

    fn db() -> Database {
        let mut db = Database::in_memory(64);
        db.execute("CREATE TABLE TEdges (fid INT, tid INT, cost INT)")
            .unwrap();
        db.execute("CREATE CLUSTERED INDEX idx_tedges ON TEdges(fid)")
            .unwrap();
        db.execute("CREATE TABLE TVisited (nid INT, d2s INT, p2s INT, f INT)")
            .unwrap();
        db.execute("CREATE UNIQUE INDEX idx_tvisited_nid ON TVisited(nid)")
            .unwrap();
        db.execute("CREATE TABLE TExp (nid INT, p2s INT, cost INT)")
            .unwrap();
        db
    }

    fn rules(r: &Report) -> Vec<Rule> {
        r.diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_statements_stay_clean() {
        let db = db();
        for sql in [
            "SELECT nid, d2s FROM TVisited WHERE nid = ?",
            "SELECT COUNT(*), MIN(d2s) FROM TVisited WHERE f = 0",
            "SELECT e.tid, q.d2s + e.cost FROM TVisited q, TEdges e WHERE q.nid = e.fid AND q.f = 0",
            "DELETE FROM TExp WHERE cost > ?",
            "INSERT INTO TExp (nid, p2s, cost) VALUES (?, ?, ?)",
            "UPDATE TVisited SET f = 1 WHERE nid = ?",
            "SELECT v.nid FROM (SELECT nid FROM TVisited WHERE f = 0) v",
        ] {
            let r = db.analyze(sql).unwrap();
            assert!(r.is_clean(), "unexpected diagnostics:\n{}", r.render());
        }
    }

    #[test]
    fn fc001_unknown_table() {
        let db = db();
        let r = db.analyze("SELECT x FROM Nope").unwrap();
        assert!(r.has_rule(Rule::UnknownTable), "{}", r.render());
        // The open schema suppresses cascading unknown-column noise.
        assert!(!r.has_rule(Rule::UnknownColumn), "{}", r.render());
        assert!(db
            .analyze("TRUNCATE TABLE Nope")
            .unwrap()
            .has_rule(Rule::UnknownTable));
        assert!(db
            .analyze("DROP TABLE Nope")
            .unwrap()
            .has_rule(Rule::UnknownTable));
        assert!(db.analyze("DROP TABLE IF EXISTS Nope").unwrap().is_clean());
    }

    #[test]
    fn fc002_unknown_column() {
        let db = db();
        let r = db.analyze("SELECT ghost FROM TVisited").unwrap();
        assert_eq!(rules(&r), vec![Rule::UnknownColumn], "{}", r.render());
        let r = db
            .analyze("UPDATE TVisited SET ghost = 1 WHERE nid = ?")
            .unwrap();
        assert!(r.has_rule(Rule::UnknownColumn), "{}", r.render());
    }

    #[test]
    fn fc003_type_mismatch() {
        let mut db = db();
        db.execute("CREATE TABLE Names (nid INT, label TEXT)")
            .unwrap();
        let r = db.analyze("SELECT nid FROM Names WHERE label = 3").unwrap();
        assert!(r.has_rule(Rule::TypeMismatch), "{}", r.render());
        let r = db
            .analyze("SELECT nid FROM Names WHERE label IN (SELECT nid FROM TVisited)")
            .unwrap();
        assert!(r.has_rule(Rule::TypeMismatch), "{}", r.render());
        let r = db
            .analyze("INSERT INTO Names (nid, label) VALUES (1, 2)")
            .unwrap();
        assert!(r.has_rule(Rule::TypeMismatch), "{}", r.render());
    }

    #[test]
    fn fc004_non_numeric_arith() {
        let mut db = db();
        db.execute("CREATE TABLE Names (nid INT, label TEXT)")
            .unwrap();
        let r = db.analyze("SELECT label + 1 FROM Names").unwrap();
        assert!(r.has_rule(Rule::NonNumericArith), "{}", r.render());
        let r = db.analyze("SELECT SUM(label) FROM Names").unwrap();
        assert!(r.has_rule(Rule::NonNumericArith), "{}", r.render());
    }

    #[test]
    fn fc005_statement_shape() {
        let db = db();
        let r = db
            .analyze("INSERT INTO TExp (nid, p2s, cost) VALUES (1, 2)")
            .unwrap();
        assert!(r.has_rule(Rule::StatementShape), "{}", r.render());
        let r = db
            .analyze("SELECT nid FROM TVisited WHERE d2s = (SELECT nid, d2s FROM TVisited)")
            .unwrap();
        assert!(r.has_rule(Rule::StatementShape), "{}", r.render());
        // UPDATE-FROM without a target equality: the planner rejects it.
        let r = db
            .analyze("UPDATE TVisited SET f = 1 FROM TExp WHERE TExp.cost > 0")
            .unwrap();
        assert!(r.has_rule(Rule::StatementShape), "{}", r.render());
    }

    #[test]
    fn fc006_dialect_unsupported() {
        let db = db();
        let merge = "MERGE INTO TVisited USING TExp ON TVisited.nid = TExp.nid \
                     WHEN MATCHED THEN UPDATE SET d2s = TExp.cost";
        let r = analyze_sql(
            db.catalog(),
            Dialect::POSTGRES,
            merge,
            &AnalyzeOptions::default(),
        )
        .unwrap();
        assert!(r.has_rule(Rule::DialectUnsupported), "{}", r.render());
        let r = analyze_sql(
            db.catalog(),
            Dialect::DBMS_X,
            merge,
            &AnalyzeOptions::default(),
        )
        .unwrap();
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn fc101_not_in_nullable() {
        let db = db();
        let bad = "SELECT nid FROM TExp WHERE nid NOT IN (SELECT nid FROM TVisited)";
        let r = db.analyze(bad).unwrap();
        assert_eq!(rules(&r), vec![Rule::NotInNullable], "{}", r.render());
        // The IS NOT NULL guard makes the subquery column non-nullable.
        let good = "SELECT nid FROM TExp WHERE nid NOT IN \
                    (SELECT nid FROM TVisited WHERE nid IS NOT NULL)";
        let r = db.analyze(good).unwrap();
        assert!(r.is_clean(), "{}", r.render());
        // Positive IN over a nullable column is fine.
        let r = db
            .analyze("SELECT nid FROM TExp WHERE nid IN (SELECT nid FROM TVisited)")
            .unwrap();
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn fc101_strictness_transfers_through_predicates() {
        let db = db();
        // `nid = ?` null-rejects nid, so the NOT IN sees non-nullable output.
        let guarded = "SELECT nid FROM TExp WHERE nid NOT IN \
                       (SELECT nid FROM TVisited WHERE nid = 4)";
        let r = db.analyze(guarded).unwrap();
        assert!(r.is_clean(), "{}", r.render());
        // An OR predicate rejects nothing: nid stays nullable.
        let unguarded = "SELECT nid FROM TExp WHERE nid NOT IN \
                         (SELECT nid FROM TVisited WHERE nid = 4 OR f = 1)";
        let r = db.analyze(unguarded).unwrap();
        assert!(r.has_rule(Rule::NotInNullable), "{}", r.render());
    }

    #[test]
    fn fc102_always_null_predicate() {
        let db = db();
        let r = db
            .analyze("SELECT nid FROM TVisited WHERE d2s = NULL")
            .unwrap();
        assert!(r.has_rule(Rule::AlwaysNullPredicate), "{}", r.render());
        let r = db
            .analyze("SELECT nid FROM TVisited WHERE d2s IS NULL")
            .unwrap();
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn fc201_hot_path_full_scan() {
        let db = db();
        // Point lookup: fine hot.
        let r = db
            .analyze_hot_path("SELECT d2s FROM TVisited WHERE nid = ?")
            .unwrap();
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.accesses[0].access, AccessKind::IndexEq);
        // Full scan of an indexed table: hot error, cold fine.
        let scan = "SELECT nid FROM TVisited WHERE f = 0";
        assert!(db.analyze(scan).unwrap().is_clean());
        let r = db.analyze_hot_path(scan).unwrap();
        assert!(r.has_rule(Rule::HotPathFullScan), "{}", r.render());
        // Full scan of an unindexed table: fine even hot.
        let r = db
            .analyze_hot_path("SELECT nid FROM TExp WHERE cost < ?")
            .unwrap();
        assert!(r.is_clean(), "{}", r.render());
        // Scalar subquery interiors are exempt (evaluated once).
        let r = db
            .analyze_hot_path("SELECT nid FROM TExp WHERE cost = (SELECT MIN(d2s) FROM TVisited)")
            .unwrap();
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn plan_shape_verdicts() {
        let db = db();
        // Index nested-loop join through the clustered edge index.
        let r = db
            .analyze("SELECT e.tid FROM TVisited q, TEdges e WHERE q.nid = e.fid AND q.f = 0")
            .unwrap();
        assert!(r.is_clean(), "{}", r.render());
        let e = r
            .accesses
            .iter()
            .find(|a| a.table.eq_ignore_ascii_case("TEdges"))
            .unwrap();
        assert_eq!(e.join, JoinKind::IndexNestedLoop);
        assert_eq!(e.access, AccessKind::IndexRange);
        assert_eq!(e.index_cols, ["fid"]);
        // MERGE probes the unique visited index.
        let r = db
            .analyze(
                "MERGE INTO TVisited USING TExp ON TVisited.nid = TExp.nid \
                 WHEN MATCHED THEN UPDATE SET d2s = TExp.cost",
            )
            .unwrap();
        assert!(r.is_clean(), "{}", r.render());
        let t = r
            .accesses
            .iter()
            .find(|a| a.join == JoinKind::Probe)
            .unwrap();
        assert_eq!(t.access, AccessKind::IndexEq);
        assert_eq!(t.index_cols, ["nid"]);
    }

    #[test]
    fn parse_error_is_err() {
        let db = db();
        assert!(db.analyze("SELEC nid FROM TVisited").is_err());
    }
}
