//! Expression type inference and nullability analysis for `femcheck`.
//!
//! The lattice mirrors the interpreter exactly (`exec::eval`): values are
//! Int, Float, Text or NULL; `?` parameters and unresolvable references
//! type as `Any` (top) so one unknown does not cascade. Nullability is
//! inferred from the catalog (every column is nullable — the engine has no
//! NOT NULL constraint) and then *refined* by null-rejecting WHERE
//! conjuncts: a row with `x` NULL cannot survive a strict predicate on
//! `x`, so downstream expressions may treat `x` as non-null. This is what
//! lets `SELECT nid FROM T WHERE nid IS NOT NULL` feed a `NOT IN` without
//! tripping rule FC101.

use super::{Ctx, Rule};
use crate::ast::{AggFunc, BinaryOp, Expr, UnaryOp};
use crate::catalog::Table;
use crate::exec::eval::{Schema, SchemaCol};
use fempath_storage::{DataType, Value};
use std::collections::HashSet;

/// Static type of an expression, mirroring the interpreter's value kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    Int,
    Float,
    Text,
    /// The literal NULL (distinct from *nullable*: this is "always NULL").
    Null,
    /// Unknown — `?` parameters and unresolved references. Compatible with
    /// everything, so one unknown does not cascade into spurious errors.
    Any,
}

impl Ty {
    /// True when a value of this type can participate in arithmetic.
    fn arith_ok(self) -> bool {
        !matches!(self, Ty::Text)
    }

    /// Result type of `self op other` arithmetic (assuming both allowed).
    fn arith_join(self, other: Ty) -> Ty {
        match (self, other) {
            (Ty::Null, _) | (_, Ty::Null) => Ty::Null,
            (Ty::Any, _) | (_, Ty::Any) => Ty::Any,
            (Ty::Int, Ty::Int) => Ty::Int,
            _ => Ty::Float,
        }
    }

    /// True when comparing these two types is a definite kind error:
    /// Text against a number orders by the storage type tag, which is
    /// never what generated SQL means.
    pub(crate) fn cmp_mismatch(self, other: Ty) -> bool {
        matches!(
            (self, other),
            (Ty::Text, Ty::Int | Ty::Float) | (Ty::Int | Ty::Float, Ty::Text)
        )
    }
}

impl std::fmt::Display for Ty {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Ty::Int => "Int",
            Ty::Float => "Float",
            Ty::Text => "Text",
            Ty::Null => "Null",
            Ty::Any => "Any",
        };
        f.write_str(s)
    }
}

/// Per-column static type information.
#[derive(Debug, Clone, Copy)]
pub struct ColTy {
    pub ty: Ty,
    pub nullable: bool,
}

/// A typed schema: the execution [`Schema`] (name resolution) plus one
/// [`ColTy`] per column.
#[derive(Debug, Clone, Default)]
pub(crate) struct TSchema {
    pub(crate) schema: Schema,
    pub(crate) cols: Vec<ColTy>,
    /// True when this schema came from an unresolvable table: column
    /// lookups silently type as `Any` instead of cascading FC002.
    pub(crate) open: bool,
}

impl TSchema {
    /// Typed schema of a base table under `binding`.
    pub(crate) fn from_table(binding: &str, table: &Table) -> TSchema {
        TSchema {
            schema: Schema::from_table(binding, &table.schema),
            cols: table
                .schema
                .columns
                .iter()
                .map(|c| ColTy {
                    ty: dtype_ty(c.dtype),
                    nullable: true,
                })
                .collect(),
            open: false,
        }
    }

    /// An "anything goes" schema standing in for an unresolvable source.
    pub(crate) fn open() -> TSchema {
        TSchema {
            open: true,
            ..TSchema::default()
        }
    }

    /// Concatenation (joins). Openness is contagious.
    pub(crate) fn concat(&self, other: &TSchema) -> TSchema {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().copied());
        TSchema {
            schema: self.schema.concat(&other.schema),
            cols,
            open: self.open || other.open,
        }
    }

    /// Re-binds every column under `alias` (derived tables and views).
    pub(crate) fn rebind(mut self, alias: &str) -> TSchema {
        let alias = alias.to_ascii_lowercase();
        for c in &mut self.schema.cols {
            c.binding = Some(alias.clone());
        }
        self
    }

    /// Appends an output column.
    pub(crate) fn push(&mut self, name: String, col: ColTy) {
        self.schema.cols.push(SchemaCol {
            binding: None,
            name,
        });
        self.cols.push(col);
    }

    /// Resolves a column reference, reporting FC002 on failure (unless the
    /// schema is open, where unknowns are expected).
    pub(crate) fn resolve(
        &self,
        cx: &mut Ctx<'_>,
        table: Option<&str>,
        name: &str,
    ) -> Option<usize> {
        match self.schema.resolve(table, name) {
            Ok(i) => Some(i),
            Err(e) => {
                if !self.open {
                    cx.diag(Rule::UnknownColumn, e.to_string());
                }
                None
            }
        }
    }
}

/// Maps a declared column type to the static lattice.
pub(crate) fn dtype_ty(dtype: DataType) -> Ty {
    match dtype {
        DataType::Int => Ty::Int,
        DataType::Float => Ty::Float,
        DataType::Text => Ty::Text,
    }
}

/// True when a value of static type `ty` may be stored into a column
/// declared `dtype` — the static shadow of `Table::coerce_row` (NULL goes
/// anywhere, Int ↔ Float coerce, Text only into Text).
pub(crate) fn storable(dtype: DataType, ty: Ty) -> bool {
    matches!(
        (dtype, ty),
        (_, Ty::Null | Ty::Any)
            | (DataType::Int | DataType::Float, Ty::Int | Ty::Float)
            | (DataType::Text, Ty::Text)
    )
}

/// Inferred facts about one expression.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExprTy {
    pub(crate) ty: Ty,
    pub(crate) nullable: bool,
    /// The expression is NULL on *every* row (e.g. `NULL + 1`): a
    /// comparison built on it can never be true (FC102).
    pub(crate) definitely_null: bool,
}

impl ExprTy {
    fn new(ty: Ty, nullable: bool) -> ExprTy {
        ExprTy {
            ty,
            nullable,
            definitely_null: false,
        }
    }

    fn int_bool(nullable: bool) -> ExprTy {
        ExprTy::new(Ty::Int, nullable)
    }
}

/// Type-checks `expr` against `ts`, emitting diagnostics into `cx`.
///
/// `grouped` is true inside a `GROUP BY` query: per-group aggregates run
/// over non-empty groups, so `MIN/MAX/SUM` are only as nullable as their
/// argument; without grouping the whole input may be empty and every
/// aggregate except `COUNT` can yield NULL.
pub(crate) fn infer(cx: &mut Ctx<'_>, ts: &TSchema, expr: &Expr, grouped: bool) -> ExprTy {
    match expr {
        Expr::Literal(v) => match v {
            Value::Null => ExprTy {
                ty: Ty::Null,
                nullable: true,
                definitely_null: true,
            },
            Value::Int(_) => ExprTy::new(Ty::Int, false),
            Value::Float(_) => ExprTy::new(Ty::Float, false),
            Value::Text(_) => ExprTy::new(Ty::Text, false),
        },
        // Parameters are assumed non-NULL: every `?` in the generated
        // corpus carries a node id, distance or bound. A NULL parameter
        // would be caught at runtime, not here.
        Expr::Param(_) => ExprTy::new(Ty::Any, false),
        Expr::Column { table, name } => match ts.resolve(cx, table.as_deref(), name) {
            Some(i) => ExprTy::new(ts.cols[i].ty, ts.cols[i].nullable),
            None => ExprTy::new(Ty::Any, true),
        },
        Expr::Unary { op, expr } => {
            let e = infer(cx, ts, expr, grouped);
            match op {
                UnaryOp::Neg => {
                    if e.ty == Ty::Text {
                        cx.diag(Rule::NonNumericArith, "cannot negate text".into());
                    }
                    ExprTy {
                        ty: if e.ty == Ty::Text { Ty::Any } else { e.ty },
                        ..e
                    }
                }
                // NOT NULL is NULL; NOT of anything else is 0/1.
                UnaryOp::Not => ExprTy { ty: Ty::Int, ..e },
            }
        }
        Expr::Binary { left, op, right } => {
            let l = infer(cx, ts, left, grouped);
            let r = infer(cx, ts, right, grouped);
            match op {
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                    if !l.ty.arith_ok() || !r.ty.arith_ok() {
                        cx.diag(
                            Rule::NonNumericArith,
                            format!(
                                "arithmetic requires numeric operands, got {} and {}",
                                l.ty, r.ty
                            ),
                        );
                    }
                    ExprTy {
                        ty: l.ty.arith_join(r.ty),
                        nullable: l.nullable || r.nullable,
                        definitely_null: l.definitely_null || r.definitely_null,
                    }
                }
                BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq => {
                    if l.ty.cmp_mismatch(r.ty) {
                        cx.diag(
                            Rule::TypeMismatch,
                            format!(
                                "comparison between {} and {} orders by type tag, never by value",
                                l.ty, r.ty
                            ),
                        );
                    }
                    if l.definitely_null || r.definitely_null {
                        cx.diag(
                            Rule::AlwaysNullPredicate,
                            "comparison with an always-NULL operand is never true; use IS NULL"
                                .into(),
                        );
                    }
                    ExprTy {
                        ty: Ty::Int,
                        nullable: l.nullable || r.nullable,
                        definitely_null: l.definitely_null || r.definitely_null,
                    }
                }
                BinaryOp::And | BinaryOp::Or => ExprTy::int_bool(l.nullable || r.nullable),
            }
        }
        Expr::IsNull { .. } => {
            // Always 0/1, even on NULL input — but still typecheck inside.
            if let Expr::IsNull { expr, .. } = expr {
                infer(cx, ts, expr, grouped);
            }
            ExprTy::int_bool(false)
        }
        Expr::Subquery(q) => {
            let out = super::select::analyze_subquery(cx, q);
            if out.cols.len() != 1 && !out.open {
                cx.diag(
                    Rule::StatementShape,
                    format!(
                        "scalar subquery must return exactly one column, returns {}",
                        out.cols.len()
                    ),
                );
                return ExprTy::new(Ty::Any, true);
            }
            let ty = out.cols.first().map(|c| c.ty).unwrap_or(Ty::Any);
            // An empty result is NULL regardless of the column's own
            // nullability.
            ExprTy::new(ty, true)
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let probe = infer(cx, ts, expr, grouped);
            let out = super::select::analyze_subquery(cx, query);
            if out.cols.len() != 1 && !out.open {
                cx.diag(
                    Rule::StatementShape,
                    format!(
                        "IN subquery must return exactly one column, returns {}",
                        out.cols.len()
                    ),
                );
                return ExprTy::int_bool(true);
            }
            let sub = out.cols.first().copied().unwrap_or(ColTy {
                ty: Ty::Any,
                nullable: true,
            });
            if probe.ty.cmp_mismatch(sub.ty) {
                cx.diag(
                    Rule::TypeMismatch,
                    format!(
                        "IN probe of type {} against subquery column of type {}",
                        probe.ty, sub.ty
                    ),
                );
            }
            if *negated && sub.nullable {
                cx.diag(
                    Rule::NotInNullable,
                    "NOT IN over a nullable subquery column: one NULL in the subquery makes \
                     the predicate UNKNOWN for every non-matching row — guard the subquery \
                     with IS NOT NULL"
                        .into(),
                );
            }
            ExprTy::int_bool(probe.nullable || sub.nullable)
        }
        Expr::Exists { query, .. } => {
            super::select::analyze_subquery(cx, query);
            ExprTy::int_bool(false)
        }
        Expr::Aggregate { func, arg } => {
            let a = arg
                .as_ref()
                .map(|a| infer(cx, ts, a, grouped))
                .unwrap_or(ExprTy::new(Ty::Int, false));
            match func {
                AggFunc::Count => ExprTy::new(Ty::Int, false),
                AggFunc::Sum | AggFunc::Avg => {
                    if a.ty == Ty::Text {
                        cx.diag(
                            Rule::NonNumericArith,
                            format!("{} requires a numeric argument, got Text", func.name()),
                        );
                    }
                    let ty = match func {
                        AggFunc::Avg => Ty::Float,
                        _ => a.ty,
                    };
                    ExprTy::new(ty, if grouped { a.nullable } else { true })
                }
                AggFunc::Min | AggFunc::Max => {
                    ExprTy::new(a.ty, if grouped { a.nullable } else { true })
                }
            }
        }
        Expr::Window {
            partition_by,
            order_by,
            ..
        } => {
            for e in partition_by {
                infer(cx, ts, e, grouped);
            }
            for k in order_by {
                infer(cx, ts, &k.expr, grouped);
            }
            // ROW_NUMBER / RANK are positive integers.
            ExprTy::new(Ty::Int, false)
        }
    }
}

/// Collects columns *null-rejected* by a WHERE conjunct into `out`: rows
/// where any such column is NULL make the conjunct evaluate to NULL or
/// false, so they cannot survive the filter. Sound under-approximation —
/// a column not collected merely stays nullable.
pub(crate) fn strict_cols(ts: &TSchema, conjunct: &Expr, out: &mut HashSet<usize>) {
    match conjunct {
        // A bare column as predicate: NULL is not truthy.
        Expr::Column { .. } => null_prop_cols(ts, conjunct, out),
        // NOT NULL and -NULL are NULL — not truthy — so the operand's
        // NULL-propagating columns are rejected.
        Expr::Unary { expr, .. } => null_prop_cols(ts, expr, out),
        Expr::Binary { left, op, right } => match op {
            // a AND b rejects what either side rejects.
            BinaryOp::And => {
                strict_cols(ts, left, out);
                strict_cols(ts, right, out);
            }
            // a OR b can be true with one side NULL: rejects nothing.
            BinaryOp::Or => {}
            // Comparisons and arithmetic evaluate to NULL whenever either
            // operand is NULL.
            _ => {
                null_prop_cols(ts, left, out);
                null_prop_cols(ts, right, out);
            }
        },
        // x IS NOT NULL rejects NULL in x; x IS NULL *keeps* it.
        Expr::IsNull { expr, negated } => {
            if *negated {
                null_prop_cols(ts, expr, out);
            }
        }
        // NULL IN (…) is NULL or false (empty list → false): rejected.
        // NULL NOT IN (empty list) is TRUE: no rejection when negated.
        Expr::InSubquery { expr, negated, .. } => {
            if !negated {
                null_prop_cols(ts, expr, out);
            }
        }
        Expr::Literal(_)
        | Expr::Param(_)
        | Expr::Subquery(_)
        | Expr::Exists { .. }
        | Expr::Aggregate { .. }
        | Expr::Window { .. } => {}
    }
}

/// Columns whose NULL forces `expr` itself to evaluate to NULL. Unlike
/// [`strict_cols`] this must hold for the expression *value*, not just its
/// truthiness — `a IS NOT NULL` rejects NULL rows as a conjunct but is
/// never NULL as a value, so it contributes nothing here.
fn null_prop_cols(ts: &TSchema, expr: &Expr, out: &mut HashSet<usize>) {
    match expr {
        Expr::Column { table, name } => {
            if let Ok(i) = ts.schema.resolve(table.as_deref(), name) {
                out.insert(i);
            }
        }
        // -NULL and NOT NULL are both NULL.
        Expr::Unary { expr, .. } => null_prop_cols(ts, expr, out),
        Expr::Binary { left, op, right } => match op {
            // AND/OR can absorb a NULL operand (NULL AND 0 = 0).
            BinaryOp::And | BinaryOp::Or => {}
            _ => {
                null_prop_cols(ts, left, out);
                null_prop_cols(ts, right, out);
            }
        },
        // IS [NOT] NULL and EXISTS always produce 0/1; IN can produce
        // false for a NULL probe over an empty list; subqueries and
        // aggregates do not depend on the outer row at all.
        Expr::IsNull { .. }
        | Expr::InSubquery { .. }
        | Expr::Exists { .. }
        | Expr::Subquery(_)
        | Expr::Literal(_)
        | Expr::Param(_)
        | Expr::Aggregate { .. }
        | Expr::Window { .. } => {}
    }
}
