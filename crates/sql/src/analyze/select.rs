//! Plan-shape analysis of SELECT pipelines: a side-effect-free mirror of
//! the executor's FROM planning (`exec::from`), recording one
//! [`TableAccess`] verdict per table touched instead of producing rows.
//!
//! The mirroring is intentionally exact — the same `find_const_equalities`
//! / `choose_access_path` / `find_join_pairs` helpers the executor uses
//! drive the verdicts, so the analyzer cannot drift from what actually
//! runs. Conjunct consumption follows the executor order (base pushdown,
//! then join-by-join), while *type* checking happens once at the end
//! against the combined schema, after null-rejection refinement.

use super::typeck::{infer, strict_cols, ColTy, TSchema};
use super::{AccessKind, Ctx, JoinKind, Rule, TableAccess};
use crate::ast::{Expr, Select, TableRef};
use crate::catalog::{Table, TableStorage};
use crate::exec::eval::{binds_in, split_conjuncts};
use crate::exec::from::{choose_access_path, find_const_equalities, find_join_pairs};
use crate::exec::select::expand_items;
use std::collections::HashSet;

/// Analyzes a SELECT appearing as a scalar/IN/EXISTS subquery: evaluated
/// once per statement, so its accesses are exempt from the hot-path
/// full-scan rule (FC201).
pub(crate) fn analyze_subquery(cx: &mut Ctx<'_>, sel: &Select) -> TSchema {
    cx.subquery_depth += 1;
    let out = analyze_select(cx, sel);
    cx.subquery_depth -= 1;
    out
}

/// Analyzes a SELECT, returning the typed schema of its output columns.
pub(crate) fn analyze_select(cx: &mut Ctx<'_>, sel: &Select) -> TSchema {
    let conjuncts: Vec<Expr> = sel.filter.as_ref().map(split_conjuncts).unwrap_or_default();

    // FROM: mirror the executor's consumption order for shape verdicts.
    let combined = if sel.from.is_empty() {
        TSchema::default()
    } else {
        let mut remaining = conjuncts.clone();
        let mut acc = base_ref(cx, &sel.from[0], &mut remaining);
        for tref in &sel.from[1..] {
            acc = join_ref(cx, acc, tref, &mut remaining);
        }
        acc
    };

    // Null-rejection refinement: columns no surviving row can hold NULL in.
    let mut strict = HashSet::new();
    for c in &conjuncts {
        strict_cols(&combined, c, &mut strict);
    }
    let mut ts = combined;
    for &i in &strict {
        if let Some(col) = ts.cols.get_mut(i) {
            col.nullable = false;
        }
    }

    let grouped = !sel.group_by.is_empty();

    // Type-check the full WHERE clause against the refined schema.
    for c in &conjuncts {
        infer(cx, &ts, c, false);
    }
    for g in &sel.group_by {
        infer(cx, &ts, g, false);
    }

    // Projection: expand wildcards exactly like the executor, then type
    // each output item.
    let items = match expand_items(sel, &ts.schema) {
        Ok(items) => items,
        Err(e) => {
            if !ts.open {
                cx.diag(Rule::StatementShape, e.to_string());
            }
            return TSchema::open();
        }
    };
    let mut out = TSchema {
        open: ts.open,
        ..TSchema::default()
    };
    for item in &items {
        let t = infer(cx, &ts, &item.expr, grouped);
        out.push(
            item.name.clone(),
            ColTy {
                ty: t.ty,
                nullable: t.nullable,
            },
        );
    }

    if let Some(h) = &sel.having {
        infer(cx, &ts, h, grouped);
    }

    // ORDER BY: a bare name matching an output item refers to that item
    // (alias targeting, mirroring the planner); everything else binds in
    // the pre-projection schema.
    for k in &sel.order_by {
        if let Expr::Column { table: None, name } = &k.expr {
            if items.iter().any(|i| i.name.eq_ignore_ascii_case(name)) {
                continue;
            }
        }
        infer(cx, &ts, &k.expr, grouped);
    }

    out
}

/// What a table reference statically resolves to.
enum SourceT {
    /// A base table in the catalog.
    Table { name: String, binding: String },
    /// Derived table, view, or unresolvable name — already "materialized".
    Mat(TSchema),
}

fn resolve_source(cx: &mut Ctx<'_>, tref: &TableRef) -> SourceT {
    match tref {
        TableRef::Named { name, alias } => {
            let binding = alias.as_deref().unwrap_or(name).to_string();
            if cx.catalog.has_table(name) {
                return SourceT::Table {
                    name: name.clone(),
                    binding,
                };
            }
            if let Some(view) = cx.catalog.view(name) {
                let view = view.clone();
                let out = analyze_select(cx, &view);
                return SourceT::Mat(out.rebind(&binding));
            }
            cx.diag(Rule::UnknownTable, format!("no such table or view {name}"));
            SourceT::Mat(TSchema::open())
        }
        TableRef::Derived {
            query,
            alias,
            columns,
        } => {
            let mut out = analyze_select(cx, query);
            if let Some(cols) = columns {
                if cols.len() != out.cols.len() && !out.open {
                    cx.diag(
                        Rule::StatementShape,
                        format!(
                            "derived table {alias} lists {} columns but query returns {}",
                            cols.len(),
                            out.cols.len()
                        ),
                    );
                }
                for (c, name) in out.schema.cols.iter_mut().zip(cols) {
                    c.name = name.clone();
                }
            }
            SourceT::Mat(out.rebind(alias))
        }
    }
}

/// True when the table has *any* physical access path an equality probe
/// could use (clustered/segmented key or a secondary index).
pub(crate) fn has_any_index(table: &Table) -> bool {
    table.clustered_key_cols().is_some() || !table.indexes.is_empty()
}

/// Classifies an index access on `cols`: a point lookup when the columns
/// exactly cover a unique path, a range/prefix scan otherwise.
pub(crate) fn eq_access_kind(table: &Table, cols: &[usize]) -> AccessKind {
    if let TableStorage::Clustered {
        key_cols,
        unique: true,
        ..
    } = &table.storage
    {
        if cols == key_cols.as_slice() {
            return AccessKind::IndexEq;
        }
    }
    if table
        .indexes
        .iter()
        .any(|i| i.unique && i.cols.as_slice() == cols)
    {
        return AccessKind::IndexEq;
    }
    AccessKind::IndexRange
}

fn col_names(table: &Table, cols: &[usize]) -> Vec<String> {
    cols.iter()
        .map(|&c| table.schema.columns[c].name.clone())
        .collect()
}

fn record(
    cx: &mut Ctx<'_>,
    table: &Table,
    binding: &str,
    access: AccessKind,
    join: JoinKind,
    index_cols: Vec<String>,
) {
    let in_subquery = cx.subquery_depth > 0;
    cx.accesses.push(TableAccess {
        table: table.schema.name.clone(),
        binding: binding.to_string(),
        access,
        join,
        index_cols,
        has_index: has_any_index(table),
        in_subquery,
    });
}

fn record_derived(cx: &mut Ctx<'_>, binding: &str, join: JoinKind) {
    let in_subquery = cx.subquery_depth > 0;
    cx.accesses.push(TableAccess {
        table: binding.to_string(),
        binding: binding.to_string(),
        access: AccessKind::Derived,
        join,
        index_cols: Vec::new(),
        has_index: false,
        in_subquery,
    });
}

fn remove_conjuncts(conjuncts: &mut Vec<Expr>, consumed: &[usize]) {
    let mut i = 0usize;
    conjuncts.retain(|_| {
        let keep = !consumed.contains(&i);
        i += 1;
        keep
    });
}

/// Mirror of `exec::from::base_relation`.
fn base_ref(cx: &mut Ctx<'_>, tref: &TableRef, remaining: &mut Vec<Expr>) -> TSchema {
    match resolve_source(cx, tref) {
        SourceT::Table { name, binding } => {
            let Ok(table) = cx.catalog.table(&name) else {
                return TSchema::open();
            };
            let ts = TSchema::from_table(&binding, table);
            // Conjuncts fully resolvable against this table alone.
            let mine_idx: Vec<usize> = remaining
                .iter()
                .enumerate()
                .filter(|(_, c)| binds_in(c, &ts.schema))
                .map(|(i, _)| i)
                .collect();
            let mine: Vec<Expr> = mine_idx.iter().map(|&i| remaining[i].clone()).collect();
            let eqs = find_const_equalities(&ts.schema, &mine);
            match choose_access_path(table, &eqs) {
                Some((cols, _)) => {
                    let kind = eq_access_kind(table, &cols);
                    let names = col_names(table, &cols);
                    record(cx, table, &binding, kind, JoinKind::Source, names);
                }
                None => {
                    record(
                        cx,
                        table,
                        &binding,
                        AccessKind::FullScan,
                        JoinKind::Source,
                        Vec::new(),
                    );
                }
            }
            remove_conjuncts(remaining, &mine_idx);
            ts
        }
        SourceT::Mat(ts) => {
            if !ts.open {
                record_derived(cx, tref.binding_name(), JoinKind::Source);
            }
            // Push single-relation predicates down (consumption only).
            let mine_idx: Vec<usize> = remaining
                .iter()
                .enumerate()
                .filter(|(_, c)| binds_in(c, &ts.schema))
                .map(|(i, _)| i)
                .collect();
            remove_conjuncts(remaining, &mine_idx);
            ts
        }
    }
}

/// Mirror of `exec::from::join`.
fn join_ref(
    cx: &mut Ctx<'_>,
    left: TSchema,
    tref: &TableRef,
    remaining: &mut Vec<Expr>,
) -> TSchema {
    match resolve_source(cx, tref) {
        SourceT::Table { name, binding } => {
            let Ok(table) = cx.catalog.table(&name) else {
                return left;
            };
            let right = TSchema::from_table(&binding, table);
            let pairs = find_join_pairs(&left.schema, &right.schema, remaining);

            // Try index nested loop: join columns must cover an index
            // prefix (clustered first, then secondaries; longest wins).
            let path = {
                let pair_cols: Vec<usize> = pairs.iter().map(|p| p.right_col).collect();
                let mut best: Option<Vec<usize>> = None;
                let mut consider = |cols: &[usize]| {
                    let mut n = 0;
                    for &c in cols {
                        if pair_cols.contains(&c) {
                            n += 1;
                        } else {
                            break;
                        }
                    }
                    if n > 0 && best.as_ref().is_none_or(|b| b.len() < n) {
                        best = Some(cols[..n].to_vec());
                    }
                };
                if let Some(key_cols) = table.clustered_key_cols() {
                    consider(key_cols);
                }
                for idx in &table.indexes {
                    consider(&idx.cols);
                }
                best
            };

            let combined = left.concat(&right);
            if let Some(path_cols) = path {
                let kind = eq_access_kind(table, &path_cols);
                let names = col_names(table, &path_cols);
                record(cx, table, &binding, kind, JoinKind::IndexNestedLoop, names);
                // Consume the used pair conjuncts plus every residual that
                // binds in the combined schema, exactly like the executor.
                let mut consumed: Vec<usize> = Vec::new();
                for &pc in &path_cols {
                    if let Some(p) = pairs
                        .iter()
                        .position(|p| p.right_col == pc && !consumed.contains(&p.conjunct_idx))
                    {
                        consumed.push(pairs[p].conjunct_idx);
                    }
                }
                let residual: Vec<usize> = remaining
                    .iter()
                    .enumerate()
                    .filter(|(i, c)| !consumed.contains(i) && binds_in(c, &combined.schema))
                    .map(|(i, _)| i)
                    .collect();
                consumed.extend(residual);
                remove_conjuncts(remaining, &consumed);
            } else {
                // No usable index: materialize the table and hash/loop join.
                let join = if pairs.is_empty() {
                    JoinKind::NestedLoop
                } else {
                    JoinKind::HashJoin
                };
                record(cx, table, &binding, AccessKind::FullScan, join, Vec::new());
                consume_materialized(&left, &right, &combined, remaining);
            }
            combined
        }
        SourceT::Mat(right) => {
            let combined = left.concat(&right);
            if !right.open {
                let pairs = find_join_pairs(&left.schema, &right.schema, remaining);
                let join = if pairs.is_empty() {
                    JoinKind::NestedLoop
                } else {
                    JoinKind::HashJoin
                };
                record_derived(cx, tref.binding_name(), join);
            }
            consume_materialized(&left, &right, &combined, remaining);
            combined
        }
    }
}

/// Mirror of `exec::from::join_materialized`'s conjunct consumption: the
/// equi-pairs plus every residual binding in the combined schema.
fn consume_materialized(
    left: &TSchema,
    right: &TSchema,
    combined: &TSchema,
    remaining: &mut Vec<Expr>,
) {
    let pairs = find_join_pairs(&left.schema, &right.schema, remaining);
    let consumed: Vec<usize> = remaining
        .iter()
        .enumerate()
        .filter(|(i, c)| {
            pairs.iter().any(|p| p.conjunct_idx == *i) || binds_in(c, &combined.schema)
        })
        .map(|(i, _)| i)
        .collect();
    remove_conjuncts(remaining, &consumed);
}

/// Typed output of a table reference used as a DML source (UPDATE … FROM /
/// MERGE USING): named tables are always scanned (`plan_source_ref`),
/// derived sources analyze recursively.
pub(crate) fn analyze_dml_source(cx: &mut Ctx<'_>, tref: &TableRef) -> TSchema {
    match resolve_source(cx, tref) {
        SourceT::Table { name, binding } => {
            let Ok(table) = cx.catalog.table(&name) else {
                return TSchema::open();
            };
            // DML sources never get an access path — the executor streams
            // the whole source (plan_source_ref).
            record(
                cx,
                table,
                &binding,
                AccessKind::FullScan,
                JoinKind::Source,
                Vec::new(),
            );
            TSchema::from_table(&binding, table)
        }
        SourceT::Mat(ts) => {
            if !ts.open {
                record_derived(cx, tref.binding_name(), JoinKind::Source);
            }
            ts
        }
    }
}

/// Mirror of `plan::build::plan_equi_probe` for UPDATE … FROM and MERGE:
/// finds `target.col = source-expr` candidates among `conjuncts`, reports
/// FC005 when none exist (the planner refuses such statements), and
/// records the probe access verdict on the target table.
pub(crate) fn analyze_equi_probe(
    cx: &mut Ctx<'_>,
    table: &Table,
    binding: &str,
    target: &TSchema,
    source: &TSchema,
    conjuncts: &[Expr],
) {
    let mut cand_cols: Vec<usize> = Vec::new();
    for c in conjuncts {
        let Expr::Binary {
            left,
            op: crate::ast::BinaryOp::Eq,
            right,
        } = c
        else {
            continue;
        };
        for (col_side, val_side) in [(left, right), (right, left)] {
            let Expr::Column { table: t, name } = col_side.as_ref() else {
                continue;
            };
            if target.schema.can_resolve(t.as_deref(), name)
                && !source.schema.can_resolve(t.as_deref(), name)
                && (binds_in(val_side, &source.schema)
                    || crate::exec::eval::is_row_independent(val_side))
            {
                if let Ok(col) = target.schema.resolve(t.as_deref(), name) {
                    if !cand_cols.contains(&col) {
                        cand_cols.push(col);
                    }
                    break;
                }
            }
        }
    }
    if cand_cols.is_empty() {
        if !target.open && !source.open {
            cx.diag(
                Rule::StatementShape,
                "MERGE/UPDATE-FROM requires at least one `target.col = source-expr` equality"
                    .into(),
            );
        }
        return;
    }
    // Longest index prefix over the candidate columns; without one the
    // probe degenerates to a per-source-row scan of the target.
    let mut best: Option<Vec<usize>> = None;
    let mut consider = |cols: &[usize]| {
        let mut n = 0;
        for &c in cols {
            if cand_cols.contains(&c) {
                n += 1;
            } else {
                break;
            }
        }
        if n > 0 && best.as_ref().is_none_or(|b| b.len() < n) {
            best = Some(cols[..n].to_vec());
        }
    };
    if let Some(key_cols) = table.clustered_key_cols() {
        consider(key_cols);
    }
    for idx in &table.indexes {
        consider(&idx.cols);
    }
    match best {
        Some(cols) => {
            let kind = eq_access_kind(table, &cols);
            let names = col_names(table, &cols);
            record(cx, table, binding, kind, JoinKind::Probe, names);
        }
        None => {
            record(
                cx,
                table,
                binding,
                AccessKind::FullScan,
                JoinKind::Probe,
                Vec::new(),
            );
        }
    }
}

/// Refines `combined` by the null-rejecting conjuncts of a DML filter and
/// type-checks every conjunct against it. Returns the refined schema so
/// assignment expressions see the same nullability.
pub(crate) fn refine_and_check(cx: &mut Ctx<'_>, combined: TSchema, conjuncts: &[Expr]) -> TSchema {
    let mut strict = HashSet::new();
    for c in conjuncts {
        strict_cols(&combined, c, &mut strict);
    }
    let mut ts = combined;
    for &i in &strict {
        if let Some(col) = ts.cols.get_mut(i) {
            col.nullable = false;
        }
    }
    for c in conjuncts {
        infer(cx, &ts, c, false);
    }
    ts
}

/// Output column type of a SELECT used as an INSERT source, with `Ty` per
/// column (helper for arity/compat checks in `analyze_insert`).
pub(crate) fn select_output(cx: &mut Ctx<'_>, sel: &Select) -> TSchema {
    analyze_select(cx, sel)
}
