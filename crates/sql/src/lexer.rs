//! SQL tokenizer.
//!
//! Keywords are case-insensitive; identifiers keep their original spelling
//! but compare case-insensitively at bind time. String literals use single
//! quotes with `''` escaping. `--` starts a line comment.

use crate::error::{Result, SqlError};

/// A lexical token with its 1-based character position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// `?` positional parameter.
    Param,
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// True when this is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes `input` fully.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let err = |msg: &str, pos: usize| SqlError::Parse {
        message: msg.to_string(),
        position: pos + 1,
    };
    while i < bytes.len() {
        let c = bytes[i];
        let pos = i + 1;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push(Token {
                    kind: TokenKind::LParen,
                    pos,
                });
                i += 1;
            }
            b')' => {
                out.push(Token {
                    kind: TokenKind::RParen,
                    pos,
                });
                i += 1;
            }
            b',' => {
                out.push(Token {
                    kind: TokenKind::Comma,
                    pos,
                });
                i += 1;
            }
            b'.' => {
                out.push(Token {
                    kind: TokenKind::Dot,
                    pos,
                });
                i += 1;
            }
            b';' => {
                out.push(Token {
                    kind: TokenKind::Semicolon,
                    pos,
                });
                i += 1;
            }
            b'*' => {
                out.push(Token {
                    kind: TokenKind::Star,
                    pos,
                });
                i += 1;
            }
            b'+' => {
                out.push(Token {
                    kind: TokenKind::Plus,
                    pos,
                });
                i += 1;
            }
            b'-' => {
                out.push(Token {
                    kind: TokenKind::Minus,
                    pos,
                });
                i += 1;
            }
            b'/' => {
                out.push(Token {
                    kind: TokenKind::Slash,
                    pos,
                });
                i += 1;
            }
            b'%' => {
                out.push(Token {
                    kind: TokenKind::Percent,
                    pos,
                });
                i += 1;
            }
            b'?' => {
                out.push(Token {
                    kind: TokenKind::Param,
                    pos,
                });
                i += 1;
            }
            b'=' => {
                out.push(Token {
                    kind: TokenKind::Eq,
                    pos,
                });
                i += 1;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::LtEq,
                        pos,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token {
                        kind: TokenKind::NotEq,
                        pos,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Lt,
                        pos,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::GtEq,
                        pos,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        kind: TokenKind::Gt,
                        pos,
                    });
                    i += 1;
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        kind: TokenKind::NotEq,
                        pos,
                    });
                    i += 2;
                } else {
                    return Err(err("unexpected '!'", i));
                }
            }
            b'\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(err("unterminated string literal", pos - 1)),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Track UTF-8 boundaries via str indexing; the
                            // byte peek guarantees a character is present.
                            let rest = &input[i..];
                            let Some(ch) = rest.chars().next() else {
                                return Err(err("string literal ends mid-character", i));
                            };
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    pos,
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse::<f64>()
                            .map_err(|_| err("invalid float literal", start))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse::<i64>()
                            .map_err(|_| err("integer literal out of range", start))?,
                    )
                };
                out.push(Token { kind, pos });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    pos,
                });
            }
            _ => {
                let ch = input[i..].chars().next().unwrap_or('\u{fffd}');
                return Err(err(&format!("unexpected character {ch:?}"), i));
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        pos: input.len() + 1,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select_tokens() {
        let ks = kinds("SELECT nid FROM TVisited WHERE f = 0;");
        assert_eq!(ks[0], TokenKind::Ident("SELECT".into()));
        assert_eq!(ks[1], TokenKind::Ident("nid".into()));
        assert_eq!(ks[2], TokenKind::Ident("FROM".into()));
        assert!(ks.contains(&TokenKind::Eq));
        assert!(ks.contains(&TokenKind::Int(0)));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 1e3 7"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(1000.0),
                TokenKind::Int(7),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_with_escape() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= = <> !="),
            vec![
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT -- the whole row\n 1"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn params_and_punctuation() {
        let ks = kinds("f(a.b, ?) * 2");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("f".into()),
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::Comma,
                TokenKind::Param,
                TokenKind::RParen,
                TokenKind::Star,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let toks = tokenize("select").unwrap();
        assert!(toks[0].kind.is_kw("SELECT"));
        assert!(toks[0].kind.is_kw("select"));
        assert!(!toks[0].kind.is_kw("FROM"));
    }
}
