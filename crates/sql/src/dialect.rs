//! Engine dialects.
//!
//! The paper evaluates on two systems: a commercial "DBMS-x" (window
//! functions **and** MERGE) and PostgreSQL 9.0 (window functions but **no**
//! MERGE — §5.2: "Since PostgreSQL supports the window function but cannot
//! provide the merge statement, we use insert and update statement for the
//! M-operator instead"). The dialect flag reproduces exactly that
//! capability difference for Fig 8(a)/9(e).

/// Capabilities of the emulated RDBMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dialect {
    /// Human-readable name, used in error messages and experiment output.
    pub name: &'static str,
    /// Whether the SQL:2008 MERGE statement is available.
    pub supports_merge: bool,
}

impl Dialect {
    /// The commercial system of the paper: full feature set.
    pub const DBMS_X: Dialect = Dialect {
        name: "DBMS-x",
        supports_merge: true,
    };

    /// PostgreSQL 9.0: window functions, but no MERGE.
    pub const POSTGRES: Dialect = Dialect {
        name: "PostgreSQL",
        supports_merge: false,
    };
}

impl Default for Dialect {
    fn default() -> Self {
        Dialect::DBMS_X
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dialect_constants() {
        let x = Dialect::DBMS_X;
        let pg = Dialect::POSTGRES;
        assert!(x.supports_merge && !pg.supports_merge);
        assert_eq!(Dialect::default(), x);
    }
}
