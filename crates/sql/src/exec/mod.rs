//! Statement execution.
//!
//! The executor is a materializing interpreter with a small heuristic
//! planner folded in:
//!
//! * single-table predicates are pushed into the table access path and, when
//!   they are equalities on the leading columns of an index (clustered or
//!   secondary), turned into index lookups;
//! * joins pick index-nested-loop when the inner table has a usable index on
//!   the join columns (this is what makes the paper's E-operator an index
//!   range scan per frontier node), hash join otherwise, nested loop as the
//!   last resort;
//! * uncorrelated subqueries are evaluated once per statement (see
//!   [`eval`]).

pub mod agg;
pub mod dml;
pub mod eval;
pub mod from;
pub mod select;
pub mod window;

use eval::Schema;
use fempath_storage::Value;

/// A materialized intermediate or final result.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    pub schema: Schema,
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// Re-labels every column with `binding` (used when a derived table or
    /// view gets an alias).
    pub fn rebind(mut self, binding: &str) -> Relation {
        let b = Some(binding.to_ascii_lowercase());
        for c in &mut self.schema.cols {
            c.binding = b.clone();
        }
        self
    }
}
