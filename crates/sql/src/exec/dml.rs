//! DML execution: INSERT, UPDATE (incl. `UPDATE … FROM`), DELETE, MERGE,
//! TRUNCATE.
//!
//! Every statement runs in two phases: a **read phase** that evaluates
//! sources, subqueries and the matching set against the pre-statement state
//! (borrowing the catalog immutably), and a **write phase** that applies the
//! collected changes. This gives MERGE and self-referencing statements
//! (`INSERT INTO t SELECT … FROM t`) snapshot semantics.

use super::eval::{
    bind_expr, binds_in, eval, is_row_independent, max_bound_col, split_conjuncts, truthy, BExpr,
    ExecCtx, Schema,
};
use crate::ast::{BinaryOp, Delete, Expr, Insert, InsertSource, Merge, TableRef, Update};
use crate::catalog::{Catalog, RowLoc};
use crate::error::{Result, SqlError};
use fempath_storage::{BufferPool, Value};
use std::collections::HashSet;

/// Executes INSERT; returns the number of rows inserted.
pub fn execute_insert(
    pool: &mut BufferPool,
    catalog: &mut Catalog,
    params: &[Value],
    ins: &Insert,
) -> Result<u64> {
    // Read phase.
    let source_rows: Vec<Vec<Value>> = {
        let mut ctx = ExecCtx {
            pool,
            catalog,
            params,
            trace: None,
        };
        match &ins.source {
            InsertSource::Values(rows) => {
                let empty = Schema::empty();
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        let b = bind_expr(&mut ctx, &empty, e)?;
                        vals.push(eval(&b, &[])?);
                    }
                    out.push(vals);
                }
                out
            }
            InsertSource::Query(q) => super::select::execute_select(&mut ctx, q)?.rows,
        }
    };

    // Map listed columns to full rows.
    let table = catalog.table(&ins.table)?;
    let n_cols = table.schema.columns.len();
    let col_positions: Option<Vec<usize>> = match &ins.columns {
        Some(names) => Some(
            names
                .iter()
                .map(|n| {
                    table
                        .schema
                        .col_index(n)
                        .ok_or_else(|| SqlError::Bind(format!("no column {n} in {}", ins.table)))
                })
                .collect::<Result<_>>()?,
        ),
        None => None,
    };
    let mut full_rows = Vec::with_capacity(source_rows.len());
    for vals in source_rows {
        let row = match &col_positions {
            Some(pos) => {
                if vals.len() != pos.len() {
                    return Err(SqlError::Eval(format!(
                        "INSERT lists {} columns but supplies {} values",
                        pos.len(),
                        vals.len()
                    )));
                }
                let mut row = vec![Value::Null; n_cols];
                for (p, v) in pos.iter().zip(vals) {
                    row[*p] = v;
                }
                row
            }
            None => vals,
        };
        full_rows.push(table.coerce_row(row)?);
    }

    // Write phase.
    let table = catalog.table_mut(&ins.table)?;
    let n = full_rows.len() as u64;
    for row in full_rows {
        table.insert_row(pool, &row)?;
    }
    Ok(n)
}

/// A pending row mutation collected in the read phase.
struct PendingUpdate {
    loc: RowLoc,
    old_row: Vec<Value>,
    new_row: Vec<Value>,
}

/// Executes UPDATE; returns the number of rows updated.
pub fn execute_update(
    pool: &mut BufferPool,
    catalog: &mut Catalog,
    params: &[Value],
    upd: &Update,
) -> Result<u64> {
    let binding = upd.alias.as_deref().unwrap_or(&upd.table);
    let pending: Vec<PendingUpdate> = {
        let mut ctx = ExecCtx {
            pool,
            catalog,
            params,
            trace: None,
        };
        let table = ctx.catalog.table(&upd.table)?;
        let tschema = Schema::from_table(binding, &table.schema);
        let assign_cols: Vec<usize> = upd
            .assignments
            .iter()
            .map(|(name, _)| {
                table
                    .schema
                    .col_index(name)
                    .ok_or_else(|| SqlError::Bind(format!("no column {name} in {}", upd.table)))
            })
            .collect::<Result<_>>()?;

        match &upd.from {
            None => {
                // Plain UPDATE: match rows, then compute assignments.
                let pred = upd
                    .filter
                    .as_ref()
                    .map(|f| bind_expr(&mut ctx, &tschema, f))
                    .transpose()?;
                let assigns: Vec<BExpr> = upd
                    .assignments
                    .iter()
                    .map(|(_, e)| bind_expr(&mut ctx, &tschema, e))
                    .collect::<Result<_>>()?;
                let mut out = Vec::new();
                let mut eval_err = None;
                let table = ctx.catalog.table(&upd.table)?;
                table.scan(ctx.pool, |loc, row| {
                    let keep = match &pred {
                        Some(p) => match eval(p, &row) {
                            Ok(v) => truthy(&v),
                            Err(e) => {
                                eval_err = Some(e);
                                return false;
                            }
                        },
                        None => true,
                    };
                    if keep {
                        out.push((loc, row));
                    }
                    true
                })?;
                if let Some(e) = eval_err {
                    return Err(e);
                }
                let mut pending = Vec::with_capacity(out.len());
                for (loc, row) in out {
                    let mut new_row = row.clone();
                    for (c, a) in assign_cols.iter().zip(&assigns) {
                        new_row[*c] = eval(a, &row)?;
                    }
                    let table = ctx.catalog.table(&upd.table)?;
                    let new_row = table.coerce_row(new_row)?;
                    pending.push(PendingUpdate {
                        loc,
                        old_row: row,
                        new_row,
                    });
                }
                pending
            }
            Some(source_ref) => {
                // UPDATE … FROM: join the target with the source. Source
                // rows are pre-filtered with the source-only conjuncts
                // (skipping their probes entirely), and target-only
                // residuals are checked on the bare target row before the
                // combined row is built — the hot batched-FEM statements
                // reject most rows on those cheap paths.
                let mut conjuncts: Vec<Expr> =
                    upd.filter.as_ref().map(split_conjuncts).unwrap_or_default();
                let source =
                    materialize_ref_filtered(&mut ctx, source_ref, &tschema, &mut conjuncts)?;
                let combined = tschema.concat(&source.schema);
                let (probe_cols, probe_exprs, residual) = equi_probe_plan(
                    &mut ctx,
                    &upd.table,
                    &tschema,
                    &source.schema,
                    &combined,
                    &conjuncts,
                )?;
                let target_width = tschema.cols.len();
                let (target_residual, mixed_residual): (Vec<BExpr>, Vec<BExpr>) = residual
                    .into_iter()
                    .partition(|p| max_bound_col(p).is_none_or(|c| c < target_width));
                let assigns: Vec<BExpr> = upd
                    .assignments
                    .iter()
                    .map(|(_, e)| bind_expr(&mut ctx, &combined, e))
                    .collect::<Result<_>>()?;

                let mut pending: Vec<PendingUpdate> = Vec::new();
                let mut touched: HashSet<RowLoc> = HashSet::new();
                for srow in &source.rows {
                    let matches =
                        probe_target(&mut ctx, &upd.table, &probe_cols, &probe_exprs, srow)?;
                    'target: for (loc, trow) in matches {
                        for p in &target_residual {
                            if !truthy(&eval(p, &trow)?) {
                                continue 'target;
                            }
                        }
                        let mut combined_row = trow.clone();
                        combined_row.extend(srow.iter().cloned());
                        for p in &mixed_residual {
                            if !truthy(&eval(p, &combined_row)?) {
                                continue 'target;
                            }
                        }
                        if !touched.insert(loc.clone()) {
                            continue;
                        }
                        let mut new_row = trow.clone();
                        for (c, a) in assign_cols.iter().zip(&assigns) {
                            new_row[*c] = eval(a, &combined_row)?;
                        }
                        let table = ctx.catalog.table(&upd.table)?;
                        let new_row = table.coerce_row(new_row)?;
                        pending.push(PendingUpdate {
                            loc,
                            old_row: trow,
                            new_row,
                        });
                    }
                }
                pending
            }
        }
    };

    let n = pending.len() as u64;
    let table = catalog.table_mut(&upd.table)?;
    for p in pending {
        table.update_row(pool, &p.loc, &p.old_row, &p.new_row)?;
    }
    Ok(n)
}

/// Executes DELETE; returns the number of rows removed.
pub fn execute_delete(
    pool: &mut BufferPool,
    catalog: &mut Catalog,
    params: &[Value],
    del: &Delete,
) -> Result<u64> {
    let matches: Vec<(RowLoc, Vec<Value>)> = {
        let mut ctx = ExecCtx {
            pool,
            catalog,
            params,
            trace: None,
        };
        let table = ctx.catalog.table(&del.table)?;
        let schema = Schema::from_table(&del.table, &table.schema);
        let pred = del
            .filter
            .as_ref()
            .map(|f| bind_expr(&mut ctx, &schema, f))
            .transpose()?;
        let mut out = Vec::new();
        let mut eval_err = None;
        let table = ctx.catalog.table(&del.table)?;
        table.scan(ctx.pool, |loc, row| {
            let keep = match &pred {
                Some(p) => match eval(p, &row) {
                    Ok(v) => truthy(&v),
                    Err(e) => {
                        eval_err = Some(e);
                        return false;
                    }
                },
                None => true,
            };
            if keep {
                out.push((loc, row));
            }
            true
        })?;
        if let Some(e) = eval_err {
            return Err(e);
        }
        out
    };
    let n = matches.len() as u64;
    let table = catalog.table_mut(&del.table)?;
    for (loc, row) in matches {
        table.delete_row(pool, &loc, &row)?;
    }
    Ok(n)
}

/// Executes MERGE; returns updates + inserts (the paper reads this
/// "affected tuples" count from SQLCA to steer its iterations).
pub fn execute_merge(
    pool: &mut BufferPool,
    catalog: &mut Catalog,
    params: &[Value],
    m: &Merge,
) -> Result<u64> {
    let target_binding = m.target_alias.as_deref().unwrap_or(&m.target);
    let (pending_updates, pending_inserts) = {
        let mut ctx = ExecCtx {
            pool,
            catalog,
            params,
            trace: None,
        };
        let source = materialize_ref(&mut ctx, &m.source)?;
        let table = ctx.catalog.table(&m.target)?;
        let tschema = Schema::from_table(target_binding, &table.schema);
        let combined = tschema.concat(&source.schema);

        let on_conjuncts = split_conjuncts(&m.on);
        let (probe_cols, probe_exprs, residual) = equi_probe_plan(
            &mut ctx,
            &m.target,
            &tschema,
            &source.schema,
            &combined,
            &on_conjuncts,
        )?;

        // Bind WHEN MATCHED parts over the combined schema.
        let matched = m
            .when_matched
            .as_ref()
            .map(|wm| {
                let cond = wm
                    .condition
                    .as_ref()
                    .map(|c| bind_expr(&mut ctx, &combined, c))
                    .transpose()?;
                let cols: Vec<usize> = wm
                    .assignments
                    .iter()
                    .map(|(name, _)| {
                        ctx.catalog
                            .table(&m.target)?
                            .schema
                            .col_index(name)
                            .ok_or_else(|| {
                                SqlError::Bind(format!("no column {name} in {}", m.target))
                            })
                    })
                    .collect::<Result<_>>()?;
                let exprs: Vec<BExpr> = wm
                    .assignments
                    .iter()
                    .map(|(_, e)| bind_expr(&mut ctx, &combined, e))
                    .collect::<Result<_>>()?;
                Ok::<_, SqlError>((cond, cols, exprs))
            })
            .transpose()?;

        // Bind WHEN NOT MATCHED over the source schema alone.
        let not_matched = m
            .when_not_matched
            .as_ref()
            .map(|wi| {
                let cols: Vec<usize> = wi
                    .columns
                    .iter()
                    .map(|name| {
                        ctx.catalog
                            .table(&m.target)?
                            .schema
                            .col_index(name)
                            .ok_or_else(|| {
                                SqlError::Bind(format!("no column {name} in {}", m.target))
                            })
                    })
                    .collect::<Result<_>>()?;
                let exprs: Vec<BExpr> = wi
                    .values
                    .iter()
                    .map(|e| bind_expr(&mut ctx, &source.schema, e))
                    .collect::<Result<_>>()?;
                if cols.len() != exprs.len() {
                    return Err(SqlError::Eval(
                        "MERGE INSERT column/value count mismatch".into(),
                    ));
                }
                Ok::<_, SqlError>((cols, exprs))
            })
            .transpose()?;

        let n_cols = ctx.catalog.table(&m.target)?.schema.columns.len();
        let mut updates: Vec<PendingUpdate> = Vec::new();
        let mut inserts: Vec<Vec<Value>> = Vec::new();
        let mut touched: HashSet<RowLoc> = HashSet::new();

        for srow in &source.rows {
            let matches = probe_target(&mut ctx, &m.target, &probe_cols, &probe_exprs, srow)?;
            let mut any_match = false;
            for (loc, trow) in matches {
                let mut combined_row = trow.clone();
                combined_row.extend(srow.iter().cloned());
                let mut pass = true;
                for p in &residual {
                    if !truthy(&eval(p, &combined_row)?) {
                        pass = false;
                        break;
                    }
                }
                if !pass {
                    continue;
                }
                any_match = true;
                if let Some((cond, cols, exprs)) = &matched {
                    let applies = match cond {
                        Some(c) => truthy(&eval(c, &combined_row)?),
                        None => true,
                    };
                    if applies && touched.insert(loc.clone()) {
                        let mut new_row = trow.clone();
                        for (c, e) in cols.iter().zip(exprs) {
                            new_row[*c] = eval(e, &combined_row)?;
                        }
                        let table = ctx.catalog.table(&m.target)?;
                        let new_row = table.coerce_row(new_row)?;
                        updates.push(PendingUpdate {
                            loc,
                            old_row: trow,
                            new_row,
                        });
                    }
                }
            }
            if !any_match {
                if let Some((cols, exprs)) = &not_matched {
                    let mut row = vec![Value::Null; n_cols];
                    for (c, e) in cols.iter().zip(exprs) {
                        row[*c] = eval(e, srow)?;
                    }
                    let table = ctx.catalog.table(&m.target)?;
                    inserts.push(table.coerce_row(row)?);
                }
            }
        }
        (updates, inserts)
    };

    let n = (pending_updates.len() + pending_inserts.len()) as u64;
    let table = catalog.table_mut(&m.target)?;
    for p in pending_updates {
        table.update_row(pool, &p.loc, &p.old_row, &p.new_row)?;
    }
    for row in pending_inserts {
        table.insert_row(pool, &row)?;
    }
    Ok(n)
}

/// Like [`materialize_ref`], but additionally consumes the conjuncts that
/// bind entirely in the source schema, filtering the materialized rows with
/// them up front — every dropped source row saves its target probes and
/// combined-row work downstream. Conjuncts that *also* resolve in the
/// target schema (unqualified names present on both sides) are left alone,
/// so they still bind over the combined schema exactly as before.
fn materialize_ref_filtered(
    ctx: &mut ExecCtx<'_>,
    tref: &TableRef,
    target: &Schema,
    conjuncts: &mut Vec<Expr>,
) -> Result<super::Relation> {
    let mut rel = materialize_ref(ctx, tref)?;
    let mine_idx: Vec<usize> = conjuncts
        .iter()
        .enumerate()
        .filter(|(_, c)| binds_in(c, &rel.schema) && !binds_in(c, target))
        .map(|(i, _)| i)
        .collect();
    if mine_idx.is_empty() {
        return Ok(rel);
    }
    let preds: Vec<BExpr> = mine_idx
        .iter()
        .map(|&i| bind_expr(ctx, &rel.schema, &conjuncts[i]))
        .collect::<Result<_>>()?;
    let mut rows = Vec::with_capacity(rel.rows.len());
    'row: for row in rel.rows {
        for p in &preds {
            if !truthy(&eval(p, &row)?) {
                continue 'row;
            }
        }
        rows.push(row);
    }
    rel.rows = rows;
    let mut keep = Vec::with_capacity(conjuncts.len());
    for (i, c) in conjuncts.drain(..).enumerate() {
        if !mine_idx.contains(&i) {
            keep.push(c);
        }
    }
    *conjuncts = keep;
    Ok(rel)
}

/// Materializes a table reference (base table, view, or derived query) with
/// its binding applied.
fn materialize_ref(ctx: &mut ExecCtx<'_>, tref: &TableRef) -> Result<super::Relation> {
    match tref {
        TableRef::Named { name, alias } => {
            let binding = alias.as_deref().unwrap_or(name);
            if ctx.catalog.has_table(name) {
                let table = ctx.catalog.table(name)?;
                let schema = Schema::from_table(binding, &table.schema);
                let mut rows = Vec::new();
                let table = ctx.catalog.table(name)?;
                table.scan(ctx.pool, |_, row| {
                    rows.push(row);
                    true
                })?;
                Ok(super::Relation { schema, rows })
            } else if let Some(view) = ctx.catalog.view(name) {
                let query = view.clone();
                let rel = super::select::execute_select(ctx, &query)?;
                Ok(rel.rebind(binding))
            } else {
                Err(SqlError::Catalog(format!("no such table or view {name}")))
            }
        }
        TableRef::Derived {
            query,
            alias,
            columns,
        } => {
            let mut rel = super::select::execute_select(ctx, query)?;
            if let Some(cols) = columns {
                if cols.len() != rel.schema.cols.len() {
                    return Err(SqlError::Bind(format!(
                        "derived table {alias} lists {} columns but query returns {}",
                        cols.len(),
                        rel.schema.cols.len()
                    )));
                }
                for (c, name) in rel.schema.cols.iter_mut().zip(cols) {
                    c.name = name.clone();
                }
            }
            Ok(rel.rebind(alias))
        }
    }
}

/// From join conjuncts, extracts equalities `target.col = <source expr>`
/// usable to probe the target, plus residual predicates over the combined
/// schema.
///
/// When the target has an index (clustered or secondary), the probe set is
/// trimmed to the longest equality-covered index prefix so every probe is
/// an index lookup; leftover equalities join the residual filter. Without a
/// usable index all equalities probe together (a filtered scan).
fn equi_probe_plan(
    ctx: &mut ExecCtx<'_>,
    target_table: &str,
    target: &Schema,
    source: &Schema,
    combined: &Schema,
    conjuncts: &[Expr],
) -> Result<(Vec<usize>, Vec<BExpr>, Vec<BExpr>)> {
    // Candidate equalities: (target col, source-side AST, whole conjunct).
    let mut cands: Vec<(usize, &Expr)> = Vec::new();
    let mut cand_conjunct: Vec<usize> = Vec::new();
    let mut residual_ast: Vec<&Expr> = Vec::new();
    for (ci, c) in conjuncts.iter().enumerate() {
        let mut used = false;
        if let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = c
        {
            for (tcol_side, sexpr_side) in [(left, right), (right, left)] {
                if let Expr::Column { table, name } = tcol_side.as_ref() {
                    if target.can_resolve(table.as_deref(), name)
                        && !source.can_resolve(table.as_deref(), name)
                        && (binds_in(sexpr_side, source) || is_row_independent(sexpr_side))
                    {
                        let col = target.resolve(table.as_deref(), name)?;
                        cands.push((col, sexpr_side.as_ref()));
                        cand_conjunct.push(ci);
                        used = true;
                        break;
                    }
                }
            }
        }
        if !used {
            residual_ast.push(c);
        }
    }
    if cands.is_empty() {
        return Err(SqlError::Bind(
            "MERGE/UPDATE-FROM requires at least one `target.col = source-expr` equality".into(),
        ));
    }

    // Prefer the longest index prefix covered by the candidates.
    let tbl = ctx.catalog.table(target_table)?;
    let cand_cols: Vec<usize> = cands.iter().map(|(c, _)| *c).collect();
    let mut chosen: Vec<usize> = (0..cands.len()).collect(); // default: all
    {
        let mut best: Option<Vec<usize>> = None;
        let mut consider = |path: &[usize]| {
            let mut picks = Vec::new();
            for &pc in path {
                match cand_cols.iter().position(|&c| c == pc) {
                    Some(i) => picks.push(i),
                    None => break,
                }
            }
            if !picks.is_empty() && best.as_ref().is_none_or(|b| b.len() < picks.len()) {
                best = Some(picks);
            }
        };
        if let Some(key_cols) = tbl.clustered_key_cols() {
            consider(key_cols);
        }
        for idx in &tbl.indexes {
            consider(&idx.cols);
        }
        if let Some(best) = best {
            chosen = best;
        }
    }

    let mut probe_cols = Vec::with_capacity(chosen.len());
    let mut probe_exprs = Vec::with_capacity(chosen.len());
    for &i in &chosen {
        probe_cols.push(cands[i].0);
        probe_exprs.push(bind_expr(ctx, source, cands[i].1)?);
    }
    let mut residual = Vec::new();
    for (i, &ci) in cand_conjunct.iter().enumerate() {
        if !chosen.contains(&i) {
            residual.push(bind_expr(ctx, combined, &conjuncts[ci])?);
        }
    }
    for c in residual_ast {
        residual.push(bind_expr(ctx, combined, c)?);
    }
    Ok((probe_cols, probe_exprs, residual))
}

/// Finds target rows matching the probe key computed from one source row.
fn probe_target(
    ctx: &mut ExecCtx<'_>,
    target_table: &str,
    probe_cols: &[usize],
    probe_exprs: &[BExpr],
    srow: &[Value],
) -> Result<Vec<(RowLoc, Vec<Value>)>> {
    let mut keys = Vec::with_capacity(probe_exprs.len());
    for e in probe_exprs {
        let v = eval(e, srow)?;
        if v.is_null() {
            return Ok(Vec::new()); // NULL never matches
        }
        keys.push(v);
    }
    let table = ctx.catalog.table(target_table)?;
    let mut out = Vec::new();
    table.lookup_eq(ctx.pool, probe_cols, &keys, |loc, row| {
        out.push((loc, row));
        true
    })?;
    Ok(out)
}
