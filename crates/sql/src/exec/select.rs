//! The SELECT pipeline: FROM/WHERE → GROUP BY | window → HAVING → ORDER BY
//! → projection → DISTINCT → TOP/LIMIT.

use super::eval::{bind_expr, eval, truthy, BExpr, ExecCtx, Schema, SchemaCol};
use super::Relation;
use crate::ast::{Expr, Select, SelectItem};
use crate::error::{Result, SqlError};
use fempath_storage::encode_key;
use std::collections::HashSet;

/// A projection item after wildcard expansion.
#[derive(Debug, Clone)]
pub struct OutItem {
    pub name: String,
    pub expr: Expr,
}

/// Expands `*` / `t.*` and derives output column names.
pub(crate) fn expand_items(sel: &Select, schema: &Schema) -> Result<Vec<OutItem>> {
    let mut out = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                if schema.cols.is_empty() {
                    return Err(SqlError::Bind("SELECT * with no FROM clause".into()));
                }
                for c in &schema.cols {
                    out.push(OutItem {
                        name: c.name.clone(),
                        expr: Expr::Column {
                            table: c.binding.clone(),
                            name: c.name.clone(),
                        },
                    });
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let tl = t.to_ascii_lowercase();
                let mut any = false;
                for c in &schema.cols {
                    if c.binding.as_deref() == Some(tl.as_str()) {
                        any = true;
                        out.push(OutItem {
                            name: c.name.clone(),
                            expr: Expr::Column {
                                table: c.binding.clone(),
                                name: c.name.clone(),
                            },
                        });
                    }
                }
                if !any {
                    return Err(SqlError::Bind(format!("unknown table {t} in {t}.*")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    Expr::Aggregate { func, .. } => func.name().to_ascii_lowercase(),
                    _ => format!("col{}", out.len() + 1),
                });
                out.push(OutItem {
                    name,
                    expr: expr.clone(),
                });
            }
        }
    }
    Ok(out)
}

/// Executes a SELECT, returning a relation whose schema carries the output
/// column names (bindings cleared).
pub fn execute_select(ctx: &mut ExecCtx<'_>, sel: &Select) -> Result<Relation> {
    // FROM + WHERE.
    let mut rel = super::from::build_from(ctx, &sel.from, sel.filter.as_ref())?;

    let mut items = expand_items(sel, &rel.schema)?;

    // Grouping / aggregation.
    let needs_agg = !sel.group_by.is_empty()
        || items.iter().any(|i| i.expr.contains_aggregate())
        || sel.having.as_ref().is_some_and(|h| h.contains_aggregate());
    let mut having = sel.having.clone();
    let mut order_by = sel.order_by.clone();
    if needs_agg {
        let (new_rel, new_items, new_having, new_order) =
            super::agg::run_group_by(ctx, rel, sel, items, having, order_by)?;
        rel = new_rel;
        items = new_items;
        having = new_having;
        order_by = new_order;
    } else if items.iter().any(|i| i.expr.contains_window()) {
        let (new_rel, new_items) = super::window::run_windows(ctx, rel, items)?;
        rel = new_rel;
        items = new_items;
    }

    // HAVING (post-aggregation filter).
    if let Some(h) = having {
        let pred = bind_expr(ctx, &rel.schema, &h)?;
        let mut rows = Vec::with_capacity(rel.rows.len());
        for row in rel.rows {
            if truthy(&eval(&pred, &row)?) {
                rows.push(row);
            }
        }
        rel.rows = rows;
    }

    // ORDER BY: keys may reference output aliases or input columns.
    if !order_by.is_empty() {
        let mut key_exprs: Vec<(BExpr, bool)> = Vec::with_capacity(order_by.len());
        for k in &order_by {
            let target = match &k.expr {
                Expr::Column { table: None, name } => items
                    .iter()
                    .find(|i| i.name.eq_ignore_ascii_case(name))
                    .map(|i| i.expr.clone())
                    .unwrap_or_else(|| k.expr.clone()),
                other => other.clone(),
            };
            key_exprs.push((bind_expr(ctx, &rel.schema, &target)?, k.asc));
        }
        let mut keyed: Vec<(Vec<fempath_storage::Value>, Vec<fempath_storage::Value>)> =
            Vec::with_capacity(rel.rows.len());
        for row in rel.rows {
            let mut keys = Vec::with_capacity(key_exprs.len());
            for (e, _) in &key_exprs {
                keys.push(eval(e, &row)?);
            }
            keyed.push((keys, row));
        }
        keyed.sort_by(|(a, _), (b, _)| {
            for (i, (_, asc)) in key_exprs.iter().enumerate() {
                let ord = a[i].total_cmp(&b[i]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rel.rows = keyed.into_iter().map(|(_, r)| r).collect();
    }

    // TOP / LIMIT cap (applied after projection, but a zero cap
    // short-circuits *before* it: no row the cap excludes should have its
    // projection evaluated — `SELECT TOP 0 1/0 …` returns empty instead
    // of erroring, matching the streaming executor's early exit).
    let cap = match (sel.top, sel.limit) {
        (Some(t), Some(l)) => Some(t.min(l)),
        (Some(t), None) => Some(t),
        (None, Some(l)) => Some(l),
        (None, None) => None,
    };
    if cap == Some(0) {
        rel.rows.clear();
    }

    // Projection.
    let proj: Vec<BExpr> = items
        .iter()
        .map(|i| bind_expr(ctx, &rel.schema, &i.expr))
        .collect::<Result<_>>()?;
    let mut rows = Vec::with_capacity(rel.rows.len());
    for row in &rel.rows {
        let mut out = Vec::with_capacity(proj.len());
        for p in &proj {
            out.push(eval(p, row)?);
        }
        rows.push(out);
    }

    // DISTINCT.
    if sel.distinct {
        let mut seen = HashSet::new();
        rows.retain(|r| seen.insert(encode_key(r).unwrap_or_default()));
    }

    // TOP / LIMIT.
    if let Some(cap) = cap {
        rows.truncate(cap as usize);
    }

    Ok(Relation {
        schema: Schema {
            cols: items
                .into_iter()
                .map(|i| SchemaCol {
                    binding: None,
                    name: i.name,
                })
                .collect(),
        },
        rows,
    })
}
