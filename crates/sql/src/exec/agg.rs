//! GROUP BY / aggregate execution.
//!
//! The input relation is folded into one row per group: group-key columns
//! first, aggregate results after. Projection/HAVING expressions are then
//! rewritten to reference those slots through the synthetic `#agg` binding.

use super::eval::{bind_expr, eval, BExpr, ExecCtx, HashKey, Schema, SchemaCol};
use super::select::OutItem;
use super::Relation;
use crate::ast::{AggFunc, Expr, Select};
use crate::error::{Result, SqlError};
use fempath_storage::Value;
use std::collections::HashMap;

/// Running state of one aggregate over one group.
pub(crate) enum AggState {
    Count(i64),
    SumInt {
        acc: i64,
        any: bool,
        float: f64,
        is_float: bool,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg {
        sum: f64,
        n: i64,
    },
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::SumInt {
                acc: 0,
                any: false,
                float: 0.0,
                is_float: false,
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    /// Feeds one input value. `None` means `COUNT(*)` (count the row).
    pub(crate) fn update(&mut self, v: Option<Value>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                match v {
                    None => *n += 1,        // COUNT(*)
                    Some(Value::Null) => {} // COUNT(expr) skips NULL
                    Some(_) => *n += 1,
                }
            }
            AggState::SumInt {
                acc,
                any,
                float,
                is_float,
            } => match v {
                Some(Value::Int(i)) => {
                    *acc = acc.wrapping_add(i);
                    *float += i as f64;
                    *any = true;
                }
                Some(Value::Float(f)) => {
                    *float += f;
                    *is_float = true;
                    *any = true;
                }
                Some(Value::Null) | None => {}
                Some(other) => {
                    return Err(SqlError::Eval(format!("cannot SUM {other:?}")));
                }
            },
            AggState::Min(cur) => {
                if let Some(v) = v {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                        *cur = Some(v);
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = v {
                    if !v.is_null() && cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                        *cur = Some(v);
                    }
                }
            }
            AggState::Avg { sum, n } => match v {
                Some(Value::Int(i)) => {
                    *sum += i as f64;
                    *n += 1;
                }
                Some(Value::Float(f)) => {
                    *sum += f;
                    *n += 1;
                }
                Some(Value::Null) | None => {}
                Some(other) => {
                    return Err(SqlError::Eval(format!("cannot AVG {other:?}")));
                }
            },
        }
        Ok(())
    }

    /// Feeds `n` argument-less rows at once — the `COUNT(*)` batch path
    /// (equivalent to `n` calls of `update(None)`, which only the Count
    /// state reacts to).
    pub(crate) fn update_star(&mut self, n: i64) {
        if let AggState::Count(c) = self {
            *c += n;
        }
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::SumInt {
                acc,
                any,
                float,
                is_float,
            } => {
                if !any {
                    Value::Null
                } else if is_float {
                    Value::Float(float)
                } else {
                    Value::Int(acc)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// Collects the distinct aggregate calls appearing in an expression.
pub(crate) fn collect_aggs(expr: &Expr, out: &mut Vec<(AggFunc, Option<Expr>)>) {
    match expr {
        Expr::Aggregate { func, arg } => {
            let spec = (*func, arg.as_deref().cloned());
            if !out.contains(&spec) {
                out.push(spec);
            }
        }
        Expr::Unary { expr, .. } => collect_aggs(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, out);
            collect_aggs(right, out);
        }
        Expr::IsNull { expr, .. } => collect_aggs(expr, out),
        _ => {}
    }
}

/// Rewrites an expression over the post-aggregation schema: group
/// expressions become `#agg.g{i}`, aggregate calls become `#agg.a{j}`.
pub(crate) fn rewrite(
    expr: &Expr,
    group_by: &[Expr],
    aggs: &[(AggFunc, Option<Expr>)],
) -> Result<Expr> {
    if let Some(i) = group_by.iter().position(|g| g == expr) {
        return Ok(Expr::Column {
            table: Some("#agg".into()),
            name: format!("g{i}"),
        });
    }
    if let Expr::Aggregate { func, arg } = expr {
        let spec = (*func, arg.as_deref().cloned());
        let j = aggs.iter().position(|s| s == &spec).ok_or_else(|| {
            SqlError::Bind("aggregate expression missing from the collected specs".into())
        })?;
        return Ok(Expr::Column {
            table: Some("#agg".into()),
            name: format!("a{j}"),
        });
    }
    Ok(match expr {
        Expr::Column { table, name } => {
            return Err(SqlError::Bind(format!(
                "column {}{name} must appear in GROUP BY or inside an aggregate",
                table.as_ref().map(|t| format!("{t}.")).unwrap_or_default()
            )))
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite(expr, group_by, aggs)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite(left, group_by, aggs)?),
            op: *op,
            right: Box::new(rewrite(right, group_by, aggs)?),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite(expr, group_by, aggs)?),
            negated: *negated,
        },
        other => other.clone(),
    })
}

/// Output of [`run_group_by`]: the grouped relation plus the rewritten
/// projection items, HAVING clause and ORDER BY keys, all of which now
/// reference the grouped schema.
pub type GroupByOutput = (
    Relation,
    Vec<OutItem>,
    Option<Expr>,
    Vec<crate::ast::OrderKey>,
);

/// Runs grouping + aggregation.
pub fn run_group_by(
    ctx: &mut ExecCtx<'_>,
    rel: Relation,
    sel: &Select,
    items: Vec<OutItem>,
    having: Option<Expr>,
    order_by: Vec<crate::ast::OrderKey>,
) -> Result<GroupByOutput> {
    // Window functions may not be mixed with aggregation in this engine.
    if items.iter().any(|i| i.expr.contains_window()) {
        return Err(SqlError::Bind(
            "window functions cannot be combined with GROUP BY/aggregates".into(),
        ));
    }

    let group_bexprs: Vec<BExpr> = sel
        .group_by
        .iter()
        .map(|g| bind_expr(ctx, &rel.schema, g))
        .collect::<Result<_>>()?;

    let mut agg_specs: Vec<(AggFunc, Option<Expr>)> = Vec::new();
    for item in &items {
        collect_aggs(&item.expr, &mut agg_specs);
    }
    if let Some(h) = &having {
        collect_aggs(h, &mut agg_specs);
    }
    for k in &order_by {
        collect_aggs(&k.expr, &mut agg_specs);
    }
    let agg_args: Vec<Option<BExpr>> = agg_specs
        .iter()
        .map(|(_, arg)| {
            arg.as_ref()
                .map(|a| bind_expr(ctx, &rel.schema, a))
                .transpose()
        })
        .collect::<Result<_>>()?;

    // Group rows (insertion-ordered for deterministic output). The common
    // single-integer group key (e.g. the batched-FEM per-qid statistics)
    // hashes the integer directly instead of allocating an encoded key.
    let mut order: Vec<HashKey> = Vec::new();
    let mut groups: HashMap<HashKey, (Vec<Value>, Vec<AggState>)> = HashMap::new();
    for row in &rel.rows {
        let mut key_vals = Vec::with_capacity(group_bexprs.len());
        for g in &group_bexprs {
            key_vals.push(eval(g, row)?);
        }
        let key = HashKey::from_values(&key_vals)?;
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (
                key_vals,
                agg_specs.iter().map(|(f, _)| AggState::new(*f)).collect(),
            )
        });
        for (state, arg) in entry.1.iter_mut().zip(&agg_args) {
            let v = match arg {
                Some(a) => Some(eval(a, row)?),
                None => None,
            };
            state.update(v)?;
        }
    }
    // Scalar aggregate over an empty input still yields one row.
    if groups.is_empty() && sel.group_by.is_empty() {
        let key = HashKey::Bytes(Vec::new());
        order.push(key.clone());
        groups.insert(
            key,
            (
                Vec::new(),
                agg_specs.iter().map(|(f, _)| AggState::new(*f)).collect(),
            ),
        );
    }

    // Output relation under the synthetic `#agg` binding.
    let mut cols = Vec::new();
    for i in 0..group_bexprs.len() {
        cols.push(SchemaCol {
            binding: Some("#agg".into()),
            name: format!("g{i}"),
        });
    }
    for j in 0..agg_specs.len() {
        cols.push(SchemaCol {
            binding: Some("#agg".into()),
            name: format!("a{j}"),
        });
    }
    let mut rows = Vec::with_capacity(order.len());
    for key in order {
        let (mut key_vals, states) = groups.remove(&key).ok_or_else(|| {
            SqlError::Eval("group key vanished between collection and output".into())
        })?;
        for s in states {
            key_vals.push(s.finish());
        }
        rows.push(key_vals);
    }

    let new_items = items
        .into_iter()
        .map(|i| {
            Ok(OutItem {
                name: i.name,
                expr: rewrite(&i.expr, &sel.group_by, &agg_specs)?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let new_having = having
        .map(|h| rewrite(&h, &sel.group_by, &agg_specs))
        .transpose()?;
    // ORDER BY keys that reference output aliases stay as-is (resolved
    // against the items later); everything else goes through the rewrite.
    let new_order: Vec<crate::ast::OrderKey> = order_by
        .into_iter()
        .map(|k| {
            let is_alias_ref = matches!(
                &k.expr,
                Expr::Column { table: None, name }
                    if new_items.iter().any(|i| i.name.eq_ignore_ascii_case(name))
            );
            if is_alias_ref {
                Ok(k)
            } else {
                Ok(crate::ast::OrderKey {
                    expr: rewrite(&k.expr, &sel.group_by, &agg_specs)?,
                    asc: k.asc,
                })
            }
        })
        .collect::<Result<_>>()?;

    Ok((
        Relation {
            schema: Schema { cols },
            rows,
        },
        new_items,
        new_having,
        new_order,
    ))
}
