//! FROM-clause planning: access paths and join strategies.

use super::eval::{
    bind_expr, binds_in, eval, is_row_independent, split_conjuncts, truthy, BExpr, ExecCtx,
    HashKey, Schema,
};
use super::Relation;
use crate::ast::{BinaryOp, Expr, TableRef};
use crate::catalog::Table;
use crate::error::{Result, SqlError};
use fempath_storage::Value;
use std::collections::HashMap;

/// Builds the row stream for a FROM list, consuming every conjunct of the
/// WHERE clause (pushdown, join conditions, then a final residual filter).
pub fn build_from(
    ctx: &mut ExecCtx<'_>,
    from: &[TableRef],
    filter: Option<&Expr>,
) -> Result<Relation> {
    let mut conjuncts: Vec<Expr> = filter.map(split_conjuncts).unwrap_or_default();

    let mut rel = if from.is_empty() {
        // `SELECT 1` — a single empty row.
        Relation {
            schema: Schema::empty(),
            rows: vec![vec![]],
        }
    } else {
        let mut acc = base_relation(ctx, &from[0], &mut conjuncts)?;
        for tref in &from[1..] {
            acc = join(ctx, acc, tref, &mut conjuncts)?;
        }
        acc
    };

    // Residual filter: everything not consumed by access paths or joins.
    if !conjuncts.is_empty() {
        let preds: Vec<BExpr> = conjuncts
            .iter()
            .map(|c| bind_expr(ctx, &rel.schema, c))
            .collect::<Result<_>>()?;
        let mut rows = Vec::with_capacity(rel.rows.len());
        'row: for row in rel.rows {
            for p in &preds {
                if !truthy(&eval(p, &row)?) {
                    continue 'row;
                }
            }
            rows.push(row);
        }
        rel.rows = rows;
    }
    Ok(rel)
}

/// What a table reference resolves to before any rows are produced.
enum Source {
    /// A base table in the catalog.
    Table { name: String, binding: String },
    /// Already-materialized rows (derived tables and views).
    Mat(Relation),
}

fn resolve_source(ctx: &mut ExecCtx<'_>, tref: &TableRef) -> Result<Source> {
    match tref {
        TableRef::Named { name, alias } => {
            let binding = alias.as_deref().unwrap_or(name).to_string();
            if ctx.catalog.has_table(name) {
                return Ok(Source::Table {
                    name: name.clone(),
                    binding,
                });
            }
            if let Some(view) = ctx.catalog.view(name) {
                let query = view.clone();
                let rel = super::select::execute_select(ctx, &query)?;
                return Ok(Source::Mat(rel.rebind(&binding)));
            }
            Err(SqlError::Catalog(format!("no such table or view {name}")))
        }
        TableRef::Derived {
            query,
            alias,
            columns,
        } => {
            let mut rel = super::select::execute_select(ctx, query)?;
            if let Some(cols) = columns {
                if cols.len() != rel.schema.cols.len() {
                    return Err(SqlError::Bind(format!(
                        "derived table {alias} lists {} columns but query returns {}",
                        cols.len(),
                        rel.schema.cols.len()
                    )));
                }
                for (c, name) in rel.schema.cols.iter_mut().zip(cols) {
                    c.name = name.clone();
                }
            }
            Ok(Source::Mat(rel.rebind(alias)))
        }
    }
}

/// Index-usable equality: `col = <row-independent expr>` over one binding.
pub(crate) struct EqPred {
    pub(crate) col: usize,
    pub(crate) value_expr: Expr,
    /// Position in the conjunct list (for consumption).
    pub(crate) conjunct_idx: usize,
}

/// Finds equalities `schema-col = constant-ish` among conjuncts that bind
/// entirely in `schema`.
pub(crate) fn find_const_equalities(schema: &Schema, conjuncts: &[Expr]) -> Vec<EqPred> {
    let mut out = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = c
        else {
            continue;
        };
        for (col_side, val_side) in [(left, right), (right, left)] {
            if let Expr::Column { table, name } = col_side.as_ref() {
                if schema.can_resolve(table.as_deref(), name) && is_row_independent(val_side) {
                    if let Ok(col) = schema.resolve(table.as_deref(), name) {
                        out.push(EqPred {
                            col,
                            value_expr: val_side.as_ref().clone(),
                            conjunct_idx: i,
                        });
                        break;
                    }
                }
            }
        }
    }
    out
}

/// Chooses the longest index prefix covered by the available equalities.
/// Returns (table column positions, matching `EqPred` indices). Schema
/// positions equal table column positions because the schema came straight
/// from the table definition.
pub(crate) fn choose_access_path(
    table: &Table,
    eqs: &[EqPred],
) -> Option<(Vec<usize>, Vec<usize>)> {
    let mut best: Option<(Vec<usize>, Vec<usize>)> = None;
    let mut consider = |path_cols: &[usize]| {
        let mut cols = Vec::new();
        let mut used = Vec::new();
        for &pc in path_cols {
            match eqs.iter().position(|e| e.col == pc) {
                Some(i) => {
                    cols.push(pc);
                    used.push(i);
                }
                None => break,
            }
        }
        if !cols.is_empty() && best.as_ref().is_none_or(|(b, _)| b.len() < cols.len()) {
            best = Some((cols, used));
        }
    };
    if let Some(key_cols) = table.clustered_key_cols() {
        consider(key_cols);
    }
    for idx in &table.indexes {
        consider(&idx.cols);
    }
    best
}

/// Scans a base table, consuming pushable conjuncts.
fn scan_table(
    ctx: &mut ExecCtx<'_>,
    name: &str,
    binding: &str,
    conjuncts: &mut Vec<Expr>,
) -> Result<Relation> {
    let table = ctx.catalog.table(name)?;
    let schema = Schema::from_table(binding, &table.schema);

    // Conjuncts fully resolvable against this table alone.
    let mine_idx: Vec<usize> = conjuncts
        .iter()
        .enumerate()
        .filter(|(_, c)| binds_in(c, &schema))
        .map(|(i, _)| i)
        .collect();
    let mine: Vec<Expr> = mine_idx.iter().map(|&i| conjuncts[i].clone()).collect();

    let eqs = find_const_equalities(&schema, &mine);
    let access = choose_access_path(table, &eqs);

    let mut rows = Vec::new();
    match access {
        Some((cols, eq_positions)) => {
            ctx.trace(|| format!("SCAN {name} ({binding}) via index lookup on columns {cols:?}"));
            let consumed_local: Vec<usize> =
                eq_positions.iter().map(|&p| eqs[p].conjunct_idx).collect();
            // Key values: bind the constant sides (no columns involved).
            let mut keys = Vec::with_capacity(cols.len());
            for &p in &eq_positions {
                let b = bind_expr(ctx, &Schema::empty(), &eqs[p].value_expr)?;
                keys.push(eval(&b, &[])?);
            }
            // Residual single-table predicates.
            let residual: Vec<BExpr> = mine
                .iter()
                .enumerate()
                .filter(|(i, _)| !consumed_local.contains(i))
                .map(|(_, c)| bind_expr(ctx, &schema, c))
                .collect::<Result<_>>()?;
            if keys.iter().any(|k| k.is_null()) {
                // `col = NULL` never matches.
            } else {
                let mut eval_err = None;
                let table = ctx.catalog.table(name)?;
                table.lookup_eq(ctx.pool, &cols, &keys, |_, row| {
                    for p in &residual {
                        match eval(p, &row) {
                            Ok(v) if truthy(&v) => {}
                            Ok(_) => return true,
                            Err(e) => {
                                eval_err = Some(e);
                                return false;
                            }
                        }
                    }
                    rows.push(row);
                    true
                })?;
                if let Some(e) = eval_err {
                    return Err(e);
                }
            }
        }
        None => {
            ctx.trace(|| {
                format!(
                    "SCAN {name} ({binding}) full scan, {} pushed filter(s)",
                    mine.len()
                )
            });
            let preds: Vec<BExpr> = mine
                .iter()
                .map(|c| bind_expr(ctx, &schema, c))
                .collect::<Result<_>>()?;
            let mut eval_err = None;
            let table = ctx.catalog.table(name)?;
            table.scan(ctx.pool, |_, row| {
                for p in &preds {
                    match eval(p, &row) {
                        Ok(v) if truthy(&v) => {}
                        Ok(_) => return true,
                        Err(e) => {
                            eval_err = Some(e);
                            return false;
                        }
                    }
                }
                rows.push(row);
                true
            })?;
            if let Some(e) = eval_err {
                return Err(e);
            }
        }
    }
    // Remove consumed conjuncts (all of `mine` were consumed either by the
    // access path or the residual filter).
    let mut keep = Vec::with_capacity(conjuncts.len());
    for (i, c) in conjuncts.drain(..).enumerate() {
        if !mine_idx.contains(&i) {
            keep.push(c);
        }
    }
    *conjuncts = keep;

    Ok(Relation { schema, rows })
}

fn base_relation(
    ctx: &mut ExecCtx<'_>,
    tref: &TableRef,
    conjuncts: &mut Vec<Expr>,
) -> Result<Relation> {
    match resolve_source(ctx, tref)? {
        Source::Table { name, binding } => scan_table(ctx, &name, &binding, conjuncts),
        Source::Mat(mut rel) => {
            // Push single-relation predicates down onto the materialized rows.
            let mine_idx: Vec<usize> = conjuncts
                .iter()
                .enumerate()
                .filter(|(_, c)| binds_in(c, &rel.schema))
                .map(|(i, _)| i)
                .collect();
            if !mine_idx.is_empty() {
                let preds: Vec<BExpr> = mine_idx
                    .iter()
                    .map(|&i| bind_expr(ctx, &rel.schema, &conjuncts[i]))
                    .collect::<Result<_>>()?;
                let mut rows = Vec::with_capacity(rel.rows.len());
                'row: for row in rel.rows {
                    for p in &preds {
                        if !truthy(&eval(p, &row)?) {
                            continue 'row;
                        }
                    }
                    rows.push(row);
                }
                rel.rows = rows;
                let mut keep = Vec::with_capacity(conjuncts.len());
                for (i, c) in conjuncts.drain(..).enumerate() {
                    if !mine_idx.contains(&i) {
                        keep.push(c);
                    }
                }
                *conjuncts = keep;
            }
            Ok(rel)
        }
    }
}

/// An equi-join pair: left-side expression = right-side column.
pub(crate) struct JoinPair {
    pub(crate) left_expr: Expr,
    pub(crate) right_col: usize,
    pub(crate) conjunct_idx: usize,
}

/// Finds `left-expr = right-col` equalities across the two schemas.
pub(crate) fn find_join_pairs(left: &Schema, right: &Schema, conjuncts: &[Expr]) -> Vec<JoinPair> {
    let mut out = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        let Expr::Binary {
            left: a,
            op: BinaryOp::Eq,
            right: b,
        } = c
        else {
            continue;
        };
        for (lhs, rhs) in [(a, b), (b, a)] {
            if let Expr::Column { table, name } = rhs.as_ref() {
                // The column side must resolve in the right schema and NOT
                // in the left (otherwise it is not a join column).
                if right.can_resolve(table.as_deref(), name)
                    && !left.can_resolve(table.as_deref(), name)
                    && binds_in(lhs, left)
                {
                    if let Ok(col) = right.resolve(table.as_deref(), name) {
                        out.push(JoinPair {
                            left_expr: lhs.as_ref().clone(),
                            right_col: col,
                            conjunct_idx: i,
                        });
                        break;
                    }
                }
            }
        }
    }
    out
}

fn remove_conjuncts(conjuncts: &mut Vec<Expr>, consumed: &[usize]) {
    let mut keep = Vec::with_capacity(conjuncts.len());
    for (i, c) in conjuncts.drain(..).enumerate() {
        if !consumed.contains(&i) {
            keep.push(c);
        }
    }
    *conjuncts = keep;
}

/// Joins `left` with the next table reference, consuming join conjuncts.
fn join(
    ctx: &mut ExecCtx<'_>,
    left: Relation,
    tref: &TableRef,
    conjuncts: &mut Vec<Expr>,
) -> Result<Relation> {
    match resolve_source(ctx, tref)? {
        Source::Table { name, binding } => {
            let table = ctx.catalog.table(&name)?;
            let right_schema = Schema::from_table(&binding, &table.schema);
            let pairs = find_join_pairs(&left.schema, &right_schema, conjuncts);

            // Try index nested loop: join columns must cover an index prefix.
            let path = {
                let pair_cols: Vec<usize> = pairs.iter().map(|p| p.right_col).collect();
                let mut best: Option<Vec<usize>> = None;
                let mut consider = |cols: &[usize]| {
                    let mut n = 0;
                    for &c in cols {
                        if pair_cols.contains(&c) {
                            n += 1;
                        } else {
                            break;
                        }
                    }
                    if n > 0 && best.as_ref().is_none_or(|b| b.len() < n) {
                        best = Some(cols[..n].to_vec());
                    }
                };
                if let Some(key_cols) = table.clustered_key_cols() {
                    consider(key_cols);
                }
                for idx in &table.indexes {
                    consider(&idx.cols);
                }
                best
            };

            if let Some(path_cols) = path {
                // Index nested loop join.
                ctx.trace(|| {
                    format!(
                        "INDEX NESTED LOOP JOIN {name} ({binding}) probing index columns {path_cols:?}"
                    )
                });
                let mut used_pairs = Vec::new();
                for &pc in &path_cols {
                    let p = pairs
                        .iter()
                        .position(|p| {
                            p.right_col == pc
                                && !used_pairs.iter().any(|&(u, _)| u == p.conjunct_idx)
                        })
                        .ok_or_else(|| {
                            SqlError::Eval("index path column has no matching join pair".into())
                        })?;
                    used_pairs.push((pairs[p].conjunct_idx, p));
                }
                let key_exprs: Vec<BExpr> = used_pairs
                    .iter()
                    .map(|&(_, p)| bind_expr(ctx, &left.schema, &pairs[p].left_expr))
                    .collect::<Result<_>>()?;
                let combined = left.schema.concat(&right_schema);
                // Residual: any other conjunct that binds in the combined
                // schema (includes leftover pairs and non-equi predicates).
                let consumed: Vec<usize> = used_pairs.iter().map(|&(ci, _)| ci).collect();
                let residual_idx: Vec<usize> = conjuncts
                    .iter()
                    .enumerate()
                    .filter(|(i, c)| !consumed.contains(i) && binds_in(c, &combined))
                    .map(|(i, _)| i)
                    .collect();
                let residual: Vec<BExpr> = residual_idx
                    .iter()
                    .map(|&i| bind_expr(ctx, &combined, &conjuncts[i]))
                    .collect::<Result<_>>()?;

                let mut rows = Vec::new();
                let mut eval_err: Option<SqlError> = None;
                for lrow in &left.rows {
                    let mut keys = Vec::with_capacity(key_exprs.len());
                    let mut null_key = false;
                    for e in &key_exprs {
                        let v = eval(e, lrow)?;
                        if v.is_null() {
                            null_key = true;
                            break;
                        }
                        keys.push(v);
                    }
                    if null_key {
                        continue;
                    }
                    let table = ctx.catalog.table(&name)?;
                    table.lookup_eq(ctx.pool, &path_cols, &keys, |_, rrow| {
                        let mut combined_row = lrow.clone();
                        combined_row.extend(rrow);
                        for p in &residual {
                            match eval(p, &combined_row) {
                                Ok(v) if truthy(&v) => {}
                                Ok(_) => return true,
                                Err(e) => {
                                    eval_err = Some(e);
                                    return false;
                                }
                            }
                        }
                        rows.push(combined_row);
                        true
                    })?;
                    if let Some(e) = eval_err {
                        return Err(e);
                    }
                }
                let mut all_consumed = consumed;
                all_consumed.extend(&residual_idx);
                remove_conjuncts(conjuncts, &all_consumed);
                return Ok(Relation {
                    schema: combined,
                    rows,
                });
            }

            // No usable index: materialize and fall through to hash join.
            ctx.trace(|| format!("MATERIALIZE {name} ({binding}) — no usable join index"));
            let mut rows = Vec::new();
            let table = ctx.catalog.table(&name)?;
            table.scan(ctx.pool, |_, row| {
                rows.push(row);
                true
            })?;
            let right = Relation {
                schema: right_schema,
                rows,
            };
            join_materialized(ctx, left, right, conjuncts)
        }
        Source::Mat(right) => join_materialized(ctx, left, right, conjuncts),
    }
}

/// Hash join (on equi-pairs) or nested loop over a materialized right side.
fn join_materialized(
    ctx: &mut ExecCtx<'_>,
    left: Relation,
    right: Relation,
    conjuncts: &mut Vec<Expr>,
) -> Result<Relation> {
    let pairs = find_join_pairs(&left.schema, &right.schema, conjuncts);
    let combined = left.schema.concat(&right.schema);
    let residual_idx: Vec<usize> = conjuncts
        .iter()
        .enumerate()
        .filter(|(i, c)| !pairs.iter().any(|p| p.conjunct_idx == *i) && binds_in(c, &combined))
        .map(|(i, _)| i)
        .collect();
    let residual: Vec<BExpr> = residual_idx
        .iter()
        .map(|&i| bind_expr(ctx, &combined, &conjuncts[i]))
        .collect::<Result<_>>()?;

    let mut rows = Vec::new();
    if pairs.is_empty() {
        ctx.trace(|| {
            format!(
                "NESTED LOOP JOIN ({} x {} rows, {} residual filter(s))",
                left.rows.len(),
                right.rows.len(),
                residual.len()
            )
        });
        // Nested-loop cross product + residual filter.
        'outer: for lrow in &left.rows {
            for rrow in &right.rows {
                let mut combined_row = lrow.clone();
                combined_row.extend(rrow.iter().cloned());
                let mut pass = true;
                for p in &residual {
                    if !truthy(&eval(p, &combined_row)?) {
                        pass = false;
                        break;
                    }
                }
                if pass {
                    rows.push(combined_row);
                }
                if rows.len() > 50_000_000 {
                    break 'outer; // safety valve against runaway cross joins
                }
            }
        }
    } else {
        ctx.trace(|| {
            format!(
                "HASH JOIN on {} column(s) (build {} rows)",
                pairs.len(),
                right.rows.len()
            )
        });
        // Build hash table on the right side, keyed by [`HashKey`] (a
        // single-integer join key — e.g. the batched-FEM per-qid bounds
        // join — hashes the integer directly, no allocation).
        let left_exprs: Vec<BExpr> = pairs
            .iter()
            .map(|p| bind_expr(ctx, &left.schema, &p.left_expr))
            .collect::<Result<_>>()?;
        let right_cols: Vec<usize> = pairs.iter().map(|p| p.right_col).collect();
        let mut ht: HashMap<HashKey, Vec<usize>> = HashMap::new();
        'rrow: for (i, rrow) in right.rows.iter().enumerate() {
            let mut vals = Vec::with_capacity(right_cols.len());
            for &c in &right_cols {
                if rrow[c].is_null() {
                    continue 'rrow;
                }
                vals.push(rrow[c].clone());
            }
            ht.entry(HashKey::from_values(&vals)?).or_default().push(i);
        }
        'lrow: for lrow in &left.rows {
            let mut vals: Vec<Value> = Vec::with_capacity(left_exprs.len());
            for e in &left_exprs {
                let v = eval(e, lrow)?;
                if v.is_null() {
                    continue 'lrow;
                }
                vals.push(v);
            }
            if let Some(matches) = ht.get(&HashKey::from_values(&vals)?) {
                'm: for &ri in matches {
                    let mut combined_row = lrow.clone();
                    combined_row.extend(right.rows[ri].iter().cloned());
                    for p in &residual {
                        if !truthy(&eval(p, &combined_row)?) {
                            continue 'm;
                        }
                    }
                    rows.push(combined_row);
                }
            }
        }
    }
    let mut consumed: Vec<usize> = pairs.iter().map(|p| p.conjunct_idx).collect();
    consumed.extend(&residual_idx);
    remove_conjuncts(conjuncts, &consumed);
    Ok(Relation {
        schema: combined,
        rows,
    })
}
