//! Window-function execution (`ROW_NUMBER`, `RANK` over partitions).
//!
//! This is the SQL:2003 feature the paper leans on (§2.2/§3.3): one window
//! pass replaces the aggregate-plus-self-join of the traditional
//! formulation, keeping non-aggregate columns (the parent `p2s`) available
//! next to the per-partition minimum.

use super::eval::{bind_expr, eval, BExpr, ExecCtx, SchemaCol};
use super::select::OutItem;
use super::Relation;
use crate::ast::{Expr, WindowFunc};
use crate::error::{Result, SqlError};
use fempath_storage::Value;

/// One distinct window specification found in the projection.
#[derive(PartialEq, Clone, Debug)]
pub(crate) struct WinSpec {
    pub(crate) func: WindowFunc,
    pub(crate) partition_by: Vec<Expr>,
    pub(crate) order_by: Vec<crate::ast::OrderKey>,
}

pub(crate) fn collect_windows(expr: &Expr, out: &mut Vec<WinSpec>) {
    match expr {
        Expr::Window {
            func,
            partition_by,
            order_by,
        } => {
            let spec = WinSpec {
                func: *func,
                partition_by: partition_by.clone(),
                order_by: order_by.clone(),
            };
            if !out.contains(&spec) {
                out.push(spec);
            }
        }
        Expr::Unary { expr, .. } => collect_windows(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_windows(left, out);
            collect_windows(right, out);
        }
        Expr::IsNull { expr, .. } => collect_windows(expr, out),
        _ => {}
    }
}

pub(crate) fn rewrite(expr: &Expr, specs: &[WinSpec]) -> Result<Expr> {
    Ok(match expr {
        Expr::Window {
            func,
            partition_by,
            order_by,
        } => {
            let spec = WinSpec {
                func: *func,
                partition_by: partition_by.clone(),
                order_by: order_by.clone(),
            };
            let i = specs.iter().position(|s| s == &spec).ok_or_else(|| {
                SqlError::Bind("window expression missing from the collected specs".into())
            })?;
            Expr::Column {
                table: Some("#win".into()),
                name: format!("w{i}"),
            }
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite(expr, specs)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite(left, specs)?),
            op: *op,
            right: Box::new(rewrite(right, specs)?),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite(expr, specs)?),
            negated: *negated,
        },
        other => other.clone(),
    })
}

/// Computes one window function's per-row values from pre-evaluated
/// `(partition values, order values, original row index)` triples.
/// Shared by the interpreter and the physical-plan executor so the two
/// paths cannot drift: partitions compare value-wise with a type tag
/// before the value (Int(1) and Float(1.0) stay distinct, matching
/// GROUP BY), `dirs` gives each order key's direction.
pub(crate) fn window_values(
    mut keyed: Vec<(Vec<Value>, Vec<Value>, usize)>,
    dirs: &[bool],
    func: WindowFunc,
) -> Vec<Value> {
    fn type_rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Text(_) => 3,
        }
    }
    let cmp_part = |a: &[Value], b: &[Value]| {
        for (x, y) in a.iter().zip(b) {
            let ord = type_rank(x).cmp(&type_rank(y)).then_with(|| x.total_cmp(y));
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };
    keyed.sort_by(|a, b| {
        cmp_part(&a.0, &b.0).then_with(|| {
            for (i, asc) in dirs.iter().enumerate() {
                let ord = a.1[i].total_cmp(&b.1[i]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        })
    });

    let mut values = vec![Value::Null; keyed.len()];
    let mut prev_part: Option<&[Value]> = None;
    let mut row_num = 0i64;
    let mut rank = 0i64;
    let mut prev_order: Option<&[Value]> = None;
    for (pkey, ovals, idx) in &keyed {
        let same = prev_part.is_some_and(|pp| cmp_part(pp, pkey).is_eq());
        if !same {
            row_num = 0;
            rank = 0;
            prev_order = None;
            prev_part = Some(pkey.as_slice());
        }
        row_num += 1;
        let tied = prev_order.is_some_and(|po| {
            po.len() == ovals.len()
                && po
                    .iter()
                    .zip(ovals.iter())
                    .all(|(a, b)| a.total_cmp(b).is_eq())
        });
        if !tied {
            rank = row_num;
        }
        prev_order = Some(ovals.as_slice());
        values[*idx] = Value::Int(match func {
            WindowFunc::RowNumber => row_num,
            WindowFunc::Rank => rank,
        });
    }
    values
}

/// Computes every window column, appends them to the relation under the
/// `#win` binding, and rewrites the projection items to reference them.
pub fn run_windows(
    ctx: &mut ExecCtx<'_>,
    mut rel: Relation,
    items: Vec<OutItem>,
) -> Result<(Relation, Vec<OutItem>)> {
    let mut specs = Vec::new();
    for item in &items {
        collect_windows(&item.expr, &mut specs);
    }

    let n = rel.rows.len();
    for (si, spec) in specs.iter().enumerate() {
        let part: Vec<BExpr> = spec
            .partition_by
            .iter()
            .map(|e| bind_expr(ctx, &rel.schema, e))
            .collect::<Result<_>>()?;
        let order: Vec<(BExpr, bool)> = spec
            .order_by
            .iter()
            .map(|k| Ok((bind_expr(ctx, &rel.schema, &k.expr)?, k.asc)))
            .collect::<Result<_>>()?;

        // (partition values, order values, original index), computed here;
        // the sorting/numbering itself is shared with the plan executor.
        let mut keyed: Vec<(Vec<Value>, Vec<Value>, usize)> = Vec::with_capacity(n);
        for (i, row) in rel.rows.iter().enumerate() {
            let mut pvals = Vec::with_capacity(part.len());
            for p in &part {
                pvals.push(eval(p, row)?);
            }
            let mut ovals = Vec::with_capacity(order.len());
            for (o, _) in &order {
                ovals.push(eval(o, row)?);
            }
            keyed.push((pvals, ovals, i));
        }
        let dirs: Vec<bool> = order.iter().map(|(_, asc)| *asc).collect();
        let values = window_values(keyed, &dirs, spec.func);

        rel.schema.cols.push(SchemaCol {
            binding: Some("#win".into()),
            name: format!("w{si}"),
        });
        for (row, v) in rel.rows.iter_mut().zip(values) {
            row.push(v);
        }
    }

    let new_items = items
        .into_iter()
        .map(|i| {
            Ok(OutItem {
                name: i.name,
                expr: rewrite(&i.expr, &specs)?,
            })
        })
        .collect::<Result<_>>()?;
    Ok((rel, new_items))
}
