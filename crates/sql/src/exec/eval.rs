//! Bound expressions and their evaluation.
//!
//! Binding resolves column names to positions in a [`Schema`], substitutes
//! `?` parameters, and *pre-evaluates uncorrelated subqueries* (scalar, IN,
//! EXISTS) to constants — every subquery the paper's SQL uses is
//! uncorrelated, and pre-evaluation gives them the same
//! "evaluate-once-per-statement" cost profile a real optimizer would.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::catalog::Catalog;
use crate::error::{Result, SqlError};
use fempath_storage::{BufferPool, Value};
use std::rc::Rc;

/// A column visible in an execution schema.
#[derive(Debug, Clone)]
pub struct SchemaCol {
    /// Binding (table alias) the column belongs to, lowercase.
    pub binding: Option<String>,
    /// Column name, original spelling.
    pub name: String,
}

/// The shape of rows flowing through an operator.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    pub cols: Vec<SchemaCol>,
}

impl Schema {
    pub fn empty() -> Schema {
        Schema::default()
    }

    /// Schema exposing `table_schema` under `binding`.
    pub fn from_table(binding: &str, table_schema: &crate::catalog::TableSchema) -> Schema {
        Schema {
            cols: table_schema
                .columns
                .iter()
                .map(|c| SchemaCol {
                    binding: Some(binding.to_ascii_lowercase()),
                    name: c.name.clone(),
                })
                .collect(),
        }
    }

    /// Concatenation (for joins).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Schema { cols }
    }

    /// Resolves `[table.]name`, erroring on unknown or ambiguous references.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let table = table.map(|t| t.to_ascii_lowercase());
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            if !c.name.eq_ignore_ascii_case(name) {
                continue;
            }
            if let Some(t) = &table {
                if c.binding.as_deref() != Some(t.as_str()) {
                    continue;
                }
            }
            if found.is_some() {
                return Err(SqlError::Bind(format!(
                    "ambiguous column reference {}{name}",
                    table.map(|t| format!("{t}.")).unwrap_or_default()
                )));
            }
            found = Some(i);
        }
        found.ok_or_else(|| {
            SqlError::Bind(format!(
                "unknown column {}{name}",
                table.map(|t| format!("{t}.")).unwrap_or_default()
            ))
        })
    }

    /// True when the column reference resolves uniquely here.
    pub fn can_resolve(&self, table: Option<&str>, name: &str) -> bool {
        self.resolve(table, name).is_ok()
    }
}

/// A fully bound, directly evaluable expression.
#[derive(Debug, Clone)]
pub enum BExpr {
    Const(Value),
    Col(usize),
    Unary {
        op: UnaryOp,
        e: Box<BExpr>,
    },
    Binary {
        l: Box<BExpr>,
        op: BinaryOp,
        r: Box<BExpr>,
    },
    IsNull {
        e: Box<BExpr>,
        negated: bool,
    },
    /// `expr [NOT] IN (…)` against a pre-evaluated, sorted value list.
    /// NULLs are stripped from the list into `has_null`, which drives the
    /// three-valued result: `x NOT IN (…, NULL)` is never true.
    InList {
        e: Box<BExpr>,
        list: Rc<Vec<Value>>,
        has_null: bool,
        negated: bool,
    },
}

impl BExpr {
    /// True when the expression references no columns (safe to evaluate
    /// against an empty row).
    pub fn is_const(&self) -> bool {
        match self {
            BExpr::Const(_) => true,
            BExpr::Col(_) => false,
            BExpr::Unary { e, .. } => e.is_const(),
            BExpr::Binary { l, r, .. } => l.is_const() && r.is_const(),
            BExpr::IsNull { e, .. } => e.is_const(),
            BExpr::InList { e, .. } => e.is_const(),
        }
    }
}

/// Hashable row-key identity shared by GROUP BY and hash joins: a bare
/// integer for the common one-int-column key (no allocation), the
/// order-preserving byte encoding otherwise. Int and Float keys stay
/// distinct, exactly as the encoding keeps them.
#[derive(Hash, PartialEq, Eq, Clone)]
pub enum HashKey {
    Int(i64),
    Bytes(Vec<u8>),
}

impl HashKey {
    /// Builds the key for one evaluated key-column tuple.
    pub fn from_values(vals: &[Value]) -> Result<HashKey> {
        Ok(match vals {
            [Value::Int(i)] => HashKey::Int(*i),
            vals => HashKey::Bytes(
                fempath_storage::encode_key(vals)
                    .map_err(|_| SqlError::Eval("key contains an un-encodable value".into()))?,
            ),
        })
    }
}

/// Largest row index the bound expression reads, or `None` when it is
/// row-independent. Lets executors evaluate a predicate against a row
/// prefix (e.g. the target half of an UPDATE … FROM join) without
/// materializing the full combined row.
pub fn max_bound_col(e: &BExpr) -> Option<usize> {
    match e {
        BExpr::Const(_) => None,
        BExpr::Col(i) => Some(*i),
        BExpr::Unary { e, .. } => max_bound_col(e),
        BExpr::Binary { l, r, .. } => match (max_bound_col(l), max_bound_col(r)) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        },
        BExpr::IsNull { e, .. } => max_bound_col(e),
        BExpr::InList { e, .. } => max_bound_col(e),
    }
}

/// Everything binding/execution needs. `pool` is the buffer pool, `catalog`
/// resolves tables/views, `params` backs `?` placeholders.
pub struct ExecCtx<'a> {
    pub pool: &'a mut BufferPool,
    pub catalog: &'a Catalog,
    pub params: &'a [Value],
    /// When set (EXPLAIN), planning decisions are appended here.
    pub trace: Option<std::rc::Rc<std::cell::RefCell<Vec<String>>>>,
}

impl<'a> ExecCtx<'a> {
    /// Records one planner decision for EXPLAIN output.
    pub fn trace(&self, line: impl FnOnce() -> String) {
        if let Some(t) = &self.trace {
            t.borrow_mut().push(line());
        }
    }

    pub fn param(&self, i: usize) -> Result<Value> {
        self.params.get(i).cloned().ok_or(SqlError::ParamCount {
            expected: i + 1,
            got: self.params.len(),
        })
    }
}

/// Binds `expr` against `schema`, running subqueries through `ctx`.
pub fn bind_expr(ctx: &mut ExecCtx<'_>, schema: &Schema, expr: &Expr) -> Result<BExpr> {
    Ok(match expr {
        Expr::Literal(v) => BExpr::Const(v.clone()),
        Expr::Param(i) => BExpr::Const(ctx.param(*i)?),
        Expr::Column { table, name } => BExpr::Col(schema.resolve(table.as_deref(), name)?),
        Expr::Unary { op, expr } => BExpr::Unary {
            op: *op,
            e: Box::new(bind_expr(ctx, schema, expr)?),
        },
        Expr::Binary { left, op, right } => BExpr::Binary {
            l: Box::new(bind_expr(ctx, schema, left)?),
            op: *op,
            r: Box::new(bind_expr(ctx, schema, right)?),
        },
        Expr::IsNull { expr, negated } => BExpr::IsNull {
            e: Box::new(bind_expr(ctx, schema, expr)?),
            negated: *negated,
        },
        Expr::Subquery(q) => {
            let rel = super::select::execute_select(ctx, q)?;
            if rel.rows.len() > 1 {
                return Err(SqlError::Eval(
                    "scalar subquery returned more than one row".into(),
                ));
            }
            if let Some(row) = rel.rows.first() {
                if row.len() != 1 {
                    return Err(SqlError::Eval(
                        "scalar subquery must return exactly one column".into(),
                    ));
                }
                BExpr::Const(row[0].clone())
            } else {
                BExpr::Const(Value::Null)
            }
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let rel = super::select::execute_select(ctx, query)?;
            let mut list: Vec<Value> = rel
                .rows
                .into_iter()
                .map(|mut r| {
                    if r.len() != 1 {
                        return Err(SqlError::Eval(
                            "IN subquery must return exactly one column".into(),
                        ));
                    }
                    r.pop()
                        .ok_or_else(|| SqlError::Eval("IN subquery returned an empty row".into()))
                })
                .collect::<Result<_>>()?;
            // SQL three-valued logic: NULLs in the list never *match*, but
            // their presence means a non-matching probe compares UNKNOWN —
            // strip them into a flag instead of sorting them as values.
            let n = list.len();
            list.retain(|v| !v.is_null());
            let has_null = list.len() != n;
            list.sort_by(|a, b| a.total_cmp(b));
            list.dedup();
            BExpr::InList {
                e: Box::new(bind_expr(ctx, schema, expr)?),
                list: Rc::new(list),
                has_null,
                negated: *negated,
            }
        }
        Expr::Exists { query, negated } => {
            let rel = super::select::execute_select(ctx, query)?;
            let exists = !rel.rows.is_empty();
            BExpr::Const(Value::Int(i64::from(exists != *negated)))
        }
        Expr::Aggregate { .. } => {
            return Err(SqlError::Bind(
                "aggregate function not allowed in this context".into(),
            ))
        }
        Expr::Window { .. } => {
            return Err(SqlError::Bind(
                "window function not allowed in this context".into(),
            ))
        }
    })
}

/// SQL truthiness: non-zero numbers are true; NULL is not true.
pub fn truthy(v: &Value) -> bool {
    match v {
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        Value::Null => false,
        Value::Text(_) => false,
    }
}

/// Evaluates a bound expression against a row.
pub fn eval(e: &BExpr, row: &[Value]) -> Result<Value> {
    Ok(match e {
        BExpr::Const(v) => v.clone(),
        BExpr::Col(i) => row[*i].clone(),
        BExpr::Unary { op, e } => {
            let v = eval(e, row)?;
            match op {
                UnaryOp::Neg => match v {
                    Value::Int(i) => Value::Int(-i),
                    Value::Float(f) => Value::Float(-f),
                    Value::Null => Value::Null,
                    Value::Text(_) => return Err(SqlError::Eval("cannot negate text".into())),
                },
                UnaryOp::Not => match v {
                    Value::Null => Value::Null,
                    other => Value::Int(i64::from(!truthy(&other))),
                },
            }
        }
        BExpr::Binary { l, op, r } => {
            // Short-circuit logic operators.
            match op {
                BinaryOp::And => {
                    let lv = eval(l, row)?;
                    if !lv.is_null() && !truthy(&lv) {
                        return Ok(Value::Int(0));
                    }
                    let rv = eval(r, row)?;
                    if !rv.is_null() && !truthy(&rv) {
                        return Ok(Value::Int(0));
                    }
                    if lv.is_null() || rv.is_null() {
                        return Ok(Value::Null);
                    }
                    return Ok(Value::Int(1));
                }
                BinaryOp::Or => {
                    let lv = eval(l, row)?;
                    if truthy(&lv) {
                        return Ok(Value::Int(1));
                    }
                    let rv = eval(r, row)?;
                    if truthy(&rv) {
                        return Ok(Value::Int(1));
                    }
                    if lv.is_null() || rv.is_null() {
                        return Ok(Value::Null);
                    }
                    return Ok(Value::Int(0));
                }
                _ => {}
            }
            let lv = eval(l, row)?;
            let rv = eval(r, row)?;
            match op {
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                    arith(*op, lv, rv)?
                }
                BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq => {
                    if lv.is_null() || rv.is_null() {
                        Value::Null
                    } else {
                        let ord = lv.total_cmp(&rv);
                        let b = match op {
                            BinaryOp::Eq => ord.is_eq(),
                            BinaryOp::NotEq => ord.is_ne(),
                            BinaryOp::Lt => ord.is_lt(),
                            BinaryOp::LtEq => ord.is_le(),
                            BinaryOp::Gt => ord.is_gt(),
                            BinaryOp::GtEq => ord.is_ge(),
                            _ => unreachable!(),
                        };
                        Value::Int(i64::from(b))
                    }
                }
                BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
            }
        }
        BExpr::IsNull { e, negated } => {
            let v = eval(e, row)?;
            Value::Int(i64::from(v.is_null() != *negated))
        }
        BExpr::InList {
            e,
            list,
            has_null,
            negated,
        } => {
            let v = eval(e, row)?;
            in_list_result(&v, list, *has_null, *negated)
        }
    })
}

/// `[NOT] IN` result under SQL three-valued logic, shared by the
/// interpreter and the plan executor. `list` is sorted, deduplicated and
/// NULL-free; `has_null` records whether the subquery produced any NULL.
///
/// * empty list (no rows at all): `IN` is false / `NOT IN` is true, even
///   for a NULL probe;
/// * NULL probe over a non-empty list: UNKNOWN;
/// * probe found: `IN` true / `NOT IN` false;
/// * probe not found but the list had a NULL: UNKNOWN — in particular
///   `x NOT IN (…, NULL)` is never true;
/// * otherwise: `IN` false / `NOT IN` true.
pub(crate) fn in_list_result(v: &Value, list: &[Value], has_null: bool, negated: bool) -> Value {
    if list.is_empty() && !has_null {
        return Value::Int(i64::from(negated));
    }
    if v.is_null() {
        return Value::Null;
    }
    if list.binary_search_by(|x| x.total_cmp(v)).is_ok() {
        Value::Int(i64::from(!negated))
    } else if has_null {
        Value::Null
    } else {
        Value::Int(i64::from(negated))
    }
}

/// Arithmetic on two evaluated operands (shared with the plan executor).
pub(crate) fn arith(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            BinaryOp::Add => Value::Int(a.wrapping_add(b)),
            BinaryOp::Sub => Value::Int(a.wrapping_sub(b)),
            BinaryOp::Mul => Value::Int(a.wrapping_mul(b)),
            BinaryOp::Div => {
                if b == 0 {
                    return Err(SqlError::Eval("division by zero".into()));
                }
                Value::Int(a.wrapping_div(b))
            }
            BinaryOp::Mod => {
                if b == 0 {
                    return Err(SqlError::Eval("division by zero".into()));
                }
                Value::Int(a.wrapping_rem(b))
            }
            _ => unreachable!(),
        }),
        (l, r) => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(SqlError::Eval(
                        "arithmetic requires numeric operands".into(),
                    ))
                }
            };
            Ok(match op {
                BinaryOp::Add => Value::Float(a + b),
                BinaryOp::Sub => Value::Float(a - b),
                BinaryOp::Mul => Value::Float(a * b),
                BinaryOp::Div => {
                    if b == 0.0 {
                        return Err(SqlError::Eval("division by zero".into()));
                    }
                    Value::Float(a / b)
                }
                BinaryOp::Mod => {
                    if b == 0.0 {
                        return Err(SqlError::Eval("division by zero".into()));
                    }
                    Value::Float(a % b)
                }
                _ => unreachable!(),
            })
        }
    }
}

/// Splits an expression into its top-level AND conjuncts.
pub fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// True when every column reference in `expr` resolves in `schema`
/// (subqueries are opaque: they resolve independently, so they're allowed).
pub fn binds_in(expr: &Expr, schema: &Schema) -> bool {
    match expr {
        Expr::Column { table, name } => schema.can_resolve(table.as_deref(), name),
        Expr::Literal(_) | Expr::Param(_) => true,
        Expr::Unary { expr, .. } => binds_in(expr, schema),
        Expr::Binary { left, right, .. } => binds_in(left, schema) && binds_in(right, schema),
        Expr::IsNull { expr, .. } => binds_in(expr, schema),
        Expr::Subquery(_) | Expr::Exists { .. } => true,
        Expr::InSubquery { expr, .. } => binds_in(expr, schema),
        Expr::Aggregate { arg, .. } => arg.as_ref().is_none_or(|a| binds_in(a, schema)),
        Expr::Window {
            partition_by,
            order_by,
            ..
        } => {
            partition_by.iter().all(|e| binds_in(e, schema))
                && order_by.iter().all(|k| binds_in(&k.expr, schema))
        }
    }
}

/// True when `expr` references no columns at all (constant w.r.t. rows).
pub fn is_row_independent(expr: &Expr) -> bool {
    match expr {
        Expr::Column { .. } => false,
        Expr::Literal(_) | Expr::Param(_) => true,
        Expr::Unary { expr, .. } => is_row_independent(expr),
        Expr::Binary { left, right, .. } => is_row_independent(left) && is_row_independent(right),
        Expr::IsNull { expr, .. } => is_row_independent(expr),
        Expr::Subquery(_) | Expr::Exists { .. } => true,
        Expr::InSubquery { expr, .. } => is_row_independent(expr),
        Expr::Aggregate { .. } | Expr::Window { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_parts() -> (BufferPool, Catalog) {
        (BufferPool::in_memory(16), Catalog::new())
    }

    fn bind_const(expr: &Expr) -> BExpr {
        let (mut pool, catalog) = ctx_parts();
        let mut ctx = ExecCtx {
            pool: &mut pool,
            catalog: &catalog,
            params: &[],
            trace: None,
        };
        bind_expr(&mut ctx, &Schema::empty(), expr).unwrap()
    }

    fn eval_const(sql_expr: &str) -> Value {
        // Piggyback on the parser: SELECT <expr>.
        let stmt = crate::parser::parse_statement(&format!("SELECT {sql_expr}")).unwrap();
        let expr = match stmt {
            crate::ast::Stmt::Select(s) => match &s.items[0] {
                crate::ast::SelectItem::Expr { expr, .. } => expr.clone(),
                _ => panic!(),
            },
            _ => panic!(),
        };
        let b = bind_const(&expr);
        eval(&b, &[]).unwrap()
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_const("1 + 2 * 3"), Value::Int(7));
        assert_eq!(eval_const("(1 + 2) * 3"), Value::Int(9));
        assert_eq!(eval_const("7 / 2"), Value::Int(3));
        assert_eq!(eval_const("7.0 / 2"), Value::Float(3.5));
        assert_eq!(eval_const("7 % 3"), Value::Int(1));
        assert_eq!(eval_const("-5 + 2"), Value::Int(-3));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval_const("1 < 2"), Value::Int(1));
        assert_eq!(eval_const("2 <= 1"), Value::Int(0));
        assert_eq!(eval_const("1 = 1.0"), Value::Int(1));
        assert_eq!(eval_const("1 <> 2 AND 3 > 2"), Value::Int(1));
        assert_eq!(eval_const("1 > 2 OR 0 = 1"), Value::Int(0));
        assert_eq!(eval_const("NOT 0"), Value::Int(1));
    }

    #[test]
    fn null_semantics() {
        assert_eq!(eval_const("NULL + 1"), Value::Null);
        assert_eq!(eval_const("NULL = NULL"), Value::Null);
        assert_eq!(eval_const("NULL IS NULL"), Value::Int(1));
        assert_eq!(eval_const("1 IS NOT NULL"), Value::Int(1));
        // NULL AND false = false; NULL AND true = NULL.
        assert_eq!(eval_const("NULL AND 0"), Value::Int(0));
        assert_eq!(eval_const("NULL AND 1"), Value::Null);
        assert_eq!(eval_const("NULL OR 1"), Value::Int(1));
    }

    #[test]
    fn division_by_zero_errors() {
        let stmt = crate::parser::parse_statement("SELECT 1/0").unwrap();
        let expr = match stmt {
            crate::ast::Stmt::Select(s) => match &s.items[0] {
                crate::ast::SelectItem::Expr { expr, .. } => expr.clone(),
                _ => panic!(),
            },
            _ => panic!(),
        };
        let b = bind_const(&expr);
        assert!(eval(&b, &[]).is_err());
    }

    #[test]
    fn schema_resolution() {
        let schema = Schema {
            cols: vec![
                SchemaCol {
                    binding: Some("q".into()),
                    name: "nid".into(),
                },
                SchemaCol {
                    binding: Some("e".into()),
                    name: "nid".into(),
                },
                SchemaCol {
                    binding: Some("e".into()),
                    name: "cost".into(),
                },
            ],
        };
        assert_eq!(schema.resolve(Some("q"), "nid").unwrap(), 0);
        assert_eq!(schema.resolve(Some("E"), "NID").unwrap(), 1);
        assert_eq!(schema.resolve(None, "cost").unwrap(), 2);
        assert!(schema.resolve(None, "nid").is_err(), "ambiguous");
        assert!(schema.resolve(None, "zzz").is_err(), "unknown");
    }

    #[test]
    fn params_bind_as_constants() {
        let (mut pool, catalog) = ctx_parts();
        let params = vec![Value::Int(42)];
        let mut ctx = ExecCtx {
            pool: &mut pool,
            catalog: &catalog,
            params: &params,
            trace: None,
        };
        let b = bind_expr(&mut ctx, &Schema::empty(), &Expr::Param(0)).unwrap();
        assert_eq!(eval(&b, &[]).unwrap(), Value::Int(42));
        assert!(bind_expr(&mut ctx, &Schema::empty(), &Expr::Param(1)).is_err());
    }

    #[test]
    fn split_conjuncts_flattens_ands() {
        let stmt =
            crate::parser::parse_statement("SELECT 1 WHERE a = 1 AND b = 2 AND (c = 3 OR d = 4)")
                .unwrap();
        let filter = match stmt {
            crate::ast::Stmt::Select(s) => s.filter.unwrap(),
            _ => panic!(),
        };
        assert_eq!(split_conjuncts(&filter).len(), 3);
    }
}
