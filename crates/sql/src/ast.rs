//! Abstract syntax tree for the SQL subset the engine speaks.
//!
//! The subset is dictated by the paper's Listings 2–4 plus general-purpose
//! DDL/DML: SELECT with joins, scalar subqueries, IN/NOT IN, GROUP
//! BY/HAVING, ORDER BY, TOP/LIMIT, window functions (`ROW_NUMBER`/`RANK`
//! with `OVER (PARTITION BY … ORDER BY …)`), INSERT (values or query),
//! UPDATE (including `UPDATE … FROM`), DELETE, MERGE, CREATE/DROP
//! TABLE/INDEX/VIEW, and TRUNCATE.

use fempath_storage::{DataType, Value};

/// Any statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    CreateTable(CreateTable),
    CreateIndex(CreateIndex),
    CreateView {
        name: String,
        query: Box<Select>,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    DropIndex {
        name: String,
    },
    DropView {
        name: String,
    },
    Truncate {
        table: String,
    },
    Insert(Insert),
    Update(Update),
    Delete(Delete),
    Merge(Merge),
    Select(Box<Select>),
    /// `EXPLAIN <select>` — runs the query and reports the plan decisions
    /// taken (EXPLAIN ANALYZE semantics).
    Explain(Box<Stmt>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// `PRIMARY KEY (col, …)` — creates a unique secondary index.
    pub primary_key: Option<Vec<String>>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
    pub unique: bool,
    /// Clustered indexes re-organize the table as a B+tree on the key —
    /// the `CluIndex` configuration of Fig 8(c).
    pub clustered: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Box<Select>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    /// Optional explicit column list.
    pub columns: Option<Vec<String>>,
    pub source: InsertSource,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    pub alias: Option<String>,
    pub assignments: Vec<(String, Expr)>,
    /// `UPDATE t SET … FROM s WHERE …` — the TSQL-mode merge replacement.
    pub from: Option<TableRef>,
    pub filter: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub filter: Option<Expr>,
}

/// `MERGE INTO target USING source ON (cond) WHEN MATCHED [AND …] THEN
/// UPDATE SET … WHEN NOT MATCHED THEN INSERT (…) VALUES (…)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    pub target: String,
    pub target_alias: Option<String>,
    pub source: TableRef,
    pub on: Expr,
    pub when_matched: Option<MergeMatched>,
    pub when_not_matched: Option<MergeInsert>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct MergeMatched {
    /// Extra predicate: `WHEN MATCHED AND target.d2s > source.cost`.
    pub condition: Option<Expr>,
    pub assignments: Vec<(String, Expr)>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct MergeInsert {
    pub columns: Vec<String>,
    pub values: Vec<Expr>,
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    /// `SELECT TOP n …` (Listing 2(2) of the paper).
    pub top: Option<u64>,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub filter: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<u64>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expr,
    pub asc: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    Expr {
        expr: Expr,
        alias: Option<String>,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Named {
        name: String,
        alias: Option<String>,
    },
    /// `FROM (SELECT …) alias (col, …)` — derived table with optional
    /// column renaming, used heavily by the paper's E-operator SQL.
    Derived {
        query: Box<Select>,
        alias: String,
        columns: Option<Vec<String>>,
    },
}

impl TableRef {
    /// The binding name this relation is visible under.
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Named { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Derived { alias, .. } => alias,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }
}

/// Window functions supported in `OVER` clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowFunc {
    /// `ROW_NUMBER()` — 1, 2, 3, … within each partition.
    RowNumber,
    /// `RANK()` — ties share a rank, gaps follow.
    Rank,
}

#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    /// Column reference, optionally qualified.
    Column {
        table: Option<String>,
        name: String,
    },
    /// `?` positional parameter (0-based ordinal assigned by the parser).
    Param(usize),
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// Aggregate call; `arg == None` means `COUNT(*)`.
    Aggregate {
        func: AggFunc,
        arg: Option<Box<Expr>>,
    },
    /// `func() OVER (PARTITION BY … ORDER BY …)`.
    Window {
        func: WindowFunc,
        partition_by: Vec<Expr>,
        order_by: Vec<OrderKey>,
    },
    /// Scalar subquery (must yield ≤ 1 row, 1 column).
    Subquery(Box<Select>),
    /// `expr [NOT] IN (SELECT …)`.
    InSubquery {
        expr: Box<Expr>,
        query: Box<Select>,
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT …)`.
    Exists {
        query: Box<Select>,
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for `a AND b` chains.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op: BinaryOp::And,
            right: Box::new(other),
        }
    }

    /// True when the expression (recursively) contains an aggregate call
    /// outside of subqueries.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }

    /// True when the expression (recursively) contains a window function.
    pub fn contains_window(&self) -> bool {
        match self {
            Expr::Window { .. } => true,
            Expr::Unary { expr, .. } => expr.contains_window(),
            Expr::Binary { left, right, .. } => left.contains_window() || right.contains_window(),
            Expr::IsNull { expr, .. } => expr.contains_window(),
            _ => false,
        }
    }
}
