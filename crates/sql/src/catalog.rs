//! Catalog: tables, their physical storage, indexes, and views.
//!
//! A table is either a **heap** (unordered slotted pages) or **clustered**
//! (index-organized: rows live in a B+tree keyed by the clustering columns).
//! Secondary indexes map encoded key columns to a row locator. These are the
//! three physical configurations the paper sweeps in Fig 8(c):
//! `NoIndex` (heap, no indexes), `Index` (heap + secondary B+tree), and
//! `CluIndex` (index-organized table).

use crate::ast::ColumnDef;
use crate::error::{Result, SqlError};
use fempath_storage::{
    decode_edge_segment, decode_edge_segment_with, decode_row, encode_key, encode_key_into,
    encode_row, encode_row_from_chunk, encode_row_into, BTree, BTreeBulkBuilder, BTreeScanCursor,
    BufferPool, Chunk, Column, DataType, HeapFile, HeapScanCursor, RecordId, SegmentWriter, Value,
};
use std::collections::{HashMap, HashSet};
use std::ops::Bound;

/// Where a row physically lives.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RowLoc {
    /// Heap record id.
    Heap(RecordId),
    /// Full B+tree key of a clustered table (key columns + uniquifier).
    Clustered(Vec<u8>),
}

impl RowLoc {
    /// Serializes the locator for storage inside a secondary-index entry.
    fn to_bytes(&self) -> Vec<u8> {
        match self {
            RowLoc::Heap(rid) => rid.to_u64().to_be_bytes().to_vec(),
            RowLoc::Clustered(k) => k.clone(),
        }
    }

    fn from_bytes(bytes: &[u8], clustered: bool) -> Result<RowLoc> {
        if clustered {
            Ok(RowLoc::Clustered(bytes.to_vec()))
        } else {
            let raw: [u8; 8] = bytes.try_into().map_err(|_| {
                SqlError::Catalog(format!(
                    "corrupt index entry: heap locator must be 8 bytes, got {}",
                    bytes.len()
                ))
            })?;
            Ok(RowLoc::Heap(RecordId::from_u64(u64::from_be_bytes(raw))))
        }
    }
}

/// Physical storage of a table.
///
/// `Clone` duplicates only the in-memory handles (heap metadata / tree
/// root); see [`Catalog`]'s `Clone` note for when that is sound.
#[derive(Clone)]
pub enum TableStorage {
    Heap(HeapFile),
    Clustered {
        tree: BTree,
        /// Column positions forming the clustering key.
        key_cols: Vec<usize>,
        /// Whether the clustering key is declared unique.
        unique: bool,
        /// Monotonic uniquifier appended to non-unique clustering keys.
        next_uniquifier: u64,
    },
    /// Segment-compressed edge storage (DESIGN.md §14): runs of
    /// `(fid, tid, cost)` rows delta-encoded into varint blobs, each blob a
    /// single B+tree value keyed by `(last_fid, seq)`. The bulk of the
    /// table is filled once via [`Table::bulk_load_segments`]; later
    /// mutations go through a small row-store **delta overlay**
    /// (DESIGN.md §16): INSERTs land in the `delta` heap, DELETEs
    /// tombstone base `(fid, tid)` pairs and physically remove delta
    /// rows ([`Table::delta_delete_edge`]). Every read path merges
    /// base-minus-tombstones with the delta. SQL UPDATE/DELETE are
    /// still rejected (base rows have no per-row locators).
    Segmented {
        tree: BTree,
        /// Column positions usable as an ordered access path — always the
        /// leading `fid` column for the 3-column edge schema.
        key_cols: Vec<usize>,
        /// Total edges across all segments (`tree.len()` counts segments,
        /// not rows), *including* edges suppressed by `tombstones`.
        rows: u64,
        /// Row-store overlay holding post-load inserts.
        delta: HeapFile,
        /// Rows currently in `delta` (live, after physical deletes).
        delta_rows: u64,
        /// Base `(fid, tid)` pairs whose segment edges are suppressed.
        /// A pair tombstones *all* parallel base edges between the two
        /// endpoints, matching edge-level delete semantics.
        tombstones: HashSet<(i64, i64)>,
        /// Base edges suppressed by `tombstones` (so `len()` stays O(1)).
        dead_rows: u64,
    },
}

/// A secondary index.
#[derive(Clone)]
pub struct SecondaryIndex {
    pub name: String,
    pub cols: Vec<usize>,
    pub unique: bool,
    pub tree: BTree,
}

/// Table schema: column names (original case preserved) and types.
#[derive(Debug, Clone)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Case-insensitive column lookup.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// Resolved access path for an equality probe (see
/// [`Table::lookup_eq`] / [`Table::lookup_eq_chunk`]).
enum EqAccessPath {
    /// Prefix scan of the clustered tree with this encoded key prefix.
    ClusteredPrefix(Vec<u8>),
    /// Ordered segment scan of segmented storage for this `fid`: start at
    /// the first segment whose `last_fid` key reaches the probe, stop at
    /// the first whose opening edge is past it.
    SegmentedFid(i64),
    /// Row locators collected from a secondary index.
    Secondary(Vec<RowLoc>),
    /// No usable index — scan and filter.
    Scan,
}

/// Scan-fallback equality predicate (NULLs never match).
fn eq_match(row: &[Value], cols: &[usize], key_vals: &[Value]) -> bool {
    cols.iter()
        .zip(key_vals)
        .all(|(&c, v)| !row[c].is_null() && row[c].total_cmp(v).is_eq())
}

/// A resumable batched-scan position over a table's storage
/// (see [`Table::batch_cursor`] / [`Table::next_batch`]).
pub enum TableBatchCursor {
    Heap(HeapScanCursor),
    Clustered(BTreeScanCursor),
    Segmented(SegmentScanCursor),
}

/// Resume point of a batched scan over segmented storage: the key of the
/// segment last touched plus how many of its raw (pre-tombstone-filter)
/// edges were already consumed (a segment can straddle two batches when
/// `max` lands inside it). Once the base segments are exhausted the scan
/// continues into the delta overlay via `delta`.
#[derive(Default)]
pub struct SegmentScanCursor {
    cur_key: Option<Vec<u8>>,
    skip: usize,
    done: bool,
    delta: HeapScanCursor,
}

/// A table: schema + storage + indexes.
#[derive(Clone)]
pub struct Table {
    pub schema: TableSchema,
    pub storage: TableStorage,
    pub indexes: Vec<SecondaryIndex>,
}

impl Table {
    fn is_clustered(&self) -> bool {
        matches!(self.storage, TableStorage::Clustered { .. })
    }

    /// True when the table uses segment-compressed edge storage (base
    /// rows immutable, mutations via the delta overlay).
    pub fn is_segmented(&self) -> bool {
        matches!(self.storage, TableStorage::Segmented { .. })
    }

    /// Columns that give this table an *ordered* physical access path: the
    /// clustering key of an index-organised table, or the leading `fid`
    /// column of segmented edge storage. `None` for plain heaps. Planner
    /// code uses this instead of matching [`TableStorage`] directly so both
    /// ordered storages pick up index-driven plans.
    pub fn clustered_key_cols(&self) -> Option<&[usize]> {
        match &self.storage {
            TableStorage::Clustered { key_cols, .. } | TableStorage::Segmented { key_cols, .. } => {
                Some(key_cols)
            }
            TableStorage::Heap(_) => None,
        }
    }

    fn read_only_err(&self) -> SqlError {
        SqlError::Eval(format!(
            "table {} is segment-compressed: base rows are immutable \
             (use INSERT / delta_delete_edge for edge mutations)",
            self.schema.name
        ))
    }

    /// Number of rows.
    pub fn len(&self) -> u64 {
        match &self.storage {
            TableStorage::Heap(h) => h.len(),
            TableStorage::Clustered { tree, .. } => tree.len(),
            TableStorage::Segmented {
                rows,
                delta_rows,
                dead_rows,
                ..
            } => *rows - *dead_rows + *delta_rows,
        }
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coerces `row` to the schema's declared types (Int ↔ Float), erroring
    /// on arity or type mismatch.
    pub fn coerce_row(&self, mut row: Vec<Value>) -> Result<Vec<Value>> {
        if row.len() != self.schema.columns.len() {
            return Err(SqlError::Eval(format!(
                "table {} expects {} columns, got {}",
                self.schema.name,
                self.schema.columns.len(),
                row.len()
            )));
        }
        for (v, col) in row.iter_mut().zip(&self.schema.columns) {
            let coerced = match (col.dtype, &*v) {
                (_, Value::Null) => Value::Null,
                (DataType::Int, Value::Int(i)) => Value::Int(*i),
                (DataType::Int, Value::Float(f)) => Value::Int(*f as i64),
                (DataType::Float, Value::Int(i)) => Value::Float(*i as f64),
                (DataType::Float, Value::Float(f)) => Value::Float(*f),
                (DataType::Text, Value::Text(s)) => Value::Text(s.clone()),
                (want, got) => {
                    return Err(SqlError::Eval(format!(
                        "column {}.{} expects {want}, got {got:?}",
                        self.schema.name, col.name
                    )))
                }
            };
            *v = coerced;
        }
        Ok(row)
    }

    /// Inserts a (already coerced) row, maintaining all indexes. On a
    /// segmented table the row lands in the delta overlay (segmented
    /// tables cannot have secondary indexes, so no index maintenance).
    pub fn insert_row(&mut self, pool: &mut BufferPool, row: &[Value]) -> Result<RowLoc> {
        if self.is_segmented() {
            if row.iter().any(|v| !matches!(v, Value::Int(_))) {
                return Err(SqlError::Eval(format!(
                    "table {} is segment-compressed: delta rows must be non-NULL integers",
                    self.schema.name
                )));
            }
            let bytes = encode_row(row);
            let TableStorage::Segmented {
                delta, delta_rows, ..
            } = &mut self.storage
            else {
                unreachable!("checked above");
            };
            let rid = delta.insert(pool, &bytes)?;
            *delta_rows += 1;
            return Ok(RowLoc::Heap(rid));
        }
        let bytes = encode_row(row);
        let loc = match &mut self.storage {
            TableStorage::Heap(h) => RowLoc::Heap(h.insert(pool, &bytes)?),
            TableStorage::Clustered {
                tree,
                key_cols,
                unique,
                next_uniquifier,
            } => {
                let mut key =
                    encode_key(&key_cols.iter().map(|&c| row[c].clone()).collect::<Vec<_>>())?;
                if *unique {
                    if tree.contains(pool, &key)? {
                        return Err(SqlError::DuplicateKey {
                            table: self.schema.name.clone(),
                            key: format_key(row, key_cols),
                        });
                    }
                } else {
                    key.extend_from_slice(&next_uniquifier.to_be_bytes());
                    *next_uniquifier += 1;
                }
                tree.insert(pool, &key, &bytes)?;
                RowLoc::Clustered(key)
            }
            TableStorage::Segmented { .. } => unreachable!("guarded above"),
        };
        // Maintain secondary indexes; roll back is not attempted (single
        // writer, errors abort the statement).
        let clustered = self.is_clustered();
        for idx in &mut self.indexes {
            let mut key =
                encode_key(&idx.cols.iter().map(|&c| row[c].clone()).collect::<Vec<_>>())?;
            if idx.unique {
                if idx.tree.contains(pool, &key)? {
                    // Undo the base insert to keep table/indexes agreed.
                    match (&mut self.storage, &loc) {
                        (TableStorage::Heap(h), RowLoc::Heap(rid)) => h.delete(pool, *rid)?,
                        (TableStorage::Clustered { tree, .. }, RowLoc::Clustered(k)) => {
                            tree.delete(pool, k)?;
                        }
                        _ => unreachable!(),
                    }
                    return Err(SqlError::DuplicateKey {
                        table: self.schema.name.clone(),
                        key: format_key(row, &idx.cols),
                    });
                }
                idx.tree.insert(pool, &key, &loc.to_bytes())?;
            } else {
                key.extend_from_slice(&loc.to_bytes());
                idx.tree.insert(pool, &key, &[])?;
            }
        }
        let _ = clustered;
        Ok(loc)
    }

    /// Deletes the row at `loc` (the caller supplies the decoded row so
    /// index entries can be located without a re-read).
    pub fn delete_row(&mut self, pool: &mut BufferPool, loc: &RowLoc, row: &[Value]) -> Result<()> {
        if self.is_segmented() {
            return Err(self.read_only_err());
        }
        match (&mut self.storage, loc) {
            (TableStorage::Heap(h), RowLoc::Heap(rid)) => h.delete(pool, *rid)?,
            (TableStorage::Clustered { tree, .. }, RowLoc::Clustered(k)) => {
                tree.delete(pool, k)?;
            }
            _ => {
                return Err(SqlError::Eval(
                    "row locator does not match table storage".into(),
                ))
            }
        }
        for idx in &mut self.indexes {
            let mut key =
                encode_key(&idx.cols.iter().map(|&c| row[c].clone()).collect::<Vec<_>>())?;
            if !idx.unique {
                key.extend_from_slice(&loc.to_bytes());
            }
            idx.tree.delete(pool, &key)?;
        }
        Ok(())
    }

    /// Replaces the row at `loc` with `new_row`, maintaining indexes.
    /// Returns the (possibly new) locator.
    pub fn update_row(
        &mut self,
        pool: &mut BufferPool,
        loc: &RowLoc,
        old_row: &[Value],
        new_row: &[Value],
    ) -> Result<RowLoc> {
        if self.is_segmented() {
            return Err(self.read_only_err());
        }
        let bytes = encode_row(new_row);
        let new_loc = match (&mut self.storage, loc) {
            (TableStorage::Heap(h), RowLoc::Heap(rid)) => {
                RowLoc::Heap(h.update(pool, *rid, &bytes)?)
            }
            (
                TableStorage::Clustered {
                    tree,
                    key_cols,
                    unique,
                    next_uniquifier,
                },
                RowLoc::Clustered(old_key),
            ) => {
                let key_changed = key_cols.iter().any(|&c| old_row[c] != new_row[c]);
                if key_changed {
                    let mut key = encode_key(
                        &key_cols
                            .iter()
                            .map(|&c| new_row[c].clone())
                            .collect::<Vec<_>>(),
                    )?;
                    if *unique {
                        if tree.contains(pool, &key)? {
                            return Err(SqlError::DuplicateKey {
                                table: self.schema.name.clone(),
                                key: format_key(new_row, key_cols),
                            });
                        }
                    } else {
                        key.extend_from_slice(&next_uniquifier.to_be_bytes());
                        *next_uniquifier += 1;
                    }
                    tree.delete(pool, old_key)?;
                    tree.insert(pool, &key, &bytes)?;
                    RowLoc::Clustered(key)
                } else {
                    tree.insert(pool, old_key, &bytes)?;
                    RowLoc::Clustered(old_key.clone())
                }
            }
            _ => {
                return Err(SqlError::Eval(
                    "row locator does not match table storage".into(),
                ))
            }
        };
        for idx in &mut self.indexes {
            let old_vals: Vec<Value> = idx.cols.iter().map(|&c| old_row[c].clone()).collect();
            let new_vals: Vec<Value> = idx.cols.iter().map(|&c| new_row[c].clone()).collect();
            if old_vals == new_vals && new_loc == *loc {
                continue;
            }
            let mut old_key = encode_key(&old_vals)?;
            let mut new_key = encode_key(&new_vals)?;
            if idx.unique {
                idx.tree.delete(pool, &old_key)?;
                idx.tree.insert(pool, &new_key, &new_loc.to_bytes())?;
            } else {
                old_key.extend_from_slice(&loc.to_bytes());
                new_key.extend_from_slice(&new_loc.to_bytes());
                idx.tree.delete(pool, &old_key)?;
                idx.tree.insert(pool, &new_key, &[])?;
            }
        }
        Ok(new_loc)
    }

    /// Full scan in storage order; `f` returns `false` to stop.
    pub fn scan(
        &self,
        pool: &mut BufferPool,
        mut f: impl FnMut(RowLoc, Vec<Value>) -> bool,
    ) -> Result<()> {
        match &self.storage {
            TableStorage::Heap(h) => {
                let mut decode_err = None;
                h.scan(pool, |rid, bytes| match decode_row(bytes) {
                    Ok(row) => f(RowLoc::Heap(rid), row),
                    Err(e) => {
                        decode_err = Some(e);
                        false
                    }
                })?;
                if let Some(e) = decode_err {
                    return Err(e.into());
                }
            }
            TableStorage::Clustered { tree, .. } => {
                let mut decode_err = None;
                tree.scan_range(
                    pool,
                    Bound::Unbounded,
                    Bound::Unbounded,
                    |k, v| match decode_row(v) {
                        Ok(row) => f(RowLoc::Clustered(k.to_vec()), row),
                        Err(e) => {
                            decode_err = Some(e);
                            false
                        }
                    },
                )?;
                if let Some(e) = decode_err {
                    return Err(e.into());
                }
            }
            TableStorage::Segmented {
                tree,
                delta,
                tombstones,
                ..
            } => {
                // Decode each segment in key order; base edges come out
                // sorted by (fid, tid, cost), tombstoned pairs suppressed.
                // Rows of one segment share its key as a (non-unique)
                // locator — fine for reads, and base-row DML on segmented
                // tables is rejected before locators matter. Delta-overlay
                // rows follow in heap order with real heap locators.
                let mut decode_err = None;
                let mut go = true;
                tree.scan_range(pool, Bound::Unbounded, Bound::Unbounded, |k, v| {
                    let res = decode_edge_segment_with(v, |ef, et, ec| {
                        if go && !tombstones.contains(&(ef, et)) {
                            go = f(
                                RowLoc::Clustered(k.to_vec()),
                                vec![Value::Int(ef), Value::Int(et), Value::Int(ec)],
                            );
                        }
                    });
                    if let Err(e) = res {
                        decode_err = Some(e);
                        return false;
                    }
                    go
                })?;
                if let Some(e) = decode_err {
                    return Err(e.into());
                }
                if go {
                    delta.scan(pool, |rid, bytes| match decode_row(bytes) {
                        Ok(row) => f(RowLoc::Heap(rid), row),
                        Err(e) => {
                            decode_err = Some(e);
                            false
                        }
                    })?;
                    if let Some(e) = decode_err {
                        return Err(e.into());
                    }
                }
            }
        }
        Ok(())
    }

    /// Fetches the row stored at `loc`.
    pub fn fetch(&self, pool: &mut BufferPool, loc: &RowLoc) -> Result<Vec<Value>> {
        match (&self.storage, loc) {
            (TableStorage::Heap(h), RowLoc::Heap(rid)) => Ok(decode_row(&h.get(pool, *rid)?)?),
            (TableStorage::Clustered { tree, .. }, RowLoc::Clustered(k)) => {
                let bytes = tree
                    .get(pool, k)?
                    .ok_or_else(|| SqlError::Eval("dangling clustered locator".into()))?;
                Ok(decode_row(&bytes)?)
            }
            (TableStorage::Segmented { delta, .. }, RowLoc::Heap(rid)) => {
                // Delta-overlay rows do have heap locators.
                Ok(decode_row(&delta.get(pool, *rid)?)?)
            }
            (TableStorage::Segmented { .. }, _) => Err(SqlError::Eval(
                "segmented base storage has no per-row locators".into(),
            )),
            _ => Err(SqlError::Eval(
                "row locator does not match table storage".into(),
            )),
        }
    }

    /// Rows whose values in `cols` equal `key_vals`, using the best
    /// available access path:
    ///
    /// 1. clustered tree prefix scan when `cols` is a prefix of the
    ///    clustering key,
    /// 2. secondary index (unique → point lookup, else prefix scan),
    /// 3. full scan fallback.
    ///
    /// Returns `(used_index, matches)` so callers/plans can report access
    /// paths.
    pub fn lookup_eq(
        &self,
        pool: &mut BufferPool,
        cols: &[usize],
        key_vals: &[Value],
        mut f: impl FnMut(RowLoc, Vec<Value>) -> bool,
    ) -> Result<bool> {
        match self.resolve_eq_path(pool, cols, key_vals)? {
            EqAccessPath::ClusteredPrefix(prefix) => {
                let TableStorage::Clustered { tree, .. } = &self.storage else {
                    unreachable!("clustered path implies clustered storage");
                };
                let mut decode_err = None;
                tree.scan_prefix(pool, &prefix, |k, v| match decode_row(v) {
                    Ok(row) => f(RowLoc::Clustered(k.to_vec()), row),
                    Err(e) => {
                        decode_err = Some(e);
                        false
                    }
                })?;
                if let Some(e) = decode_err {
                    return Err(e.into());
                }
                Ok(true)
            }
            EqAccessPath::SegmentedFid(fid) => {
                let TableStorage::Segmented {
                    tree,
                    delta,
                    tombstones,
                    ..
                } = &self.storage
                else {
                    unreachable!("segmented path implies segmented storage");
                };
                let lo = encode_key(&[Value::Int(fid)])?;
                let mut decode_err = None;
                let mut go = true;
                tree.scan_range(pool, Bound::Included(&lo), Bound::Unbounded, |k, v| {
                    let edges = match decode_edge_segment(v) {
                        Ok(e) => e,
                        Err(e) => {
                            decode_err = Some(e);
                            return false;
                        }
                    };
                    // Segments are keyed by last fid, so the run holding
                    // `fid` starts here; stop at the first segment that
                    // opens past it.
                    if edges.first().is_some_and(|e| e.0 > fid) {
                        return false;
                    }
                    for (ef, et, ec) in edges {
                        if ef == fid
                            && !tombstones.contains(&(ef, et))
                            && !f(
                                RowLoc::Clustered(k.to_vec()),
                                vec![Value::Int(ef), Value::Int(et), Value::Int(ec)],
                            )
                        {
                            go = false;
                            return false;
                        }
                    }
                    true
                })?;
                if let Some(e) = decode_err {
                    return Err(e.into());
                }
                if go {
                    // Delta-overlay rows for this fid (unsorted tail).
                    delta.scan(pool, |rid, bytes| match decode_row(bytes) {
                        Ok(row) => {
                            if row.first().and_then(|v| v.as_i64()) == Some(fid) {
                                f(RowLoc::Heap(rid), row)
                            } else {
                                true
                            }
                        }
                        Err(e) => {
                            decode_err = Some(e);
                            false
                        }
                    })?;
                    if let Some(e) = decode_err {
                        return Err(e.into());
                    }
                }
                Ok(true)
            }
            EqAccessPath::Secondary(locs) => {
                for loc in locs {
                    let row = self.fetch(pool, &loc)?;
                    if !f(loc, row) {
                        break;
                    }
                }
                Ok(true)
            }
            EqAccessPath::Scan => {
                self.scan(pool, |loc, row| {
                    if eq_match(&row, cols, key_vals) {
                        f(loc, row)
                    } else {
                        true
                    }
                })?;
                Ok(false)
            }
        }
    }

    /// Like [`Table::lookup_eq`], but decodes every match straight into
    /// the columns of `chunk` (appending) — the batched probe the
    /// vectorized join stages use, avoiding one row materialization and
    /// value clone per match. Shares `Table::resolve_eq_path` with
    /// `lookup_eq`, so the two executors cannot drift in access-path
    /// choice.
    pub fn lookup_eq_chunk(
        &self,
        pool: &mut BufferPool,
        cols: &[usize],
        key_vals: &[Value],
        chunk: &mut Chunk,
    ) -> Result<bool> {
        match self.resolve_eq_path(pool, cols, key_vals)? {
            EqAccessPath::ClusteredPrefix(prefix) => {
                let TableStorage::Clustered { tree, .. } = &self.storage else {
                    unreachable!("clustered path implies clustered storage");
                };
                let mut decode_err = None;
                tree.scan_prefix(
                    pool,
                    &prefix,
                    |_, v| match fempath_storage::decode_row_into_chunk(v, chunk) {
                        Ok(()) => true,
                        Err(e) => {
                            decode_err = Some(e);
                            false
                        }
                    },
                )?;
                if let Some(e) = decode_err {
                    return Err(e.into());
                }
                Ok(true)
            }
            EqAccessPath::SegmentedFid(fid) => {
                // The FEM expansion hot path: decode matching edges
                // straight into the chunk's int columns, no Vec<Value>
                // per row.
                let TableStorage::Segmented {
                    tree,
                    delta,
                    tombstones,
                    ..
                } = &self.storage
                else {
                    unreachable!("segmented path implies segmented storage");
                };
                if chunk.is_empty() && chunk.width() != 3 {
                    chunk.set_width(3);
                }
                if chunk.width() != 3 {
                    return Err(SqlError::Eval(
                        "segmented probe chunk must be 3 columns wide".into(),
                    ));
                }
                let lo = encode_key(&[Value::Int(fid)])?;
                let mut decode_err = None;
                tree.scan_range(pool, Bound::Included(&lo), Bound::Unbounded, |_, v| {
                    let mut past = false;
                    let mut first = true;
                    let res = decode_edge_segment_with(v, |ef, et, ec| {
                        if first {
                            first = false;
                            if ef > fid {
                                past = true;
                            }
                        }
                        if ef == fid && !tombstones.contains(&(ef, et)) {
                            chunk.col_mut(0).push_int(ef);
                            chunk.col_mut(1).push_int(et);
                            chunk.col_mut(2).push_int(ec);
                            chunk.commit_row();
                        }
                    });
                    if let Err(e) = res {
                        decode_err = Some(e);
                        return false;
                    }
                    !past
                })?;
                if let Some(e) = decode_err {
                    return Err(e.into());
                }
                // Delta-overlay rows for this fid (unsorted tail).
                delta.scan(pool, |_, bytes| match decode_row(bytes) {
                    Ok(row) => {
                        if row.first().and_then(|v| v.as_i64()) == Some(fid) {
                            chunk.push_row(&row);
                        }
                        true
                    }
                    Err(e) => {
                        decode_err = Some(e);
                        false
                    }
                })?;
                if let Some(e) = decode_err {
                    return Err(e.into());
                }
                Ok(true)
            }
            EqAccessPath::Secondary(locs) => {
                for loc in locs {
                    match (&self.storage, &loc) {
                        (TableStorage::Heap(h), RowLoc::Heap(rid)) => {
                            let bytes = h.get(pool, *rid)?;
                            fempath_storage::decode_row_into_chunk(&bytes, chunk)?;
                        }
                        (TableStorage::Clustered { tree, .. }, RowLoc::Clustered(k)) => {
                            let bytes = tree.get(pool, k)?.ok_or_else(|| {
                                SqlError::Eval("dangling clustered locator".into())
                            })?;
                            fempath_storage::decode_row_into_chunk(&bytes, chunk)?;
                        }
                        _ => {
                            return Err(SqlError::Eval(
                                "row locator does not match table storage".into(),
                            ))
                        }
                    }
                }
                Ok(true)
            }
            EqAccessPath::Scan => {
                // Needs the decoded row for the comparison anyway.
                self.scan(pool, |_, row| {
                    if eq_match(&row, cols, key_vals) {
                        chunk.push_row(&row);
                    }
                    true
                })?;
                Ok(false)
            }
        }
    }

    /// Access-path selection shared by [`Table::lookup_eq`] and
    /// [`Table::lookup_eq_chunk`]:
    ///
    /// 1. clustered tree prefix when `cols` is a prefix of the clustering
    ///    key,
    /// 2. secondary index (unique → point lookup, else prefix scan),
    ///    resolved to row locators,
    /// 3. full-scan fallback.
    fn resolve_eq_path(
        &self,
        pool: &mut BufferPool,
        cols: &[usize],
        key_vals: &[Value],
    ) -> Result<EqAccessPath> {
        debug_assert_eq!(cols.len(), key_vals.len());
        if let TableStorage::Clustered { key_cols, .. } = &self.storage {
            if cols.len() <= key_cols.len() && cols == &key_cols[..cols.len()] {
                return Ok(EqAccessPath::ClusteredPrefix(encode_key(key_vals)?));
            }
        }
        if let TableStorage::Segmented { key_cols, .. } = &self.storage {
            if cols == &key_cols[..] {
                return Ok(match key_vals[0].as_i64() {
                    Some(fid) => EqAccessPath::SegmentedFid(fid),
                    // A non-integral probe can never equal an INT fid
                    // (and NULLs never match): indexed empty result.
                    None => EqAccessPath::Secondary(Vec::new()),
                });
            }
        }
        let clustered = self.is_clustered();
        if let Some(idx) = self
            .indexes
            .iter()
            .find(|i| cols.len() <= i.cols.len() && cols == &i.cols[..cols.len()])
        {
            let prefix = encode_key(key_vals)?;
            let mut locs: Vec<RowLoc> = Vec::new();
            // Decode errors inside the scan callbacks (which can only
            // continue/stop) are parked and surfaced after the scan.
            let mut decode_err: Option<SqlError> = None;
            if idx.unique && cols.len() == idx.cols.len() {
                if let Some(v) = idx.tree.get(pool, &prefix)? {
                    locs.push(RowLoc::from_bytes(&v, clustered)?);
                }
            } else if idx.unique {
                idx.tree.scan_prefix(pool, &prefix, |_, v| {
                    match RowLoc::from_bytes(v, clustered) {
                        Ok(loc) => {
                            locs.push(loc);
                            true
                        }
                        Err(e) => {
                            decode_err = Some(e);
                            false
                        }
                    }
                })?;
            } else {
                idx.tree.scan_prefix(pool, &prefix, |k, _| {
                    // Locator is the key suffix past the *full* indexed
                    // column values; recover it by decoding the indexed
                    // part and taking the rest. For prefix lookups we must
                    // decode col-count values to find the boundary.
                    match extract_loc_from_index_key(k, idx.cols.len(), clustered) {
                        Ok(loc) => {
                            locs.push(loc);
                            true
                        }
                        Err(e) => {
                            decode_err = Some(e);
                            false
                        }
                    }
                })?;
            }
            if let Some(e) = decode_err {
                return Err(e);
            }
            return Ok(EqAccessPath::Secondary(locs));
        }
        Ok(EqAccessPath::Scan)
    }

    /// A batched-scan cursor over the table's storage (heap or clustered
    /// tree), positioned at the first row. The table must not be mutated
    /// while the cursor is in use.
    pub fn batch_cursor(&self, pool: &mut BufferPool) -> Result<TableBatchCursor> {
        Ok(match &self.storage {
            TableStorage::Heap(_) => TableBatchCursor::Heap(HeapScanCursor::default()),
            TableStorage::Clustered { tree, .. } => {
                TableBatchCursor::Clustered(tree.batch_cursor(pool)?)
            }
            TableStorage::Segmented { .. } => {
                TableBatchCursor::Segmented(SegmentScanCursor::default())
            }
        })
    }

    /// Decodes up to `max` further rows into `chunk` (appending), also
    /// recording their locators into `locs` when given. Returns `false`
    /// once the table is exhausted. Rows arrive in the same storage order
    /// as [`Table::scan`].
    pub fn next_batch(
        &self,
        pool: &mut BufferPool,
        cursor: &mut TableBatchCursor,
        chunk: &mut Chunk,
        locs: Option<&mut Vec<RowLoc>>,
        max: usize,
    ) -> Result<bool> {
        match (&self.storage, cursor) {
            (TableStorage::Heap(h), TableBatchCursor::Heap(c)) => match locs {
                Some(locs) => {
                    let mut rids = Vec::new();
                    let more = c.next_batch(h, pool, chunk, Some(&mut rids), max)?;
                    locs.extend(rids.into_iter().map(RowLoc::Heap));
                    Ok(more)
                }
                None => Ok(c.next_batch(h, pool, chunk, None, max)?),
            },
            (TableStorage::Clustered { .. }, TableBatchCursor::Clustered(c)) => match locs {
                Some(locs) => {
                    let mut keys = Vec::new();
                    let more = c.next_batch(pool, chunk, Some(&mut keys), max)?;
                    locs.extend(keys.into_iter().map(RowLoc::Clustered));
                    Ok(more)
                }
                None => Ok(c.next_batch(pool, chunk, None, max)?),
            },
            (
                TableStorage::Segmented {
                    tree,
                    delta,
                    tombstones,
                    ..
                },
                TableBatchCursor::Segmented(c),
            ) => {
                if locs.is_some() {
                    return Err(SqlError::Eval(
                        "segmented base storage has no per-row locators".into(),
                    ));
                }
                if chunk.is_empty() && chunk.width() != 3 {
                    chunk.set_width(3);
                }
                if chunk.width() != 3 {
                    return Err(SqlError::Eval(
                        "segmented scan chunk must be 3 columns wide".into(),
                    ));
                }
                let mut added = 0usize;
                if !c.done {
                    let lo_key = c.cur_key.clone();
                    let lo = match &lo_key {
                        None => Bound::Unbounded,
                        // Mid-segment resume re-reads the same segment and
                        // skips the raw edges already consumed (`skip`
                        // counts pre-filter edges so tombstones cannot
                        // desynchronise the resume point).
                        Some(k) if c.skip > 0 => Bound::Included(k.as_slice()),
                        Some(k) => Bound::Excluded(k.as_slice()),
                    };
                    let mut skip = c.skip;
                    let mut new_pos: Option<(Vec<u8>, usize)> = None;
                    let mut stopped_early = false;
                    let mut decode_err = None;
                    tree.scan_range(pool, lo, Bound::Unbounded, |k, v| {
                        if added >= max {
                            stopped_early = true;
                            return false;
                        }
                        let edges = match decode_edge_segment(v) {
                            Ok(e) => e,
                            Err(e) => {
                                decode_err = Some(e);
                                return false;
                            }
                        };
                        let offset = skip.min(edges.len());
                        skip = 0;
                        let mut consumed = offset;
                        for &(ef, et, ec) in &edges[offset..] {
                            if added >= max {
                                break;
                            }
                            consumed += 1;
                            if tombstones.contains(&(ef, et)) {
                                continue;
                            }
                            chunk.col_mut(0).push_int(ef);
                            chunk.col_mut(1).push_int(et);
                            chunk.col_mut(2).push_int(ec);
                            chunk.commit_row();
                            added += 1;
                        }
                        if consumed < edges.len() {
                            new_pos = Some((k.to_vec(), consumed));
                            stopped_early = true;
                            false
                        } else {
                            new_pos = Some((k.to_vec(), 0));
                            true
                        }
                    })?;
                    if let Some(e) = decode_err {
                        return Err(e.into());
                    }
                    if let Some((k, s)) = new_pos {
                        c.cur_key = Some(k);
                        c.skip = s;
                    }
                    if stopped_early {
                        return Ok(true);
                    }
                    c.done = true;
                }
                // Base exhausted: stream the delta overlay.
                let more = c.delta.next_batch(delta, pool, chunk, None, max - added)?;
                Ok(more)
            }
            _ => Err(SqlError::Eval("cursor does not match table storage".into())),
        }
    }

    /// Coerces every column of `chunk` to the schema's declared types —
    /// the column-wise analogue of [`Table::coerce_row`]. An integer
    /// column feeding an INT schema column passes through with a plain
    /// clone of the typed vectors (the FEM steady state).
    pub(crate) fn coerce_chunk(&self, chunk: &Chunk) -> Result<Chunk> {
        if chunk.width() != self.schema.columns.len() {
            return Err(SqlError::Eval(format!(
                "table {} expects {} columns, got {}",
                self.schema.name,
                self.schema.columns.len(),
                chunk.width()
            )));
        }
        let mut cols = Vec::with_capacity(chunk.width());
        for (col, spec) in chunk.columns().iter().zip(&self.schema.columns) {
            let out = match (spec.dtype, col) {
                (DataType::Int, Column::Int { .. }) => col.clone(),
                _ => {
                    let mut out = Column::new_int();
                    for r in 0..chunk.len() {
                        let v = col.get(r);
                        let coerced = match (spec.dtype, v) {
                            (_, Value::Null) => Value::Null,
                            (DataType::Int, Value::Int(i)) => Value::Int(i),
                            (DataType::Int, Value::Float(f)) => Value::Int(f as i64),
                            (DataType::Float, Value::Int(i)) => Value::Float(i as f64),
                            (DataType::Float, Value::Float(f)) => Value::Float(f),
                            (DataType::Text, Value::Text(s)) => Value::Text(s),
                            (want, got) => {
                                return Err(SqlError::Eval(format!(
                                    "column {}.{} expects {want}, got {got:?}",
                                    self.schema.name, spec.name
                                )))
                            }
                        };
                        out.push(coerced);
                    }
                    out
                }
            };
            cols.push(out);
        }
        Ok(Chunk::from_columns(cols, chunk.len()))
    }

    /// Encoded key of `cols` at row `r` of `chunk`.
    fn chunk_key(chunk: &Chunk, cols: &[usize], r: usize) -> Result<Vec<u8>> {
        let vals: Vec<Value> = cols.iter().map(|&c| chunk.get(c, r)).collect();
        Ok(encode_key(&vals)?)
    }

    /// Inserts every row of `chunk`, maintaining all indexes, with
    /// batch-level storage calls: one duplicate pre-scan, one page-packing
    /// heap write batch, and sorted per-index insert batches — instead of
    /// one full round trip per row. Behaviour under a duplicate key
    /// matches repeated [`Table::insert_row`]: rows before the offender
    /// are inserted and stay, the statement errors.
    pub fn insert_chunk(&mut self, pool: &mut BufferPool, chunk: &Chunk) -> Result<u64> {
        if chunk.is_empty() {
            return Ok(0);
        }
        let chunk = self.coerce_chunk(chunk)?;
        self.insert_chunk_precoerced(pool, &chunk)
    }

    /// [`Table::insert_chunk`] for a chunk the caller already passed
    /// through [`Table::coerce_chunk`] (or built from coerced rows) — the
    /// batched DML write phases use this to avoid coercing, and therefore
    /// cloning, the whole data set twice.
    pub(crate) fn insert_chunk_precoerced(
        &mut self,
        pool: &mut BufferPool,
        chunk: &Chunk,
    ) -> Result<u64> {
        if chunk.is_empty() {
            return Ok(0);
        }
        if self.is_segmented() {
            // Delta-overlay inserts are per-row heap appends anyway.
            let n = chunk.len();
            for r in 0..n {
                let row = chunk.row(r);
                self.insert_row(pool, &row)?;
            }
            return Ok(n as u64);
        }
        let n = chunk.len();
        if self.is_clustered() {
            // Clustered storage inserts are per-key tree descents anyway;
            // keep the row path (it also handles the key uniquifier).
            for r in 0..n {
                let row = chunk.row(r);
                self.insert_row(pool, &row)?;
            }
            return Ok(n as u64);
        }
        // Unique-index pre-scan: find the first offending row (including
        // duplicates *within* the batch), in row order.
        let mut limit = n;
        let mut dup: Option<SqlError> = None;
        {
            let unique: Vec<&SecondaryIndex> = self.indexes.iter().filter(|i| i.unique).collect();
            let mut seen: Vec<HashSet<Vec<u8>>> = unique.iter().map(|_| HashSet::new()).collect();
            'rows: for r in 0..n {
                for (ui, idx) in unique.iter().enumerate() {
                    let key = Self::chunk_key(chunk, &idx.cols, r)?;
                    if idx.tree.contains(pool, &key)? || !seen[ui].insert(key) {
                        limit = r;
                        let row = chunk.row(r);
                        dup = Some(SqlError::DuplicateKey {
                            table: self.schema.name.clone(),
                            key: format_key(&row, &idx.cols),
                        });
                        break 'rows;
                    }
                }
            }
        }
        // Base rows: one page-packing batch insert.
        let mut encoded = Vec::with_capacity(limit);
        let mut buf = Vec::new();
        for r in 0..limit {
            encode_row_from_chunk(&mut buf, chunk, r);
            encoded.push(buf.clone());
        }
        let rids = match &mut self.storage {
            TableStorage::Heap(h) => h.insert_batch(pool, &encoded)?,
            _ => unreachable!("handled above"),
        };
        // Index maintenance: sorted batches per index.
        for idx in &mut self.indexes {
            let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(limit);
            for (r, rid) in rids.iter().enumerate() {
                let mut key = Self::chunk_key(chunk, &idx.cols, r)?;
                let loc = RowLoc::Heap(*rid).to_bytes();
                if idx.unique {
                    entries.push((key, loc));
                } else {
                    key.extend_from_slice(&loc);
                    entries.push((key, Vec::new()));
                }
            }
            idx.tree.insert_batch(pool, entries)?;
        }
        match dup {
            Some(e) => Err(e),
            None => Ok(n as u64),
        }
    }

    /// Applies a batch of updates (locator, old row, new row — rows
    /// already coerced), with page-grouped heap writes for the in-place
    /// case and index fix-ups only where key columns actually changed.
    pub fn update_rows(
        &mut self,
        pool: &mut BufferPool,
        pending: &[(RowLoc, Vec<Value>, Vec<Value>)],
    ) -> Result<()> {
        if pending.is_empty() {
            return Ok(());
        }
        if self.is_segmented() {
            return Err(self.read_only_err());
        }
        if self.is_clustered() {
            for (loc, old, new) in pending {
                self.update_row(pool, loc, old, new)?;
            }
            return Ok(());
        }
        // Pre-encode every *changed* index key. Encoding is the only
        // fix-up step that can fail on valid input (NUL bytes in a text
        // key), and the row path stops at the offending row — rows before
        // it fully applied, the offender heap-written but unindexed, rows
        // after untouched. Encoding up front lets the batch truncate at
        // exactly that point instead of heap-writing everything first.
        // (Unchanged key values were already encoded when the row was
        // inserted, so deferring those cannot fail.)
        type RowFixups = Vec<(usize, Vec<u8>, Vec<u8>)>; // (index, old key, new key)
        let mut fixups: Vec<RowFixups> = Vec::with_capacity(pending.len());
        let mut enc_err: Option<(SqlError, usize)> = None; // (error, failing index)
        let mut partial: RowFixups = Vec::new();
        'rows: for (_, old_row, new_row) in pending {
            let mut row_fix = Vec::new();
            for (ii, idx) in self.indexes.iter().enumerate() {
                let old_vals: Vec<Value> = idx.cols.iter().map(|&c| old_row[c].clone()).collect();
                let new_vals: Vec<Value> = idx.cols.iter().map(|&c| new_row[c].clone()).collect();
                if old_vals == new_vals {
                    continue;
                }
                match (encode_key(&old_vals), encode_key(&new_vals)) {
                    (Ok(o), Ok(n)) => row_fix.push((ii, o, n)),
                    (Err(e), _) | (_, Err(e)) => {
                        enc_err = Some((e.into(), ii));
                        partial = row_fix;
                        break 'rows;
                    }
                }
            }
            fixups.push(row_fix);
        }
        // The row whose key failed to encode still gets its heap write
        // (the row path encodes after heap.update), plus the fix-ups of
        // the indexes before the failing one.
        let heap_limit = if enc_err.is_some() {
            fixups.len() + 1
        } else {
            fixups.len()
        };
        let items: Vec<(RecordId, Vec<u8>)> = pending[..heap_limit]
            .iter()
            .map(|(loc, _, new)| match loc {
                RowLoc::Heap(rid) => Ok((*rid, encode_row(new))),
                RowLoc::Clustered(_) => Err(SqlError::Eval(
                    "row locator does not match table storage".into(),
                )),
            })
            .collect::<Result<_>>()?;
        let new_rids = match &mut self.storage {
            TableStorage::Heap(h) => h.update_batch(pool, &items)?,
            _ => unreachable!("handled above"),
        };
        if enc_err.is_some() {
            fixups.push(partial);
        }
        for (r, ((loc, old_row, _), (new_rid, row_fix))) in
            pending.iter().zip(new_rids.iter().zip(&fixups)).enumerate()
        {
            // On the offending row, only the indexes *before* the failing
            // one get their fix-ups, exactly as the row path's per-index
            // loop would have.
            let index_cap = match &enc_err {
                Some((_, fail_ii)) if r + 1 == fixups.len() => *fail_ii,
                _ => self.indexes.len(),
            };
            let new_loc = RowLoc::Heap(*new_rid);
            for (ii, old_key, new_key) in row_fix {
                debug_assert!(*ii < index_cap, "partial fix-ups stop at the failure");
                let idx = &mut self.indexes[*ii];
                let mut old_key = old_key.clone();
                let mut new_key = new_key.clone();
                if idx.unique {
                    idx.tree.delete(pool, &old_key)?;
                    idx.tree.insert(pool, &new_key, &new_loc.to_bytes())?;
                } else {
                    old_key.extend_from_slice(&loc.to_bytes());
                    new_key.extend_from_slice(&new_loc.to_bytes());
                    idx.tree.delete(pool, &old_key)?;
                    idx.tree.insert(pool, &new_key, &[])?;
                }
            }
            if new_loc != *loc {
                // The record moved pages: even indexes whose key values
                // did not change must re-point their entries (those
                // values were indexed before, so encoding cannot fail).
                for (ii, idx) in self.indexes.iter_mut().enumerate().take(index_cap) {
                    if row_fix.iter().any(|(fi, _, _)| fi == &ii) {
                        continue; // already re-keyed above
                    }
                    let vals: Vec<Value> = idx.cols.iter().map(|&c| old_row[c].clone()).collect();
                    let base = encode_key(&vals)?;
                    if idx.unique {
                        idx.tree.delete(pool, &base)?;
                        idx.tree.insert(pool, &base, &new_loc.to_bytes())?;
                    } else {
                        let mut old_key = base.clone();
                        let mut new_key = base;
                        old_key.extend_from_slice(&loc.to_bytes());
                        new_key.extend_from_slice(&new_loc.to_bytes());
                        idx.tree.delete(pool, &old_key)?;
                        idx.tree.insert(pool, &new_key, &[])?;
                    }
                }
            }
        }
        match enc_err {
            Some((e, _)) => Err(e),
            None => Ok(()),
        }
    }

    /// Deletes a batch of rows with page-grouped heap writes.
    pub fn delete_rows(
        &mut self,
        pool: &mut BufferPool,
        rows: &[(RowLoc, Vec<Value>)],
    ) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        if self.is_segmented() {
            return Err(self.read_only_err());
        }
        if self.is_clustered() {
            for (loc, row) in rows {
                self.delete_row(pool, loc, row)?;
            }
            return Ok(());
        }
        let rids: Vec<RecordId> = rows
            .iter()
            .map(|(loc, _)| match loc {
                RowLoc::Heap(rid) => Ok(*rid),
                RowLoc::Clustered(_) => Err(SqlError::Eval(
                    "row locator does not match table storage".into(),
                )),
            })
            .collect::<Result<_>>()?;
        match &mut self.storage {
            TableStorage::Heap(h) => h.delete_batch(pool, &rids)?,
            _ => unreachable!("handled above"),
        }
        for (loc, row) in rows {
            for idx in &mut self.indexes {
                let mut key =
                    encode_key(&idx.cols.iter().map(|&c| row[c].clone()).collect::<Vec<_>>())?;
                if !idx.unique {
                    key.extend_from_slice(&loc.to_bytes());
                }
                idx.tree.delete(pool, &key)?;
            }
        }
        Ok(())
    }

    /// True when the table has an access path (clustered or secondary) whose
    /// leading columns are exactly `cols`.
    pub fn has_index_on(&self, cols: &[usize]) -> bool {
        if let Some(key_cols) = self.clustered_key_cols() {
            if cols.len() <= key_cols.len() && cols == &key_cols[..cols.len()] {
                return true;
            }
        }
        self.indexes
            .iter()
            .any(|i| cols.len() <= i.cols.len() && cols == &i.cols[..cols.len()])
    }

    /// Removes all rows (storage and indexes), keeping pages for reuse.
    pub fn truncate(&mut self, pool: &mut BufferPool) -> Result<()> {
        match &mut self.storage {
            TableStorage::Heap(h) => h.truncate(pool)?,
            TableStorage::Clustered { tree, .. } => tree.clear(pool)?,
            TableStorage::Segmented {
                tree,
                rows,
                delta,
                delta_rows,
                tombstones,
                dead_rows,
                ..
            } => {
                tree.clear(pool)?;
                delta.truncate(pool)?;
                tombstones.clear();
                *rows = 0;
                *delta_rows = 0;
                *dead_rows = 0;
            }
        }
        for idx in &mut self.indexes {
            idx.tree.clear(pool)?;
        }
        Ok(())
    }

    /// Fills an empty segmented table from edges sorted by `(fid, tid,
    /// cost)`: packs them into delta-encoded varint segments
    /// ([`SegmentWriter`]) and bulk-builds the B+tree bottom-up — no
    /// per-key root-to-leaf descents. Errors if the table is not
    /// segmented, already loaded, or the input is out of order.
    pub fn bulk_load_segments(
        &mut self,
        pool: &mut BufferPool,
        edges: impl IntoIterator<Item = (i64, i64, i64)>,
    ) -> Result<u64> {
        let TableStorage::Segmented {
            tree,
            rows,
            delta_rows,
            ..
        } = &mut self.storage
        else {
            return Err(SqlError::Eval(format!(
                "table {} is not segment-compressed",
                self.schema.name
            )));
        };
        if *rows != 0 || !tree.is_empty() || *delta_rows != 0 {
            return Err(SqlError::Eval(format!(
                "segmented table {} is already loaded",
                self.schema.name
            )));
        }
        // Segment keys are (last fid, sequence number): the sequence keeps
        // keys unique, and keying by *last* fid means an equality probe can
        // start at the first segment whose key reaches the probe fid even
        // when that fid's run begins inside an earlier-starting segment.
        let mut segs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut seq = 0u64;
        let mut total = 0u64;
        let mut prev: Option<(i64, i64, i64)> = None;
        {
            let mut w = SegmentWriter::new(|_first, last, blob| {
                let mut key = encode_key(&[Value::Int(last)])?;
                key.extend_from_slice(&seq.to_be_bytes());
                seq += 1;
                segs.push((key, blob));
                Ok(())
            });
            for e in edges {
                if prev.is_some_and(|p| p > e) {
                    return Err(SqlError::Eval(format!(
                        "bulk load into {} requires (fid, tid, cost) order",
                        self.schema.name
                    )));
                }
                prev = Some(e);
                total += 1;
                w.push(e.0, e.1, e.2)?;
            }
            w.flush()?;
        }
        let TableStorage::Segmented { tree, rows, .. } = &mut self.storage else {
            unreachable!("checked above");
        };
        tree.bulk_build(pool, segs)?;
        *rows = total;
        Ok(total)
    }

    /// Deletes every `(fid, tid)` edge of a segmented table — base rows
    /// by tombstone (all parallel edges between the endpoints are
    /// suppressed at once; segment blobs are immutable), delta-overlay
    /// rows physically. Returns the number of edges removed. Idempotent:
    /// deleting an already-tombstoned or absent pair removes nothing.
    pub fn delta_delete_edge(&mut self, pool: &mut BufferPool, fid: i64, tid: i64) -> Result<u64> {
        let TableStorage::Segmented {
            tree,
            delta,
            delta_rows,
            tombstones,
            dead_rows,
            ..
        } = &mut self.storage
        else {
            return Err(SqlError::Eval(format!(
                "table {} is not segment-compressed",
                self.schema.name
            )));
        };
        let mut removed = 0u64;
        if !tombstones.contains(&(fid, tid)) {
            // Count the base edges the new tombstone suppresses so len()
            // stays exact.
            let lo = encode_key(&[Value::Int(fid)])?;
            let mut base = 0u64;
            let mut decode_err = None;
            tree.scan_range(pool, Bound::Included(&lo), Bound::Unbounded, |_, v| {
                let mut past = false;
                let mut first = true;
                let res = decode_edge_segment_with(v, |ef, et, _| {
                    if first {
                        first = false;
                        if ef > fid {
                            past = true;
                        }
                    }
                    if ef == fid && et == tid {
                        base += 1;
                    }
                });
                if let Err(e) = res {
                    decode_err = Some(e);
                    return false;
                }
                !past
            })?;
            if let Some(e) = decode_err {
                return Err(e.into());
            }
            if base > 0 {
                tombstones.insert((fid, tid));
                *dead_rows += base;
                removed += base;
            }
        }
        // Delta rows matching the pair go away physically, so a later
        // re-insert of the same edge is visible again.
        let mut rids = Vec::new();
        let mut decode_err = None;
        delta.scan(pool, |rid, bytes| match decode_row(bytes) {
            Ok(row) => {
                if row.first().and_then(|v| v.as_i64()) == Some(fid)
                    && row.get(1).and_then(|v| v.as_i64()) == Some(tid)
                {
                    rids.push(rid);
                }
                true
            }
            Err(e) => {
                decode_err = Some(e);
                false
            }
        })?;
        if let Some(e) = decode_err {
            return Err(e.into());
        }
        if !rids.is_empty() {
            delta.delete_batch(pool, &rids)?;
            *delta_rows -= rids.len() as u64;
            removed += rids.len() as u64;
        }
        Ok(removed)
    }

    /// Bulk-loads an empty table (and its empty indexes) from pre-coerced
    /// rows: base storage gets page-packing batch writes (heap) or a
    /// bottom-up build (clustered), and every index tree is bulk-built
    /// bottom-up from sorted entries — bypassing per-row descents
    /// entirely. Unique violations surface as [`SqlError::DuplicateKey`]
    /// before anything is written.
    pub fn bulk_load_rows(
        &mut self,
        pool: &mut BufferPool,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<u64> {
        if self.is_segmented() {
            return Err(SqlError::Eval(format!(
                "table {} is segment-compressed; use bulk_load_segments",
                self.schema.name
            )));
        }
        if !self.is_empty() || self.indexes.iter().any(|i| !i.tree.is_empty()) {
            return Err(SqlError::Eval(format!(
                "bulk load requires empty table {}",
                self.schema.name
            )));
        }
        let rows: Vec<Vec<Value>> = rows
            .into_iter()
            .map(|r| self.coerce_row(r))
            .collect::<Result<_>>()?;
        let n = rows.len() as u64;
        if rows.is_empty() {
            return Ok(0);
        }
        // Unique violations (within the batch — the table is empty) are
        // detected before anything is written.
        for idx in self.indexes.iter().filter(|i| i.unique) {
            let mut keyed: Vec<(Vec<u8>, usize)> = rows
                .iter()
                .enumerate()
                .map(|(r, row)| {
                    encode_key(&idx.cols.iter().map(|&c| row[c].clone()).collect::<Vec<_>>())
                        .map(|k| (k, r))
                })
                .collect::<std::result::Result<_, _>>()?;
            keyed.sort_unstable();
            if let Some(w) = keyed.windows(2).find(|w| w[0].0 == w[1].0) {
                return Err(SqlError::DuplicateKey {
                    table: self.schema.name.clone(),
                    key: format_key(&rows[w[1].1], &idx.cols),
                });
            }
        }
        // Resolve every row's locator with one batch write of the base
        // storage.
        let locs: Vec<RowLoc> = match &mut self.storage {
            TableStorage::Heap(h) => {
                let encoded: Vec<Vec<u8>> = rows.iter().map(|r| encode_row(r)).collect();
                h.insert_batch(pool, &encoded)?
                    .into_iter()
                    .map(RowLoc::Heap)
                    .collect()
            }
            TableStorage::Clustered {
                tree,
                key_cols,
                unique,
                next_uniquifier,
            } => {
                // Encodes one row's clustering-key prefix into `out`
                // (cleared first).
                let key_prefix = |row: &[Value], out: &mut Vec<u8>| -> Result<()> {
                    out.clear();
                    for &c in key_cols.iter() {
                        encode_key_into(out, &row[c])?;
                    }
                    Ok(())
                };
                // Non-decreasing key prefixes plus the monotone uniquifier
                // give strictly increasing full keys, so key-sorted input
                // (the CSR edge stream) can skip the sort below.
                let mut sorted_input = !*unique;
                if sorted_input {
                    let mut prev = Vec::new();
                    let mut cur = Vec::new();
                    for row in &rows {
                        key_prefix(row, &mut cur)?;
                        if cur < prev {
                            sorted_input = false;
                            break;
                        }
                        std::mem::swap(&mut prev, &mut cur);
                    }
                }
                if sorted_input && self.indexes.is_empty() {
                    // No locators needed and no sort: stream straight into
                    // the bottom-up builder with two reusable buffers —
                    // zero per-row allocations on the million-edge path.
                    let mut b = BTreeBulkBuilder::for_tree(tree, pool)?;
                    let mut key = Vec::new();
                    let mut val = Vec::new();
                    for row in &rows {
                        key_prefix(row, &mut key)?;
                        key.extend_from_slice(&next_uniquifier.to_be_bytes());
                        *next_uniquifier += 1;
                        encode_row_into(&mut val, row);
                        b.push(pool, &key, &val)?;
                    }
                    tree.bulk_finish(pool, b)?;
                    Vec::new()
                } else {
                    let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(rows.len());
                    for row in &rows {
                        let mut key = Vec::with_capacity(17);
                        key_prefix(row, &mut key)?;
                        if !*unique {
                            key.extend_from_slice(&next_uniquifier.to_be_bytes());
                            *next_uniquifier += 1;
                        }
                        entries.push((key, encode_row(row)));
                    }
                    // Sort indirectly so duplicate-key errors can name the
                    // offending row's values.
                    let mut order: Vec<usize> = (0..entries.len()).collect();
                    if !sorted_input {
                        order.sort_by(|&a, &b| entries[a].0.cmp(&entries[b].0));
                    }
                    if *unique {
                        if let Some(w) = order
                            .windows(2)
                            .find(|w| entries[w[0]].0 == entries[w[1]].0)
                        {
                            return Err(SqlError::DuplicateKey {
                                table: self.schema.name.clone(),
                                key: format_key(&rows[w[1]], key_cols),
                            });
                        }
                    }
                    let locs: Vec<RowLoc> = entries
                        .iter()
                        .map(|(k, _)| RowLoc::Clustered(k.clone()))
                        .collect();
                    let sorted: Vec<(Vec<u8>, Vec<u8>)> = order
                        .iter()
                        .map(|&i| std::mem::take(&mut entries[i]))
                        .collect();
                    tree.bulk_build(pool, sorted)?;
                    locs
                }
            }
            TableStorage::Segmented { .. } => unreachable!("guarded above"),
        };
        // Every index: sorted entries, bottom-up build.
        for idx in &mut self.indexes {
            let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(rows.len());
            for (row, loc) in rows.iter().zip(&locs) {
                let mut key =
                    encode_key(&idx.cols.iter().map(|&c| row[c].clone()).collect::<Vec<_>>())?;
                if idx.unique {
                    entries.push((key, loc.to_bytes()));
                } else {
                    key.extend_from_slice(&loc.to_bytes());
                    entries.push((key, Vec::new()));
                }
            }
            entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            idx.tree.bulk_build(pool, entries)?;
        }
        Ok(n)
    }
}

/// Recovers the locator suffix from a non-unique index key by skipping the
/// encoded index-column values.
fn extract_loc_from_index_key(key: &[u8], n_cols: usize, clustered: bool) -> Result<RowLoc> {
    let mut rest = key;
    for _ in 0..n_cols {
        let (_, r) = fempath_storage::value::decode_key_one(rest)
            .map_err(|e| SqlError::Catalog(format!("corrupt index key: {e}")))?;
        rest = r;
    }
    RowLoc::from_bytes(rest, clustered)
}

fn format_key(row: &[Value], cols: &[usize]) -> String {
    let parts: Vec<String> = cols.iter().map(|&c| row[c].to_string()).collect();
    format!("({})", parts.join(", "))
}

/// The database catalog.
///
/// `Clone` duplicates the schema plus every table's in-memory storage
/// handles, **not** the pages they address. It exists for the snapshot
/// architecture (DESIGN.md §10): a frozen database's catalog is the
/// template cloned into each copy-on-write session, where page writes
/// land in the session's private overlay. Cloning a catalog while the
/// original keeps mutating the same buffer pool is not supported.
#[derive(Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    views: HashMap<String, crate::ast::Select>,
    /// index name (lowercase) → table name (lowercase).
    index_owner: HashMap<String, String>,
    /// Monotonic schema version, bumped by every DDL statement that changes
    /// what a physical plan could depend on (tables, indexes, views).
    /// Cached plans are validated against it and replanned when stale.
    version: u64,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Current schema version. TRUNCATE and DML leave it unchanged; CREATE
    /// and DROP of tables, indexes and views advance it.
    pub fn version(&self) -> u64 {
        self.version
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    pub fn create_table(
        &mut self,
        pool: &mut BufferPool,
        name: &str,
        columns: Vec<ColumnDef>,
        primary_key: Option<Vec<String>>,
    ) -> Result<()> {
        let key = Self::key(name);
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(SqlError::Catalog(format!("table {name} already exists")));
        }
        let schema = TableSchema {
            name: name.to_string(),
            columns,
        };
        let mut table = Table {
            schema,
            storage: TableStorage::Heap(HeapFile::create()),
            indexes: Vec::new(),
        };
        if let Some(pk_cols) = primary_key {
            let cols = resolve_cols(&table.schema, &pk_cols)?;
            let idx_name = format!("pk_{}", name.to_ascii_lowercase());
            table.indexes.push(SecondaryIndex {
                name: idx_name.clone(),
                cols,
                unique: true,
                tree: BTree::create(pool)?,
            });
            self.index_owner.insert(idx_name, key.clone());
        }
        self.tables.insert(key, table);
        self.version += 1;
        Ok(())
    }

    /// Creates a segment-compressed edge table (DESIGN.md §14). The
    /// schema must be exactly three INT columns — `(fid, tid, cost)`
    /// shaped — with the first column doubling as the ordered access path.
    /// Fill it with [`Table::bulk_load_segments`]; post-load mutations go
    /// through the delta overlay (INSERT / [`Table::delta_delete_edge`]).
    pub fn create_segmented_table(
        &mut self,
        pool: &mut BufferPool,
        name: &str,
        columns: Vec<ColumnDef>,
    ) -> Result<()> {
        let key = Self::key(name);
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(SqlError::Catalog(format!("table {name} already exists")));
        }
        if columns.len() != 3 || columns.iter().any(|c| !matches!(c.dtype, DataType::Int)) {
            return Err(SqlError::Catalog(format!(
                "segmented table {name} requires exactly three INT columns"
            )));
        }
        let table = Table {
            schema: TableSchema {
                name: name.to_string(),
                columns,
            },
            storage: TableStorage::Segmented {
                tree: BTree::create(pool)?,
                key_cols: vec![0],
                rows: 0,
                delta: HeapFile::create(),
                delta_rows: 0,
                tombstones: HashSet::new(),
                dead_rows: 0,
            },
            indexes: Vec::new(),
        };
        self.tables.insert(key, table);
        self.version += 1;
        Ok(())
    }

    pub fn drop_table(&mut self, pool: &mut BufferPool, name: &str, if_exists: bool) -> Result<()> {
        let key = Self::key(name);
        match self.tables.remove(&key) {
            Some(table) => {
                match table.storage {
                    TableStorage::Heap(_) => { /* heap pages stay with the pool */ }
                    TableStorage::Clustered { tree, .. } | TableStorage::Segmented { tree, .. } => {
                        tree.destroy(pool)?
                    }
                }
                for idx in table.indexes {
                    idx.tree.destroy(pool)?;
                }
                // Covers both secondary indexes and the clustered index
                // name (which lives in the storage, not the index list).
                self.index_owner.retain(|_, owner| owner != &key);
                self.version += 1;
                Ok(())
            }
            None if if_exists => Ok(()),
            None => Err(SqlError::Catalog(format!("no such table {name}"))),
        }
    }

    pub fn create_view(&mut self, name: &str, query: crate::ast::Select) -> Result<()> {
        let key = Self::key(name);
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(SqlError::Catalog(format!("name {name} already in use")));
        }
        self.views.insert(key, query);
        self.version += 1;
        Ok(())
    }

    pub fn drop_view(&mut self, name: &str) -> Result<()> {
        self.views
            .remove(&Self::key(name))
            .map(|_| self.version += 1)
            .ok_or_else(|| SqlError::Catalog(format!("no such view {name}")))
    }

    pub fn view(&self, name: &str) -> Option<&crate::ast::Select> {
        self.views.get(&Self::key(name))
    }

    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| SqlError::Catalog(format!("no such table {name}")))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| SqlError::Catalog(format!("no such table {name}")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    /// Creates an index. A clustered index physically reorganises the table
    /// into a B+tree on the key; any existing secondary indexes are rebuilt
    /// because row locators change.
    pub fn create_index(
        &mut self,
        pool: &mut BufferPool,
        stmt: &crate::ast::CreateIndex,
    ) -> Result<()> {
        let idx_key = Self::key(&stmt.name);
        if self.index_owner.contains_key(&idx_key) {
            return Err(SqlError::Catalog(format!(
                "index {} already exists",
                stmt.name
            )));
        }
        let table = self
            .tables
            .get_mut(&Self::key(&stmt.table))
            .ok_or_else(|| SqlError::Catalog(format!("no such table {}", stmt.table)))?;
        let cols = resolve_cols(&table.schema, &stmt.columns)?;

        if table.is_segmented() {
            // Segment rows have no per-row locators for a secondary index
            // to point at, and the fid access path already exists.
            return Err(SqlError::Catalog(format!(
                "table {} is segment-compressed and cannot be indexed",
                stmt.table
            )));
        }
        if stmt.clustered {
            if table.is_clustered() {
                return Err(SqlError::Catalog(format!(
                    "table {} is already clustered",
                    stmt.table
                )));
            }
            // Materialise all rows, rebuild as index-organised storage.
            let mut rows = Vec::new();
            table.scan(pool, |_, row| {
                rows.push(row);
                true
            })?;
            let mut storage = TableStorage::Clustered {
                tree: BTree::create(pool)?,
                key_cols: cols.clone(),
                unique: stmt.unique,
                next_uniquifier: 0,
            };
            std::mem::swap(&mut table.storage, &mut storage);
            if let TableStorage::Heap(mut h) = storage {
                h.truncate(pool)?;
            }
            // Rebuild secondary indexes (locators changed) and reinsert.
            for idx in &mut table.indexes {
                idx.tree.clear(pool)?;
            }
            for row in rows {
                table.insert_row(pool, &row)?;
            }
            self.index_owner.insert(idx_key, Self::key(&stmt.table));
            self.version += 1;
            return Ok(());
        }

        // Secondary index: build from a scan.
        let mut index = SecondaryIndex {
            name: stmt.name.clone(),
            cols: cols.clone(),
            unique: stmt.unique,
            tree: BTree::create(pool)?,
        };
        let mut entries: Vec<(Vec<Value>, RowLoc)> = Vec::new();
        table.scan(pool, |loc, row| {
            entries.push((cols.iter().map(|&c| row[c].clone()).collect(), loc));
            true
        })?;
        for (vals, loc) in entries {
            let mut key = encode_key(&vals)?;
            if index.unique {
                if index.tree.contains(pool, &key)? {
                    return Err(SqlError::DuplicateKey {
                        table: stmt.table.clone(),
                        key: format!("{vals:?}"),
                    });
                }
                index.tree.insert(pool, &key, &loc.to_bytes())?;
            } else {
                key.extend_from_slice(&loc.to_bytes());
                index.tree.insert(pool, &key, &[])?;
            }
        }
        table.indexes.push(index);
        self.index_owner.insert(idx_key, Self::key(&stmt.table));
        self.version += 1;
        Ok(())
    }

    pub fn drop_index(&mut self, pool: &mut BufferPool, name: &str) -> Result<()> {
        let idx_key = Self::key(name);
        let owner = self
            .index_owner
            .remove(&idx_key)
            .ok_or_else(|| SqlError::Catalog(format!("no such index {name}")))?;
        let table = self
            .tables
            .get_mut(&owner)
            .ok_or_else(|| SqlError::Catalog(format!("index {name} points at a dropped table")))?;
        let pos = table
            .indexes
            .iter()
            .position(|i| i.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| SqlError::Catalog(format!("no such index {name}")))?;
        let idx = table.indexes.remove(pos);
        idx.tree.destroy(pool)?;
        self.version += 1;
        Ok(())
    }

    /// Names of all tables (for diagnostics / the SQL shell example).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .values()
            .map(|t| t.schema.name.clone())
            .collect();
        names.sort();
        names
    }
}

fn resolve_cols(schema: &TableSchema, names: &[String]) -> Result<Vec<usize>> {
    names
        .iter()
        .map(|n| {
            schema
                .col_index(n)
                .ok_or_else(|| SqlError::Bind(format!("no column {n} in {}", schema.name)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CreateIndex;

    fn setup() -> (BufferPool, Catalog) {
        let mut pool = BufferPool::in_memory(256);
        let mut cat = Catalog::new();
        cat.create_table(
            &mut pool,
            "TEdges",
            vec![
                ColumnDef {
                    name: "fid".into(),
                    dtype: DataType::Int,
                },
                ColumnDef {
                    name: "tid".into(),
                    dtype: DataType::Int,
                },
                ColumnDef {
                    name: "cost".into(),
                    dtype: DataType::Int,
                },
            ],
            None,
        )
        .unwrap();
        (pool, cat)
    }

    fn row(f: i64, t: i64, c: i64) -> Vec<Value> {
        vec![Value::Int(f), Value::Int(t), Value::Int(c)]
    }

    #[test]
    fn insert_scan_roundtrip() {
        let (mut pool, mut cat) = setup();
        let t = cat.table_mut("tedges").unwrap();
        for i in 0..10 {
            t.insert_row(&mut pool, &row(i, i + 1, 5)).unwrap();
        }
        let mut n = 0;
        t.scan(&mut pool, |_, r| {
            assert_eq!(r.len(), 3);
            n += 1;
            true
        })
        .unwrap();
        assert_eq!(n, 10);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn secondary_index_lookup() {
        let (mut pool, mut cat) = setup();
        {
            let t = cat.table_mut("TEdges").unwrap();
            for i in 0..100 {
                t.insert_row(&mut pool, &row(i % 10, i, 1)).unwrap();
            }
        }
        cat.create_index(
            &mut pool,
            &CreateIndex {
                name: "idx_fid".into(),
                table: "TEdges".into(),
                columns: vec!["fid".into()],
                unique: false,
                clustered: false,
            },
        )
        .unwrap();
        let t = cat.table("TEdges").unwrap();
        let mut hits = Vec::new();
        let used = t
            .lookup_eq(&mut pool, &[0], &[Value::Int(3)], |_, r| {
                hits.push(r[1].clone());
                true
            })
            .unwrap();
        assert!(used, "index should be used");
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|v| v.as_i64().unwrap() % 10 == 3));
    }

    #[test]
    fn clustered_index_reorganises_table() {
        let (mut pool, mut cat) = setup();
        {
            let t = cat.table_mut("TEdges").unwrap();
            for i in (0..50).rev() {
                t.insert_row(&mut pool, &row(i, 100 + i, 1)).unwrap();
            }
        }
        cat.create_index(
            &mut pool,
            &CreateIndex {
                name: "clu_fid".into(),
                table: "TEdges".into(),
                columns: vec!["fid".into()],
                unique: false,
                clustered: true,
            },
        )
        .unwrap();
        let t = cat.table("TEdges").unwrap();
        assert!(t.is_clustered());
        assert_eq!(t.len(), 50);
        // Scan now yields clustering-key order.
        let mut fids = Vec::new();
        t.scan(&mut pool, |_, r| {
            fids.push(r[0].as_i64().unwrap());
            true
        })
        .unwrap();
        let mut sorted = fids.clone();
        sorted.sort_unstable();
        assert_eq!(fids, sorted);
        // Prefix lookup works.
        let mut hits = 0;
        t.lookup_eq(&mut pool, &[0], &[Value::Int(7)], |_, _| {
            hits += 1;
            true
        })
        .unwrap();
        assert_eq!(hits, 1);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let (mut pool, mut cat) = setup();
        cat.create_table(
            &mut pool,
            "TVisited",
            vec![
                ColumnDef {
                    name: "nid".into(),
                    dtype: DataType::Int,
                },
                ColumnDef {
                    name: "d2s".into(),
                    dtype: DataType::Int,
                },
            ],
            Some(vec!["nid".into()]),
        )
        .unwrap();
        let t = cat.table_mut("TVisited").unwrap();
        t.insert_row(&mut pool, &[Value::Int(1), Value::Int(0)])
            .unwrap();
        let err = t.insert_row(&mut pool, &[Value::Int(1), Value::Int(9)]);
        assert!(matches!(err, Err(SqlError::DuplicateKey { .. })));
        // Failed insert must not leave a phantom row.
        assert_eq!(t.len(), 1);
        let mut seen = 0;
        t.scan(&mut pool, |_, _| {
            seen += 1;
            true
        })
        .unwrap();
        assert_eq!(seen, 1);
    }

    #[test]
    fn update_maintains_indexes() {
        let (mut pool, mut cat) = setup();
        cat.create_table(
            &mut pool,
            "TVisited",
            vec![
                ColumnDef {
                    name: "nid".into(),
                    dtype: DataType::Int,
                },
                ColumnDef {
                    name: "d2s".into(),
                    dtype: DataType::Int,
                },
            ],
            Some(vec!["nid".into()]),
        )
        .unwrap();
        let t = cat.table_mut("TVisited").unwrap();
        let loc = t
            .insert_row(&mut pool, &[Value::Int(1), Value::Int(10)])
            .unwrap();
        let old = vec![Value::Int(1), Value::Int(10)];
        let new = vec![Value::Int(2), Value::Int(20)];
        t.update_row(&mut pool, &loc, &old, &new).unwrap();
        // Old key gone, new key findable.
        let mut found = Vec::new();
        t.lookup_eq(&mut pool, &[0], &[Value::Int(1)], |_, r| {
            found.push(r);
            true
        })
        .unwrap();
        assert!(found.is_empty());
        t.lookup_eq(&mut pool, &[0], &[Value::Int(2)], |_, r| {
            found.push(r);
            true
        })
        .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0][1], Value::Int(20));
    }

    #[test]
    fn delete_removes_index_entries() {
        let (mut pool, mut cat) = setup();
        cat.create_index(
            &mut pool,
            &CreateIndex {
                name: "idx_fid".into(),
                table: "TEdges".into(),
                columns: vec!["fid".into()],
                unique: false,
                clustered: false,
            },
        )
        .unwrap();
        let t = cat.table_mut("TEdges").unwrap();
        let loc = t.insert_row(&mut pool, &row(5, 6, 7)).unwrap();
        t.delete_row(&mut pool, &loc, &row(5, 6, 7)).unwrap();
        let mut hits = 0;
        t.lookup_eq(&mut pool, &[0], &[Value::Int(5)], |_, _| {
            hits += 1;
            true
        })
        .unwrap();
        assert_eq!(hits, 0);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn truncate_empties_table_and_indexes() {
        let (mut pool, mut cat) = setup();
        cat.create_index(
            &mut pool,
            &CreateIndex {
                name: "idx_fid".into(),
                table: "TEdges".into(),
                columns: vec!["fid".into()],
                unique: false,
                clustered: false,
            },
        )
        .unwrap();
        let t = cat.table_mut("TEdges").unwrap();
        for i in 0..20 {
            t.insert_row(&mut pool, &row(i, i, i)).unwrap();
        }
        t.truncate(&mut pool).unwrap();
        assert!(t.is_empty());
        let mut hits = 0;
        t.lookup_eq(&mut pool, &[0], &[Value::Int(3)], |_, _| {
            hits += 1;
            true
        })
        .unwrap();
        assert_eq!(hits, 0);
    }

    #[test]
    fn drop_table_and_views() {
        let (mut pool, mut cat) = setup();
        assert!(cat.has_table("tedges"));
        cat.drop_table(&mut pool, "TEDGES", false).unwrap();
        assert!(!cat.has_table("tedges"));
        assert!(cat.drop_table(&mut pool, "tedges", false).is_err());
        cat.drop_table(&mut pool, "tedges", true).unwrap();
    }

    fn edge_cols() -> Vec<ColumnDef> {
        ["fid", "tid", "cost"]
            .iter()
            .map(|n| ColumnDef {
                name: (*n).into(),
                dtype: DataType::Int,
            })
            .collect()
    }

    /// 600 edges for fid 7 forces its run across multiple segments, and
    /// fids sharing segments with neighbours exercise the last-fid keying.
    fn segmented_fixture(pool: &mut BufferPool, cat: &mut Catalog) -> Vec<(i64, i64, i64)> {
        cat.create_segmented_table(pool, "TSeg", edge_cols())
            .unwrap();
        let mut edges: Vec<(i64, i64, i64)> = Vec::new();
        for f in 0..40i64 {
            let fanout = if f == 7 { 600 } else { 20 };
            for t in 0..fanout {
                edges.push((f, t, 1 + (f + t) % 9));
            }
        }
        let t = cat.table_mut("TSeg").unwrap();
        let n = t.bulk_load_segments(pool, edges.iter().copied()).unwrap();
        assert_eq!(n, edges.len() as u64);
        edges
    }

    #[test]
    fn segmented_scan_and_len_match_input() {
        let (mut pool, mut cat) = setup();
        let edges = segmented_fixture(&mut pool, &mut cat);
        let t = cat.table("TSeg").unwrap();
        assert_eq!(t.len(), edges.len() as u64);
        let mut seen = Vec::new();
        t.scan(&mut pool, |_, r| {
            seen.push((
                r[0].as_i64().unwrap(),
                r[1].as_i64().unwrap(),
                r[2].as_i64().unwrap(),
            ));
            true
        })
        .unwrap();
        assert_eq!(seen, edges);
    }

    #[test]
    fn segmented_lookup_eq_spans_segments() {
        let (mut pool, mut cat) = setup();
        let edges = segmented_fixture(&mut pool, &mut cat);
        let t = cat.table("TSeg").unwrap();
        for probe in [0i64, 6, 7, 8, 39, 40, -1] {
            let expect: Vec<(i64, i64, i64)> =
                edges.iter().copied().filter(|e| e.0 == probe).collect();
            let mut got = Vec::new();
            let used = t
                .lookup_eq(&mut pool, &[0], &[Value::Int(probe)], |_, r| {
                    got.push((
                        r[0].as_i64().unwrap(),
                        r[1].as_i64().unwrap(),
                        r[2].as_i64().unwrap(),
                    ));
                    true
                })
                .unwrap();
            assert!(used, "fid probe must use the segment path");
            assert_eq!(got, expect, "probe fid={probe}");
            // Chunk probe agrees with the row probe.
            let mut chunk = Chunk::with_width(3);
            assert!(t
                .lookup_eq_chunk(&mut pool, &[0], &[Value::Int(probe)], &mut chunk)
                .unwrap());
            let chunk_rows: Vec<(i64, i64, i64)> = (0..chunk.len())
                .map(|r| {
                    (
                        chunk.get(0, r).as_i64().unwrap(),
                        chunk.get(1, r).as_i64().unwrap(),
                        chunk.get(2, r).as_i64().unwrap(),
                    )
                })
                .collect();
            assert_eq!(chunk_rows, expect, "chunk probe fid={probe}");
        }
    }

    #[test]
    fn segmented_batch_cursor_resumes_mid_segment() {
        let (mut pool, mut cat) = setup();
        let edges = segmented_fixture(&mut pool, &mut cat);
        let t = cat.table("TSeg").unwrap();
        // A max far smaller than one segment forces mid-segment resumes.
        for max in [7usize, 256, 1024] {
            let mut cursor = t.batch_cursor(&mut pool).unwrap();
            let mut seen = Vec::new();
            loop {
                let mut chunk = Chunk::with_width(3);
                let more = t
                    .next_batch(&mut pool, &mut cursor, &mut chunk, None, max)
                    .unwrap();
                for r in 0..chunk.len() {
                    seen.push((
                        chunk.get(0, r).as_i64().unwrap(),
                        chunk.get(1, r).as_i64().unwrap(),
                        chunk.get(2, r).as_i64().unwrap(),
                    ));
                }
                if !more {
                    break;
                }
            }
            assert_eq!(seen, edges, "batched scan with max={max}");
        }
    }

    #[test]
    fn segmented_rejects_dml_and_indexing() {
        let (mut pool, mut cat) = setup();
        segmented_fixture(&mut pool, &mut cat);
        {
            let t = cat.table_mut("TSeg").unwrap();
            // Locator-based row DML stays rejected (base rows have no
            // per-row locators); inserts are covered by the delta overlay
            // (see `segmented_delta_overlay`).
            let loc = RowLoc::Heap(RecordId::from_u64(0));
            assert!(t.delete_row(&mut pool, &loc, &row(1, 2, 3)).is_err());
            assert!(t
                .update_row(&mut pool, &loc, &row(1, 2, 3), &row(4, 5, 6))
                .is_err());
            // NULL-bearing delta rows are rejected.
            assert!(t
                .insert_row(&mut pool, &[Value::Int(1), Value::Null, Value::Int(3)])
                .is_err());
            // Double bulk load is rejected.
            assert!(t.bulk_load_segments(&mut pool, [(0, 0, 1)]).is_err());
            // Unsorted input is rejected.
        }
        cat.create_segmented_table(&mut pool, "TSeg2", edge_cols())
            .unwrap();
        assert!(cat
            .table_mut("TSeg2")
            .unwrap()
            .bulk_load_segments(&mut pool, [(5, 0, 1), (4, 0, 1)])
            .is_err());
        // No secondary or clustered indexes on segmented tables.
        assert!(cat
            .create_index(
                &mut pool,
                &CreateIndex {
                    name: "idx_seg".into(),
                    table: "TSeg".into(),
                    columns: vec!["fid".into()],
                    unique: false,
                    clustered: false,
                },
            )
            .is_err());
        // TRUNCATE and DROP still work.
        cat.table_mut("TSeg").unwrap().truncate(&mut pool).unwrap();
        assert!(cat.table("TSeg").unwrap().is_empty());
        cat.drop_table(&mut pool, "TSeg", false).unwrap();
    }

    #[test]
    fn segmented_delta_overlay() {
        let (mut pool, mut cat) = setup();
        let edges = segmented_fixture(&mut pool, &mut cat);
        let base_len = edges.len() as u64;

        // Collects the table content through every read path and checks
        // they agree.
        fn content(pool: &mut BufferPool, t: &Table) -> Vec<(i64, i64, i64)> {
            let mut scanned = Vec::new();
            t.scan(pool, |_, r| {
                scanned.push((
                    r[0].as_i64().unwrap(),
                    r[1].as_i64().unwrap(),
                    r[2].as_i64().unwrap(),
                ));
                true
            })
            .unwrap();
            // Batched scan must agree with the row scan.
            let mut cursor = t.batch_cursor(pool).unwrap();
            let mut batched = Vec::new();
            loop {
                let mut chunk = Chunk::with_width(3);
                let more = t
                    .next_batch(pool, &mut cursor, &mut chunk, None, 13)
                    .unwrap();
                for r in 0..chunk.len() {
                    batched.push((
                        chunk.get(0, r).as_i64().unwrap(),
                        chunk.get(1, r).as_i64().unwrap(),
                        chunk.get(2, r).as_i64().unwrap(),
                    ));
                }
                if !more {
                    break;
                }
            }
            assert_eq!(batched, scanned, "batched scan drifted from row scan");
            scanned
        }

        // Inserts (row and chunk path) land in the delta and are visible
        // to every read path.
        {
            let t = cat.table_mut("TSeg").unwrap();
            t.insert_chunk(&mut pool, &chunk_of(&[(7, 9000, 5)]))
                .unwrap();
            assert_eq!(t.len(), base_len + 1);
            let mut probe = Vec::new();
            t.lookup_eq(&mut pool, &[0], &[Value::Int(7)], |_, r| {
                probe.push((r[1].as_i64().unwrap(), r[2].as_i64().unwrap()));
                true
            })
            .unwrap();
            assert!(probe.contains(&(9000, 5)), "delta row missing from probe");
            let mut chunk = Chunk::with_width(3);
            t.lookup_eq_chunk(&mut pool, &[0], &[Value::Int(7)], &mut chunk)
                .unwrap();
            assert_eq!(probe.len(), chunk.len());
        }
        assert_eq!(
            content(&mut pool, cat.table("TSeg").unwrap()).len(),
            edges.len() + 1
        );

        // Deleting a base pair tombstones it everywhere; deleting the
        // delta row removes it physically; both are idempotent.
        {
            let t = cat.table_mut("TSeg").unwrap();
            assert_eq!(t.delta_delete_edge(&mut pool, 3, 4).unwrap(), 1);
            assert_eq!(t.delta_delete_edge(&mut pool, 3, 4).unwrap(), 0);
            assert_eq!(t.delta_delete_edge(&mut pool, 7, 9000).unwrap(), 1);
            assert_eq!(t.len(), base_len - 1);
            let mut hits = 0;
            t.lookup_eq(&mut pool, &[0], &[Value::Int(3)], |_, r| {
                assert_ne!(r[1].as_i64().unwrap(), 4, "tombstoned edge surfaced");
                hits += 1;
                true
            })
            .unwrap();
            assert_eq!(hits, 19);
        }
        let now = content(&mut pool, cat.table("TSeg").unwrap());
        assert_eq!(now.len(), edges.len() - 1);
        // 8 = the generator's weight for edge (3, 4): 1 + (3 + 4) % 9.
        assert!(!now.contains(&(3, 4, 8)));

        // Re-insert after delete is visible again (delta is not filtered
        // by the base tombstone).
        {
            let t = cat.table_mut("TSeg").unwrap();
            t.insert_row(&mut pool, &row(3, 4, 99)).unwrap();
            assert_eq!(t.len(), base_len);
            let mut seen = Vec::new();
            t.lookup_eq(&mut pool, &[0], &[Value::Int(3)], |_, r| {
                seen.push((r[1].as_i64().unwrap(), r[2].as_i64().unwrap()));
                true
            })
            .unwrap();
            assert!(seen.contains(&(4, 99)));
            // Truncate clears base, delta, and tombstones, after which a
            // fresh bulk load is accepted again.
            t.truncate(&mut pool).unwrap();
            assert!(t.is_empty());
            t.bulk_load_segments(&mut pool, [(0, 1, 2)]).unwrap();
            assert_eq!(t.len(), 1);
        }
    }

    fn chunk_of(edges: &[(i64, i64, i64)]) -> Chunk {
        let mut c = Chunk::with_width(3);
        for &(f, t, w) in edges {
            c.push_row(&[Value::Int(f), Value::Int(t), Value::Int(w)]);
        }
        c
    }

    #[test]
    fn bulk_load_rows_matches_insert_path_heap_with_index() {
        let (mut pool, mut cat) = setup();
        cat.create_index(
            &mut pool,
            &CreateIndex {
                name: "idx_fid".into(),
                table: "TEdges".into(),
                columns: vec!["fid".into()],
                unique: false,
                clustered: false,
            },
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..500).map(|i| row(i / 5, i % 97, 1 + i % 7)).collect();
        let t = cat.table_mut("TEdges").unwrap();
        let n = t.bulk_load_rows(&mut pool, rows.clone()).unwrap();
        assert_eq!(n, 500);
        assert_eq!(t.len(), 500);
        // Index probes return exactly the matching rows.
        let mut hits = Vec::new();
        let used = t
            .lookup_eq(&mut pool, &[0], &[Value::Int(3)], |_, r| {
                hits.push(r);
                true
            })
            .unwrap();
        assert!(used);
        assert_eq!(hits.len(), 5);
        // A second bulk load into the now non-empty table is rejected.
        assert!(t.bulk_load_rows(&mut pool, rows).is_err());
    }

    #[test]
    fn bulk_load_rows_clustered_and_unique_violations() {
        let (mut pool, mut cat) = setup();
        cat.create_index(
            &mut pool,
            &CreateIndex {
                name: "clu_fid".into(),
                table: "TEdges".into(),
                columns: vec!["fid".into()],
                unique: false,
                clustered: true,
            },
        )
        .unwrap();
        let rows: Vec<Vec<Value>> = (0..300).map(|i| row(i % 30, i, 1)).collect();
        let t = cat.table_mut("TEdges").unwrap();
        t.bulk_load_rows(&mut pool, rows).unwrap();
        assert_eq!(t.len(), 300);
        let mut hits = 0;
        t.lookup_eq(&mut pool, &[0], &[Value::Int(4)], |_, _| {
            hits += 1;
            true
        })
        .unwrap();
        assert_eq!(hits, 10);
        // Later per-row inserts coexist with the bulk-built tree.
        t.insert_row(&mut pool, &row(4, 999, 1)).unwrap();
        assert_eq!(t.len(), 301);

        // Unique PK violation inside the batch is caught up front.
        cat.create_table(
            &mut pool,
            "TNodes",
            vec![ColumnDef {
                name: "nid".into(),
                dtype: DataType::Int,
            }],
            Some(vec!["nid".into()]),
        )
        .unwrap();
        let tn = cat.table_mut("TNodes").unwrap();
        let err = tn.bulk_load_rows(
            &mut pool,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(1)],
            ],
        );
        assert!(matches!(err, Err(SqlError::DuplicateKey { .. })));
    }

    #[test]
    fn coerce_row_types() {
        let (mut pool, mut cat) = setup();
        let _ = &mut pool;
        let t = cat.table_mut("TEdges").unwrap();
        let coerced = t
            .coerce_row(vec![Value::Float(2.9), Value::Int(3), Value::Int(4)])
            .unwrap();
        assert_eq!(coerced[0], Value::Int(2));
        assert!(t.coerce_row(vec![Value::Int(1)]).is_err());
        assert!(t
            .coerce_row(vec![Value::Text("x".into()), Value::Int(1), Value::Int(2)])
            .is_err());
    }
}
