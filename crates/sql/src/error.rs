//! SQL engine errors.

use fempath_storage::StorageError;
use std::fmt;

/// Errors raised while parsing, planning or executing SQL.
#[derive(Debug)]
pub enum SqlError {
    /// Lexical or syntactic error, with a 1-based character position.
    Parse { message: String, position: usize },
    /// Semantic error found while binding names (unknown table/column, ...).
    Bind(String),
    /// Runtime evaluation error (type mismatch, division by zero, ...).
    Eval(String),
    /// Catalog-level error (duplicate table, unknown index, ...).
    Catalog(String),
    /// Uniqueness violation on insert.
    DuplicateKey { table: String, key: String },
    /// Statement uses a feature the configured dialect lacks (e.g. MERGE on
    /// the PostgreSQL 9.0 dialect — §5.2 of the paper).
    UnsupportedByDialect { feature: String, dialect: String },
    /// Wrong number of parameters supplied to a prepared statement.
    ParamCount { expected: usize, got: usize },
    /// Error from the storage layer.
    Storage(StorageError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse { message, position } => {
                write!(f, "parse error at position {position}: {message}")
            }
            SqlError::Bind(m) => write!(f, "bind error: {m}"),
            SqlError::Eval(m) => write!(f, "evaluation error: {m}"),
            SqlError::Catalog(m) => write!(f, "catalog error: {m}"),
            SqlError::DuplicateKey { table, key } => {
                write!(f, "duplicate key {key} in table {table}")
            }
            SqlError::UnsupportedByDialect { feature, dialect } => {
                write!(f, "{feature} is not supported by dialect {dialect}")
            }
            SqlError::ParamCount { expected, got } => {
                write!(f, "statement expects {expected} parameters, got {got}")
            }
            SqlError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> Self {
        SqlError::Storage(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SqlError>;
