//! The database engine facade: parse, plan, execute.
//!
//! [`Database`] owns the buffer pool and catalog and exposes a JDBC-like
//! surface: `execute` / `execute_params` run a statement and report affected
//! rows (the paper's SQLCA), `query` returns a result set.
//!
//! Statements execute through **physical plans** ([`crate::plan`]):
//! [`Database::prepare`] compiles a statement once — resolving tables,
//! choosing access paths and join strategies, binding every expression to
//! fixed column offsets — and returns a [`PreparedStmt`] handle whose
//! executions skip all of that work. `execute_params` goes through the same
//! machinery via a plan cache keyed by SQL string, so driving the engine
//! with the same parameterized statements each iteration — exactly what the
//! FEM algorithms do — pays the parse *and plan* cost once. DDL bumps the
//! catalog version and stale plans are rebuilt transparently.

use crate::ast::Stmt;
use crate::catalog::Catalog;
use crate::dialect::Dialect;
use crate::error::{Result, SqlError};
use crate::exec::eval::ExecCtx;
use crate::exec::{dml, select};
use crate::parser::parse_statement;
use crate::plan::{self, PlanKind, PreparedPlan};
use fempath_storage::{BufferPool, IoStats, SnapshotPages, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Rows inserted/updated/deleted (the SQLCA "affected tuples" counter
    /// the paper's Algorithms 1 and 2 read).
    pub rows_affected: u64,
    /// Result set for SELECT statements.
    pub rows: Option<ResultSet>,
}

/// A materialized query result.
#[derive(Debug, Clone)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// First value of the first row, if any.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// First value of the first row as an integer (None when absent/NULL).
    pub fn scalar_i64(&self) -> Option<i64> {
        self.scalar().and_then(|v| v.as_i64())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A compiled statement handle returned by [`Database::prepare`].
///
/// Cheap to clone (it shares the plan with the engine's cache). Executing
/// a handle skips parsing, name resolution, access-path choice and
/// expression binding; only `?` parameters and uncorrelated subqueries are
/// evaluated per execution. Handles survive DDL: a stale handle is
/// re-planned transparently on its next execution (and errors cleanly if
/// the statement no longer compiles, e.g. after `DROP TABLE`).
#[derive(Clone)]
pub struct PreparedStmt {
    plan: Arc<PreparedPlan>,
}

impl PreparedStmt {
    /// The statement text this handle was prepared from.
    pub fn sql(&self) -> &str {
        self.plan.sql()
    }

    /// Number of `?` parameters the statement expects.
    pub fn param_count(&self) -> usize {
        self.plan.param_count()
    }

    /// The catalog version the plan was compiled against.
    pub fn catalog_version(&self) -> u64 {
        self.plan.catalog_version()
    }

    /// Human-readable plan shape, one line per operator.
    pub fn describe(&self) -> Vec<String> {
        self.plan.describe()
    }
}

/// Which executor runs compiled physical plans.
///
/// Both executors share the planner, the plan cache and all semantics;
/// [`ExecMode::Vectorized`] (the default) moves typed column batches
/// through the operators (DESIGN.md §11), [`ExecMode::RowAtATime`] is the
/// PR-3 tuple-at-a-time pipeline, kept as the benchmark baseline and a
/// second differential-testing target next to the AST interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One `Vec<Value>` row at a time through the plan operators.
    RowAtATime,
    /// Typed columnar batches (~1024 rows) with selection vectors.
    #[default]
    Vectorized,
}

/// Plan-cache size bound: statements beyond this are still planned, but
/// the cache evicts (stale versions first, then true LRU) to stay bounded
/// when callers execute unbounded families of literal SQL strings.
const PLAN_CACHE_CAP: usize = 512;

/// A session-local plan cache: per-SQL-string entries stamped with the
/// catalog version they were compiled against, bounded by
/// [`PLAN_CACHE_CAP`] with LRU eviction.
///
/// Entries from superseded catalog versions are dropped eagerly the first
/// time the cache is consulted after DDL bumps the version — they can
/// never be returned again, and before this eager sweep a long-lived
/// session that kept issuing *new* statement texts after DDL would retain
/// every stale plan until the cap was hit (the plan-cache leak fixed in
/// this revision).
struct PlanCache {
    entries: HashMap<String, (Arc<PreparedPlan>, u64)>,
    /// Monotonic access counter backing LRU eviction.
    tick: u64,
    /// Catalog version the last stale sweep ran against.
    swept_version: u64,
}

impl PlanCache {
    fn new() -> PlanCache {
        PlanCache {
            entries: HashMap::new(),
            tick: 0,
            swept_version: 0,
        }
    }

    /// Drops every entry compiled against a superseded catalog version.
    /// Cheap no-op while the version is unchanged.
    fn sweep_stale(&mut self, version: u64) {
        if self.swept_version == version {
            return;
        }
        self.entries
            .retain(|_, (p, _)| p.catalog_version() == version);
        self.swept_version = version;
    }

    fn get(&mut self, sql: &str, version: u64) -> Option<Arc<PreparedPlan>> {
        let (plan, last_used) = self.entries.get_mut(sql)?;
        if plan.catalog_version() != version {
            return None;
        }
        self.tick += 1;
        *last_used = self.tick;
        Some(plan.clone())
    }

    fn insert(&mut self, plan: Arc<PreparedPlan>) {
        if self.entries.len() >= PLAN_CACHE_CAP && !self.entries.contains_key(plan.sql()) {
            // Evict the least-recently-used entry; stale entries were
            // already swept, so this only fires when the workload truly
            // churns distinct current-version statements.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(sql, _)| sql.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.tick += 1;
        self.entries
            .insert(plan.sql().to_string(), (plan, self.tick));
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Shards in a [`SharedPlanCache`] — bounds the publish-lock scope (and
/// the size of the map cloned per publish) when many sessions compile
/// distinct statements concurrently.
const SHARED_PLAN_SHARDS: usize = 8;
/// Per-shard entry bound for the shared cache.
const SHARED_PLAN_SHARD_CAP: usize = 256;

/// One shard of the shared cache: an RCU-style **publish-once** map.
///
/// Snapshot workloads consult the shared cache on every local-cache miss
/// but publish each distinct statement only once per snapshot lifetime,
/// so the structure is tuned hard for reads: the consult path is a
/// single `Acquire` pointer load plus a hash lookup — no lock, no
/// reference count, no shared cache-line write at all (the `RwLock` it
/// replaces performed an atomic RMW on a contended line for every read).
///
/// Publishing clones the current map, inserts, and atomically swaps the
/// pointer (copy-on-write), serialized by a writer mutex. Superseded map
/// versions cannot be freed while a reader may still be walking them, so
/// they are parked in `versions` and freed when the cache drops — one
/// retired map per publish, and publishes are bounded by the number of
/// distinct statements, so the parked memory stays small by design.
struct RcuShard {
    /// Readers load this (Acquire) and look up without locking. Always
    /// points at a map owned by `versions`.
    current: AtomicPtr<HashMap<String, Arc<PreparedPlan>>>,
    /// Writer serialization + ownership of every map version ever
    /// published (freed in `Drop`, when no reader can remain).
    versions: Mutex<Vec<*mut HashMap<String, Arc<PreparedPlan>>>>,
}

// SAFETY: the raw pointers are owned heap maps, mutated only before
// publication (the cloned map is private until the `current` swap) and
// freed only in `Drop`, which takes `&mut self` and therefore excludes
// every reader. The pointees (`HashMap<String, Arc<PreparedPlan>>`) are
// `Send + Sync` themselves (asserted below for `PreparedPlan`).
unsafe impl Send for RcuShard {}
unsafe impl Sync for RcuShard {}

impl RcuShard {
    fn new() -> RcuShard {
        let first = Box::into_raw(Box::new(HashMap::new()));
        RcuShard {
            current: AtomicPtr::new(first),
            versions: Mutex::new(vec![first]),
        }
    }

    /// The currently published map. The reference is valid for the
    /// lifetime of `&self` because every published version stays alive
    /// until `Drop`.
    fn map(&self) -> &HashMap<String, Arc<PreparedPlan>> {
        // SAFETY: `current` always points at a map owned by `versions`,
        // which frees its maps only in `Drop` (`&mut self`), so the
        // pointee outlives this `&self` borrow.
        // ORDERING: Acquire pairs with the Release store in `publish` so
        // the map's contents are visible before the pointer is.
        unsafe { &*self.current.load(Ordering::Acquire) }
    }

    fn get(&self, sql: &str, version: u64) -> Option<Arc<PreparedPlan>> {
        self.map()
            .get(sql)
            .filter(|p| p.catalog_version() == version)
            .cloned()
    }

    /// Publishes `plan`, returning false when an equivalent entry was
    /// already visible (the common thundering-herd warmup case: every
    /// worker compiles the same statement, one publish wins).
    fn publish(&self, plan: &Arc<PreparedPlan>) -> bool {
        let mut versions = self.versions.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY: same lifetime argument as `map` — the pointee is owned
        // by `versions` and freed only in `Drop`.
        // ORDERING: Relaxed suffices because `current` is only stored
        // under the `versions` lock we now hold; the lock acquisition
        // already synchronized us with the previous publisher.
        let cur = unsafe { &*self.current.load(Ordering::Relaxed) };
        if let Some(existing) = cur.get(plan.sql()) {
            if existing.catalog_version() == plan.catalog_version() {
                return false;
            }
        }
        let mut next = cur.clone();
        if next.len() >= SHARED_PLAN_SHARD_CAP && !next.contains_key(plan.sql()) {
            let version = plan.catalog_version();
            next.retain(|_, p| p.catalog_version() == version);
            if next.len() >= SHARED_PLAN_SHARD_CAP {
                next.clear();
            }
        }
        next.insert(plan.sql().to_string(), plan.clone());
        let ptr = Box::into_raw(Box::new(next));
        // ORDERING: Release publishes the fully-built map to the Acquire
        // load in `map` — readers never see a half-initialized pointee.
        self.current.store(ptr, Ordering::Release);
        versions.push(ptr);
        true
    }
}

impl Drop for RcuShard {
    fn drop(&mut self) {
        let versions = self.versions.get_mut().unwrap_or_else(|e| e.into_inner());
        for ptr in versions.drain(..) {
            // SAFETY: `&mut self` excludes all readers; each pointer was
            // created by `Box::into_raw` and appears exactly once.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }
}

/// Consult/publish counters for a [`SharedPlanCache`]
/// ([`SharedPlanCache::stats`]). `hits`/`misses` count consults (local
/// plan-cache misses that reached the shared cache); `publishes` counts
/// map versions actually published — with publish-once semantics it
/// converges on the number of distinct statements, however many sessions
/// warm up concurrently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedPlanCacheStats {
    /// Consults answered from the shared cache.
    pub hits: u64,
    /// Consults that fell through to a fresh compile.
    pub misses: u64,
    /// Map versions published (≈ distinct statements compiled).
    pub publishes: u64,
    /// Plans currently visible.
    pub plans: usize,
}

/// A plan cache shared by every session of one [`DbSnapshot`]: a sharded
/// publish-once RCU map from SQL text to compiled plan (see `RcuShard`).
/// Snapshot sessions never run DDL (the working tables are created before
/// freezing), so their catalog versions all stay at the freeze version
/// and one compiled plan serves every worker; entries whose stamp
/// mismatches a reader's version are simply ignored (and replaced by the
/// next publisher). The consult path is lock-free — a pointer load and a
/// hash lookup — so worker warmup no longer serializes on reader locks.
pub struct SharedPlanCache {
    shards: Vec<RcuShard>,
    hits: AtomicU64,
    misses: AtomicU64,
    publishes: AtomicU64,
}

impl Default for SharedPlanCache {
    fn default() -> Self {
        SharedPlanCache::new()
    }
}

impl SharedPlanCache {
    /// An empty shared cache.
    pub fn new() -> SharedPlanCache {
        SharedPlanCache {
            shards: (0..SHARED_PLAN_SHARDS).map(|_| RcuShard::new()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
        }
    }

    fn shard(&self, sql: &str) -> &RcuShard {
        let mut h = DefaultHasher::new();
        sql.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn get(&self, sql: &str, version: u64) -> Option<Arc<PreparedPlan>> {
        let found = self.shard(sql).get(sql, version);
        match found {
            // ORDERING: Relaxed — monotonic diagnostic counters, read
            // racily by `stats`; no other memory depends on them.
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, plan: &Arc<PreparedPlan>) {
        if self.shard(plan.sql()).publish(plan) {
            // ORDERING: Relaxed — diagnostic counter, see `get`.
            self.publishes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total cached plans across all shards (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map().len()).sum()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consult/publish counters (diagnostics, surfaced by the
    /// service-throughput experiment).
    pub fn stats(&self) -> SharedPlanCacheStats {
        // ORDERING: Relaxed — racy snapshot of diagnostic counters; a
        // slightly stale read is fine and nothing is ordered against it.
        SharedPlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            plans: self.len(),
        }
    }
}

/// A frozen, immutable image of a [`Database`]: the flushed page image
/// behind an `Arc`, the catalog as a cloneable template, and a
/// [`SharedPlanCache`]. [`DbSnapshot::session`] stamps out independent
/// [`Database`] sessions whose reads share the frozen pages and whose
/// writes (working tables, indexes) go to private copy-on-write overlays —
/// the shared-snapshot / per-session-state architecture of DESIGN.md §10.
pub struct DbSnapshot {
    pages: SnapshotPages,
    catalog: Catalog,
    dialect: Dialect,
    buffer_pages: usize,
    shared_plans: Arc<SharedPlanCache>,
    data_version: u64,
}

impl DbSnapshot {
    /// A new session over the snapshot (buffer capacity inherited from the
    /// frozen database).
    pub fn session(&self) -> Database {
        self.session_with_buffer(self.buffer_pages)
    }

    /// A new session with an explicit buffer-pool capacity in pages.
    pub fn session_with_buffer(&self, buffer_pages: usize) -> Database {
        let mut db = Database::with_pool(BufferPool::on_snapshot(self.pages.clone(), buffer_pages));
        db.catalog = self.catalog.clone();
        db.dialect = self.dialect;
        db.shared_plans = Some(self.shared_plans.clone());
        db.data_version = self.data_version;
        db
    }

    /// Number of pages in the shared base image.
    pub fn base_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Catalog version sessions start from.
    pub fn catalog_version(&self) -> u64 {
        self.catalog.version()
    }

    /// Data version frozen into the snapshot (see
    /// [`Database::data_version`]); sessions start from it.
    pub fn data_version(&self) -> u64 {
        self.data_version
    }

    /// Plans currently in the shared cache (diagnostics).
    pub fn shared_plan_count(&self) -> usize {
        self.shared_plans.len()
    }

    /// Consult/publish counters of the shared plan cache.
    pub fn shared_plan_stats(&self) -> SharedPlanCacheStats {
        self.shared_plans.stats()
    }
}

/// An embedded relational database instance.
pub struct Database {
    pool: BufferPool,
    catalog: Catalog,
    dialect: Dialect,
    exec_mode: ExecMode,
    plan_cache: PlanCache,
    /// Present on snapshot sessions: the cache shared with every sibling
    /// session of the same [`DbSnapshot`].
    shared_plans: Option<Arc<SharedPlanCache>>,
    statements_executed: u64,
    /// Monotone **data** epoch, advanced only by callers that declare a
    /// content mutation ([`Database::bump_data_version`]) — deliberately
    /// *not* by DML in general, and never by DDL. It is the versioning
    /// half of the catalog-version trick (DESIGN.md §9) for row content:
    /// cached plans survive a bump (the schema did not change) while
    /// version-keyed result caches are invalidated by it (DESIGN.md §16).
    data_version: u64,
}

// A session (and its prepared handles) must be movable to a worker
// thread, and a snapshot must be shareable between spawners.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<Database>();
    assert_send::<PreparedStmt>();
    assert_sync::<PreparedStmt>();
    assert_send::<DbSnapshot>();
    assert_sync::<DbSnapshot>();
};

impl Database {
    /// A database whose pages live in memory (tests, small examples).
    pub fn in_memory(buffer_pages: usize) -> Database {
        Database::with_pool(BufferPool::in_memory(buffer_pages))
    }

    /// A database backed by an anonymous temporary file — the disk-resident
    /// configuration used by the experiments.
    pub fn on_temp_file(buffer_pages: usize) -> Result<Database> {
        Ok(Database::with_pool(BufferPool::temp_file(buffer_pages)?))
    }

    /// Wraps an existing buffer pool.
    pub fn with_pool(pool: BufferPool) -> Database {
        Database {
            pool,
            catalog: Catalog::new(),
            dialect: Dialect::default(),
            exec_mode: ExecMode::default(),
            plan_cache: PlanCache::new(),
            shared_plans: None,
            statements_executed: 0,
            data_version: 0,
        }
    }

    /// Freezes the database into an immutable, shareable [`DbSnapshot`].
    ///
    /// Flushes every dirty page and copies the disk image behind an
    /// `Arc`; the catalog becomes the template each
    /// [`DbSnapshot::session`] clones. Create every table the sessions
    /// will use (including working tables) *before* freezing so sessions
    /// never need DDL — their catalog versions then all match and the
    /// snapshot's [`SharedPlanCache`] serves every worker.
    pub fn freeze(mut self) -> Result<DbSnapshot> {
        let pages = self.pool.snapshot_pages()?;
        Ok(DbSnapshot {
            pages,
            buffer_pages: self.pool.capacity(),
            catalog: self.catalog,
            dialect: self.dialect,
            shared_plans: Arc::new(SharedPlanCache::new()),
            data_version: self.data_version,
        })
    }

    /// Sets the SQL dialect (builder style).
    pub fn with_dialect(mut self, dialect: Dialect) -> Database {
        self.dialect = dialect;
        self
    }

    /// The active dialect.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// The executor running compiled plans (vectorized by default).
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Switches between the vectorized and the row-at-a-time plan
    /// executor — used by benchmarks (before/after) and differential
    /// tests. Plans are executor-agnostic, so cached plans stay valid.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// Changes the dialect in place.
    pub fn set_dialect(&mut self, dialect: Dialect) {
        self.dialect = dialect;
    }

    /// Executes a statement without parameters.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        self.execute_params(sql, &[])
    }

    /// Executes a statement with `?` parameters bound from `params`.
    ///
    /// This is the prepared path: the statement is compiled to a physical
    /// plan on first sight (or after DDL invalidated it) and the cached
    /// plan executes directly on every later call.
    pub fn execute_params(&mut self, sql: &str, params: &[Value]) -> Result<ExecOutcome> {
        let plan = self.prepare_plan(sql)?;
        self.exec_plan(&plan, params)
    }

    /// Parses and executes a statement **without** touching the plan
    /// cache — the unprepared door, used for one-shot literal statements
    /// (e.g. batch seeding) and as the differential-test baseline.
    pub fn execute_unplanned(&mut self, sql: &str, params: &[Value]) -> Result<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        self.run_stmt(&stmt, params)
    }

    /// Compiles a statement into a reusable [`PreparedStmt`] handle.
    ///
    /// Plans are cached per SQL string and stamped with the catalog
    /// version; `prepare` on a cached, still-valid statement is a hash
    /// lookup.
    pub fn prepare(&mut self, sql: &str) -> Result<PreparedStmt> {
        Ok(PreparedStmt {
            plan: self.prepare_plan(sql)?,
        })
    }

    /// Executes a prepared handle. A handle whose plan was invalidated by
    /// DDL is re-planned transparently (the refreshed plan lands in the
    /// cache, so only the first post-DDL execution pays for it).
    pub fn execute_prepared(
        &mut self,
        stmt: &PreparedStmt,
        params: &[Value],
    ) -> Result<ExecOutcome> {
        let plan = if stmt.plan.catalog_version() == self.catalog.version() {
            stmt.plan.clone()
        } else {
            self.prepare_plan(stmt.plan.sql())?
        };
        self.exec_plan(&plan, params)
    }

    fn prepare_plan(&mut self, sql: &str) -> Result<Arc<PreparedPlan>> {
        let version = self.catalog.version();
        // Eagerly drop plans from superseded catalog versions (they can
        // never be served again) so long-lived sessions don't leak them.
        self.plan_cache.sweep_stale(version);
        if let Some(p) = self.plan_cache.get(sql, version) {
            return Ok(p);
        }
        // Snapshot sessions: a sibling may have compiled it already.
        if let Some(shared) = &self.shared_plans {
            if let Some(p) = shared.get(sql, version) {
                self.plan_cache.insert(p.clone());
                return Ok(p);
            }
        }
        let stmt = parse_statement(sql)?;
        let n_params = plan::build::count_params(&stmt);
        let kind = plan::build::build_plan(&self.catalog, &stmt)?;
        let compiled = Arc::new(PreparedPlan {
            sql: sql.to_string(),
            catalog_version: version,
            n_params,
            kind,
        });
        if let Some(shared) = &self.shared_plans {
            shared.insert(&compiled);
        }
        self.plan_cache.insert(compiled.clone());
        Ok(compiled)
    }

    /// Executes one compiled plan.
    fn exec_plan(&mut self, plan: &PreparedPlan, params: &[Value]) -> Result<ExecOutcome> {
        // The interpreter binds every expression (and so touches every `?`)
        // eagerly per execution; mirror that by rejecting short parameter
        // lists up front instead of only when a row happens to reach the
        // parameterized expression.
        if params.len() < plan.param_count() {
            return Err(SqlError::ParamCount {
                expected: plan.param_count(),
                got: params.len(),
            });
        }
        self.statements_executed += 1;
        let no_rows = |n: u64| ExecOutcome {
            rows_affected: n,
            rows: None,
        };
        let vec = self.exec_mode == ExecMode::Vectorized;
        match &plan.kind {
            PlanKind::Select(sp) => {
                let rows = if vec {
                    plan::vexec::run_select_rows(&mut self.pool, &self.catalog, params, sp)?
                } else {
                    plan::exec::run_select_rows(&mut self.pool, &self.catalog, params, sp)?
                };
                Ok(ExecOutcome {
                    rows_affected: 0,
                    rows: Some(ResultSet {
                        columns: sp.out_names.clone(),
                        rows,
                    }),
                })
            }
            PlanKind::Insert(ip) => Ok(no_rows(if vec {
                plan::vexec::run_insert(&mut self.pool, &mut self.catalog, params, ip)?
            } else {
                plan::exec::run_insert(&mut self.pool, &mut self.catalog, params, ip)?
            })),
            PlanKind::Update(up) => Ok(no_rows(if vec {
                plan::vexec::run_update(&mut self.pool, &mut self.catalog, params, up)?
            } else {
                plan::exec::run_update(&mut self.pool, &mut self.catalog, params, up)?
            })),
            PlanKind::Delete(dp) => Ok(no_rows(if vec {
                plan::vexec::run_delete(&mut self.pool, &mut self.catalog, params, dp)?
            } else {
                plan::exec::run_delete(&mut self.pool, &mut self.catalog, params, dp)?
            })),
            PlanKind::Merge(mp) => {
                if !self.dialect.supports_merge {
                    return Err(SqlError::UnsupportedByDialect {
                        feature: "MERGE statement".into(),
                        dialect: self.dialect.name.to_string(),
                    });
                }
                Ok(no_rows(if vec {
                    plan::vexec::run_merge(&mut self.pool, &mut self.catalog, params, mp)?
                } else {
                    plan::exec::run_merge(&mut self.pool, &mut self.catalog, params, mp)?
                }))
            }
            PlanKind::Fallback(stmt) => self.dispatch_stmt(stmt, params),
        }
    }

    /// Runs a semicolon-separated script, returning the last outcome.
    pub fn execute_script(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmts = crate::parser::parse_statements(sql)?;
        let mut last = ExecOutcome {
            rows_affected: 0,
            rows: None,
        };
        for stmt in stmts {
            last = self.run_stmt(&stmt, &[])?;
        }
        Ok(last)
    }

    /// Convenience: runs a SELECT and returns its result set.
    pub fn query(&mut self, sql: &str) -> Result<ResultSet> {
        self.query_params(sql, &[])
    }

    /// Convenience: parameterized SELECT.
    pub fn query_params(&mut self, sql: &str, params: &[Value]) -> Result<ResultSet> {
        let out = self.execute_params(sql, params)?;
        out.rows
            .ok_or_else(|| SqlError::Eval("statement did not return rows".into()))
    }

    /// Executes one parsed statement through the interpreter (no physical
    /// plan). This is the fallback path for DDL and the baseline for
    /// differential tests.
    pub fn run_stmt(&mut self, stmt: &Stmt, params: &[Value]) -> Result<ExecOutcome> {
        self.statements_executed += 1;
        self.dispatch_stmt(stmt, params)
    }

    fn dispatch_stmt(&mut self, stmt: &Stmt, params: &[Value]) -> Result<ExecOutcome> {
        let no_rows = |n: u64| ExecOutcome {
            rows_affected: n,
            rows: None,
        };
        match stmt {
            Stmt::Select(sel) => {
                let mut ctx = ExecCtx {
                    pool: &mut self.pool,
                    catalog: &self.catalog,
                    params,
                    trace: None,
                };
                let rel = select::execute_select(&mut ctx, sel)?;
                Ok(ExecOutcome {
                    rows_affected: 0,
                    rows: Some(ResultSet {
                        columns: rel.schema.cols.iter().map(|c| c.name.clone()).collect(),
                        rows: rel.rows,
                    }),
                })
            }
            Stmt::Explain(inner) => {
                let Stmt::Select(sel) = inner.as_ref() else {
                    return Err(SqlError::Eval(
                        "EXPLAIN currently supports SELECT statements only".into(),
                    ));
                };
                let trace = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
                let mut ctx = ExecCtx {
                    pool: &mut self.pool,
                    catalog: &self.catalog,
                    params,
                    trace: Some(trace.clone()),
                };
                let rel = select::execute_select(&mut ctx, sel)?;
                let mut lines = trace.borrow().clone();
                lines.push(format!("RESULT {} row(s)", rel.rows.len()));
                Ok(ExecOutcome {
                    rows_affected: 0,
                    rows: Some(ResultSet {
                        columns: vec!["plan".into()],
                        rows: lines.into_iter().map(|l| vec![Value::Text(l)]).collect(),
                    }),
                })
            }
            Stmt::CreateTable(ct) => {
                self.catalog.create_table(
                    &mut self.pool,
                    &ct.name,
                    ct.columns.clone(),
                    ct.primary_key.clone(),
                )?;
                Ok(no_rows(0))
            }
            Stmt::CreateIndex(ci) => {
                self.catalog.create_index(&mut self.pool, ci)?;
                Ok(no_rows(0))
            }
            Stmt::CreateView { name, query } => {
                self.catalog.create_view(name, (**query).clone())?;
                Ok(no_rows(0))
            }
            Stmt::DropTable { name, if_exists } => {
                self.catalog.drop_table(&mut self.pool, name, *if_exists)?;
                Ok(no_rows(0))
            }
            Stmt::DropIndex { name } => {
                self.catalog.drop_index(&mut self.pool, name)?;
                Ok(no_rows(0))
            }
            Stmt::DropView { name } => {
                self.catalog.drop_view(name)?;
                Ok(no_rows(0))
            }
            Stmt::Truncate { table } => {
                let t = self.catalog.table_mut(table)?;
                let n = t.len();
                t.truncate(&mut self.pool)?;
                Ok(no_rows(n))
            }
            Stmt::Insert(ins) => {
                let n = dml::execute_insert(&mut self.pool, &mut self.catalog, params, ins)?;
                Ok(no_rows(n))
            }
            Stmt::Update(upd) => {
                let n = dml::execute_update(&mut self.pool, &mut self.catalog, params, upd)?;
                Ok(no_rows(n))
            }
            Stmt::Delete(del) => {
                let n = dml::execute_delete(&mut self.pool, &mut self.catalog, params, del)?;
                Ok(no_rows(n))
            }
            Stmt::Merge(m) => {
                if !self.dialect.supports_merge {
                    return Err(SqlError::UnsupportedByDialect {
                        feature: "MERGE statement".into(),
                        dialect: self.dialect.name.to_string(),
                    });
                }
                let n = dml::execute_merge(&mut self.pool, &mut self.catalog, params, m)?;
                Ok(no_rows(n))
            }
        }
    }

    /// Creates a segment-compressed edge table (see
    /// [`crate::catalog::Catalog::create_segmented_table`]); fill it with
    /// [`Database::bulk_load_segments`]. Later single-edge mutations go
    /// through the delta overlay (INSERT statements and
    /// [`Database::delta_delete_edge`]).
    pub fn create_segmented_table(
        &mut self,
        name: &str,
        columns: Vec<crate::ast::ColumnDef>,
    ) -> Result<()> {
        self.catalog
            .create_segmented_table(&mut self.pool, name, columns)
    }

    /// Bulk-fills an empty segmented table from `(fid, tid, cost)` edges
    /// sorted ascending — delta-encoded segments, bottom-up tree build.
    pub fn bulk_load_segments(
        &mut self,
        table: &str,
        edges: impl IntoIterator<Item = (i64, i64, i64)>,
    ) -> Result<u64> {
        self.catalog
            .table_mut(table)?
            .bulk_load_segments(&mut self.pool, edges)
    }

    /// Deletes every `(fid, tid)` edge of a segmented table through its
    /// delta overlay (see [`crate::catalog::Table::delta_delete_edge`]);
    /// SQL DELETE on segmented storage stays rejected.
    pub fn delta_delete_edge(&mut self, table: &str, fid: i64, tid: i64) -> Result<u64> {
        self.catalog
            .table_mut(table)?
            .delta_delete_edge(&mut self.pool, fid, tid)
    }

    /// Bulk-loads an empty table (heap or clustered) bottom-up, bypassing
    /// per-row INSERT (see [`crate::catalog::Table::bulk_load_rows`]).
    pub fn bulk_load_rows(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<u64> {
        self.catalog
            .table_mut(table)?
            .bulk_load_rows(&mut self.pool, rows)
    }

    /// Number of rows currently in `table`.
    pub fn table_len(&self, table: &str) -> Result<u64> {
        Ok(self.catalog.table(table)?.len())
    }

    /// True when the catalog knows `table`.
    pub fn has_table(&self, table: &str) -> bool {
        self.catalog.has_table(table)
    }

    /// Buffer-pool / disk counters.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Zeroes the I/O counters.
    pub fn reset_io_stats(&mut self) {
        self.pool.reset_stats();
    }

    /// Total statements executed since creation.
    pub fn statements_executed(&self) -> u64 {
        self.statements_executed
    }

    /// Current catalog (schema) version — advanced by DDL, used to
    /// validate cached plans.
    pub fn catalog_version(&self) -> u64 {
        self.catalog.version()
    }

    /// Current data epoch — advanced only by [`Database::bump_data_version`].
    pub fn data_version(&self) -> u64 {
        self.data_version
    }

    /// Declares a content mutation: advances the data epoch and returns
    /// the new value. Prepared plans stay valid (the schema is
    /// unchanged); anything keyed by data version — e.g. the serving
    /// tier's result cache — treats older entries as stale.
    pub fn bump_data_version(&mut self) -> u64 {
        self.data_version += 1;
        self.data_version
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plan_cache.len()
    }

    /// Resizes the buffer pool (pages) — the paper's buffer-size sweeps.
    pub fn set_buffer_capacity(&mut self, pages: usize) -> Result<()> {
        Ok(self.pool.set_capacity(pages)?)
    }

    /// Current buffer-pool capacity in pages.
    pub fn buffer_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Pages currently resident in the buffer pool (peak occupancy is
    /// bounded by [`Database::buffer_capacity`]).
    pub fn buffer_resident(&self) -> usize {
        self.pool.resident()
    }

    /// Total pages allocated in the backing store — the on-disk data size
    /// in pages, independent of what is cached.
    pub fn data_pages(&self) -> u64 {
        self.pool.num_disk_pages()
    }

    /// Flushes dirty pages and drops the cache, forcing cold reads — used
    /// to measure cold-start behaviour.
    pub fn clear_buffer_cache(&mut self) -> Result<()> {
        Ok(self.pool.clear_cache()?)
    }

    /// Flushes dirty pages to the backend.
    pub fn flush(&mut self) -> Result<()> {
        Ok(self.pool.flush_all()?)
    }

    /// Direct catalog access (diagnostics, the SQL shell example).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Statically analyzes `sql` against the current catalog under the
    /// database's dialect without executing it: name resolution, type
    /// checks, 3VL lints and a plan-shape verdict per table access. `Err`
    /// only on parse failure; semantic findings come back in the report.
    pub fn analyze(&self, sql: &str) -> Result<crate::analyze::Report> {
        crate::analyze::analyze_sql(
            &self.catalog,
            self.dialect,
            sql,
            &crate::analyze::AnalyzeOptions::default(),
        )
    }

    /// Like [`Database::analyze`], with the statement annotated *hot-path*:
    /// a full scan of an indexed table becomes an FC201 error.
    pub fn analyze_hot_path(&self, sql: &str) -> Result<crate::analyze::Report> {
        crate::analyze::analyze_sql(
            &self.catalog,
            self.dialect,
            sql,
            &crate::analyze::AnalyzeOptions { hot_path: true },
        )
    }
}
