//! The database engine facade: parse, plan, execute.
//!
//! [`Database`] owns the buffer pool and catalog and exposes a JDBC-like
//! surface: `execute` / `execute_params` run a statement and report affected
//! rows (the paper's SQLCA), `query` returns a result set. Parsed ASTs are
//! cached per SQL string, so driving the engine with the same parameterized
//! statements each iteration — exactly what the FEM algorithms do — pays the
//! parse cost once.

use crate::ast::Stmt;
use crate::catalog::Catalog;
use crate::dialect::Dialect;
use crate::error::{Result, SqlError};
use crate::exec::eval::ExecCtx;
use crate::exec::{dml, select};
use crate::parser::parse_statement;
use fempath_storage::{BufferPool, IoStats, Value};
use std::collections::HashMap;

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Rows inserted/updated/deleted (the SQLCA "affected tuples" counter
    /// the paper's Algorithms 1 and 2 read).
    pub rows_affected: u64,
    /// Result set for SELECT statements.
    pub rows: Option<ResultSet>,
}

/// A materialized query result.
#[derive(Debug, Clone)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// First value of the first row, if any.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// First value of the first row as an integer (None when absent/NULL).
    pub fn scalar_i64(&self) -> Option<i64> {
        self.scalar().and_then(|v| v.as_i64())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// An embedded relational database instance.
pub struct Database {
    pool: BufferPool,
    catalog: Catalog,
    dialect: Dialect,
    ast_cache: HashMap<String, Stmt>,
    statements_executed: u64,
}

impl Database {
    /// A database whose pages live in memory (tests, small examples).
    pub fn in_memory(buffer_pages: usize) -> Database {
        Database::with_pool(BufferPool::in_memory(buffer_pages))
    }

    /// A database backed by an anonymous temporary file — the disk-resident
    /// configuration used by the experiments.
    pub fn on_temp_file(buffer_pages: usize) -> Result<Database> {
        Ok(Database::with_pool(BufferPool::temp_file(buffer_pages)?))
    }

    /// Wraps an existing buffer pool.
    pub fn with_pool(pool: BufferPool) -> Database {
        Database {
            pool,
            catalog: Catalog::new(),
            dialect: Dialect::default(),
            ast_cache: HashMap::new(),
            statements_executed: 0,
        }
    }

    /// Sets the SQL dialect (builder style).
    pub fn with_dialect(mut self, dialect: Dialect) -> Database {
        self.dialect = dialect;
        self
    }

    /// The active dialect.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Changes the dialect in place.
    pub fn set_dialect(&mut self, dialect: Dialect) {
        self.dialect = dialect;
    }

    /// Executes a statement without parameters.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        self.execute_params(sql, &[])
    }

    /// Executes a statement with `?` parameters bound from `params`.
    pub fn execute_params(&mut self, sql: &str, params: &[Value]) -> Result<ExecOutcome> {
        if !self.ast_cache.contains_key(sql) {
            let stmt = parse_statement(sql)?;
            self.ast_cache.insert(sql.to_string(), stmt);
        }
        let stmt = self.ast_cache.get(sql).expect("just inserted").clone();
        self.run_stmt(&stmt, params)
    }

    /// Runs a semicolon-separated script, returning the last outcome.
    pub fn execute_script(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmts = crate::parser::parse_statements(sql)?;
        let mut last = ExecOutcome {
            rows_affected: 0,
            rows: None,
        };
        for stmt in stmts {
            last = self.run_stmt(&stmt, &[])?;
        }
        Ok(last)
    }

    /// Convenience: runs a SELECT and returns its result set.
    pub fn query(&mut self, sql: &str) -> Result<ResultSet> {
        self.query_params(sql, &[])
    }

    /// Convenience: parameterized SELECT.
    pub fn query_params(&mut self, sql: &str, params: &[Value]) -> Result<ResultSet> {
        let out = self.execute_params(sql, params)?;
        out.rows
            .ok_or_else(|| SqlError::Eval("statement did not return rows".into()))
    }

    /// Executes one parsed statement.
    pub fn run_stmt(&mut self, stmt: &Stmt, params: &[Value]) -> Result<ExecOutcome> {
        self.statements_executed += 1;
        let no_rows = |n: u64| ExecOutcome {
            rows_affected: n,
            rows: None,
        };
        match stmt {
            Stmt::Select(sel) => {
                let mut ctx = ExecCtx {
                    pool: &mut self.pool,
                    catalog: &self.catalog,
                    params,
                    trace: None,
                };
                let rel = select::execute_select(&mut ctx, sel)?;
                Ok(ExecOutcome {
                    rows_affected: 0,
                    rows: Some(ResultSet {
                        columns: rel.schema.cols.iter().map(|c| c.name.clone()).collect(),
                        rows: rel.rows,
                    }),
                })
            }
            Stmt::Explain(inner) => {
                let Stmt::Select(sel) = inner.as_ref() else {
                    return Err(SqlError::Eval(
                        "EXPLAIN currently supports SELECT statements only".into(),
                    ));
                };
                let trace = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
                let mut ctx = ExecCtx {
                    pool: &mut self.pool,
                    catalog: &self.catalog,
                    params,
                    trace: Some(trace.clone()),
                };
                let rel = select::execute_select(&mut ctx, sel)?;
                let mut lines = trace.borrow().clone();
                lines.push(format!("RESULT {} row(s)", rel.rows.len()));
                Ok(ExecOutcome {
                    rows_affected: 0,
                    rows: Some(ResultSet {
                        columns: vec!["plan".into()],
                        rows: lines.into_iter().map(|l| vec![Value::Text(l)]).collect(),
                    }),
                })
            }
            Stmt::CreateTable(ct) => {
                self.catalog.create_table(
                    &mut self.pool,
                    &ct.name,
                    ct.columns.clone(),
                    ct.primary_key.clone(),
                )?;
                Ok(no_rows(0))
            }
            Stmt::CreateIndex(ci) => {
                self.catalog.create_index(&mut self.pool, ci)?;
                Ok(no_rows(0))
            }
            Stmt::CreateView { name, query } => {
                self.catalog.create_view(name, (**query).clone())?;
                Ok(no_rows(0))
            }
            Stmt::DropTable { name, if_exists } => {
                self.catalog.drop_table(&mut self.pool, name, *if_exists)?;
                Ok(no_rows(0))
            }
            Stmt::DropIndex { name } => {
                self.catalog.drop_index(&mut self.pool, name)?;
                Ok(no_rows(0))
            }
            Stmt::DropView { name } => {
                self.catalog.drop_view(name)?;
                Ok(no_rows(0))
            }
            Stmt::Truncate { table } => {
                let t = self.catalog.table_mut(table)?;
                let n = t.len();
                t.truncate(&mut self.pool)?;
                Ok(no_rows(n))
            }
            Stmt::Insert(ins) => {
                let n = dml::execute_insert(&mut self.pool, &mut self.catalog, params, ins)?;
                Ok(no_rows(n))
            }
            Stmt::Update(upd) => {
                let n = dml::execute_update(&mut self.pool, &mut self.catalog, params, upd)?;
                Ok(no_rows(n))
            }
            Stmt::Delete(del) => {
                let n = dml::execute_delete(&mut self.pool, &mut self.catalog, params, del)?;
                Ok(no_rows(n))
            }
            Stmt::Merge(m) => {
                if !self.dialect.supports_merge {
                    return Err(SqlError::UnsupportedByDialect {
                        feature: "MERGE statement".into(),
                        dialect: self.dialect.name.to_string(),
                    });
                }
                let n = dml::execute_merge(&mut self.pool, &mut self.catalog, params, m)?;
                Ok(no_rows(n))
            }
        }
    }

    /// Number of rows currently in `table`.
    pub fn table_len(&self, table: &str) -> Result<u64> {
        Ok(self.catalog.table(table)?.len())
    }

    /// True when the catalog knows `table`.
    pub fn has_table(&self, table: &str) -> bool {
        self.catalog.has_table(table)
    }

    /// Buffer-pool / disk counters.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Zeroes the I/O counters.
    pub fn reset_io_stats(&mut self) {
        self.pool.reset_stats();
    }

    /// Total statements executed since creation.
    pub fn statements_executed(&self) -> u64 {
        self.statements_executed
    }

    /// Resizes the buffer pool (pages) — the paper's buffer-size sweeps.
    pub fn set_buffer_capacity(&mut self, pages: usize) -> Result<()> {
        Ok(self.pool.set_capacity(pages)?)
    }

    /// Current buffer-pool capacity in pages.
    pub fn buffer_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Flushes dirty pages and drops the cache, forcing cold reads — used
    /// to measure cold-start behaviour.
    pub fn clear_buffer_cache(&mut self) -> Result<()> {
        Ok(self.pool.clear_cache()?)
    }

    /// Flushes dirty pages to the backend.
    pub fn flush(&mut self) -> Result<()> {
        Ok(self.pool.flush_all()?)
    }

    /// Direct catalog access (diagnostics, the SQL shell example).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
}
