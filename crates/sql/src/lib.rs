//! # fempath-sql
//!
//! A from-scratch embedded SQL engine over the `fempath-storage` layer.
//!
//! It implements the SQL surface the paper's shortest-path algorithms need —
//! and enough general DDL/DML to be useful on its own:
//!
//! * `CREATE/DROP TABLE/INDEX/VIEW`, `TRUNCATE`, clustered (index-organized)
//!   and secondary indexes, unique constraints;
//! * `SELECT` with joins (index-nested-loop / hash / nested-loop), scalar
//!   and `IN` subqueries, `GROUP BY`/`HAVING`, `ORDER BY`, `TOP`/`LIMIT`,
//!   `DISTINCT`;
//! * **window functions** (`ROW_NUMBER`, `RANK` with
//!   `OVER (PARTITION BY … ORDER BY …)`) — the SQL:2003 feature of §2.2;
//! * **`MERGE`** — the SQL:2008 feature of §2.2 — plus `UPDATE … FROM` as
//!   the traditional-SQL fallback;
//! * **prepared statements with cached physical plans**: `?` positional
//!   parameters, [`Database::prepare`](engine::Database::prepare) /
//!   [`PreparedStmt`] handles, a plan cache keyed by (SQL, catalog
//!   version), and a streaming executor (see [`plan`]);
//! * two [`Dialect`]s mirroring the paper's DBMS-x and PostgreSQL 9.0.
//!
//! ```
//! use fempath_sql::Database;
//! use fempath_storage::Value;
//!
//! let mut db = Database::in_memory(256);
//! db.execute("CREATE TABLE TEdges (fid INT, tid INT, cost INT)").unwrap();
//! db.execute("CREATE CLUSTERED INDEX idx_e ON TEdges(fid)").unwrap();
//! db.execute("INSERT INTO TEdges VALUES (1, 2, 10), (1, 3, 4), (2, 3, 1)").unwrap();
//! let rs = db
//!     .query_params("SELECT tid, cost FROM TEdges WHERE fid = ?", &[Value::Int(1)])
//!     .unwrap();
//! assert_eq!(rs.len(), 2);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod analyze;
pub mod ast;
pub mod catalog;
pub mod dialect;
pub mod engine;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use analyze::{
    AccessKind, AnalyzeOptions, Diagnostic, JoinKind, Report, Rule, Severity, TableAccess,
};
pub use catalog::{Catalog, RowLoc, Table, TableBatchCursor, TableSchema};
pub use dialect::Dialect;
pub use engine::{
    Database, DbSnapshot, ExecMode, ExecOutcome, PreparedStmt, ResultSet, SharedPlanCache,
    SharedPlanCacheStats,
};
pub use error::{Result, SqlError};
pub use parser::{parse_statement, parse_statements};
