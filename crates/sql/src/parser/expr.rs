//! Expression grammar (precedence climbing).
//!
//! ```text
//! expr        := or
//! or          := and (OR and)*
//! and         := not (AND not)*
//! not         := NOT not | predicate
//! predicate   := additive (cmp additive | IS [NOT] NULL | [NOT] IN (subquery))*
//! additive    := multiplic ((+|-) multiplic)*
//! multiplic   := unary ((*|/|%) unary)*
//! unary       := - unary | primary
//! primary     := literal | ? | ( expr | subquery ) | func-call | column
//! ```

use super::Parser;
use crate::ast::{AggFunc, BinaryOp, Expr, OrderKey, UnaryOp, WindowFunc};
use crate::error::Result;
use crate::lexer::TokenKind;
use fempath_storage::Value;

/// Words that cannot appear as a bare column reference — catching typos like
/// `SELECT FROM t` early instead of binding a column named "FROM".
const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "AND", "OR", "IN", "IS",
    "EXISTS", "JOIN", "INNER", "ON", "AS", "MERGE", "UPDATE", "DELETE", "INSERT", "INTO", "VALUES",
    "SET", "WHEN", "MATCHED", "THEN", "CREATE", "DROP", "TABLE", "INDEX", "VIEW", "DISTINCT", "BY",
    "USING", "TRUNCATE",
];

impl Parser {
    pub(crate) fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.peek().is_kw("NOT") && !self.peek2().is_kw("EXISTS") {
            self.advance();
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr> {
        // EXISTS / NOT EXISTS are prefix predicates.
        if self.peek().is_kw("EXISTS") {
            self.advance();
            self.expect(&TokenKind::LParen)?;
            let q = self.select()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Exists {
                query: Box::new(q),
                negated: false,
            });
        }
        if self.peek().is_kw("NOT") && self.peek2().is_kw("EXISTS") {
            self.advance();
            self.advance();
            self.expect(&TokenKind::LParen)?;
            let q = self.select()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Exists {
                query: Box::new(q),
                negated: true,
            });
        }

        let mut left = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Eq => Some(BinaryOp::Eq),
                TokenKind::NotEq => Some(BinaryOp::NotEq),
                TokenKind::Lt => Some(BinaryOp::Lt),
                TokenKind::LtEq => Some(BinaryOp::LtEq),
                TokenKind::Gt => Some(BinaryOp::Gt),
                TokenKind::GtEq => Some(BinaryOp::GtEq),
                _ => None,
            };
            if let Some(op) = op {
                self.advance();
                let right = self.additive()?;
                left = Expr::Binary {
                    left: Box::new(left),
                    op,
                    right: Box::new(right),
                };
                continue;
            }
            if self.peek().is_kw("IS") {
                self.advance();
                let negated = self.eat_kw("NOT");
                self.expect_kw("NULL")?;
                left = Expr::IsNull {
                    expr: Box::new(left),
                    negated,
                };
                continue;
            }
            if self.peek().is_kw("IN") || (self.peek().is_kw("NOT") && self.peek2().is_kw("IN")) {
                let negated = self.eat_kw("NOT");
                self.expect_kw("IN")?;
                self.expect(&TokenKind::LParen)?;
                if self.peek().is_kw("SELECT") {
                    let q = self.select()?;
                    self.expect(&TokenKind::RParen)?;
                    left = Expr::InSubquery {
                        expr: Box::new(left),
                        query: Box::new(q),
                        negated,
                    };
                } else {
                    // Value list: desugar `e IN (a, b, …)` into an OR chain
                    // of equalities (and negate for NOT IN). The grammar
                    // guarantees a first value, which seeds the chain.
                    let mk_eq = |v| Expr::Binary {
                        left: Box::new(left.clone()),
                        op: BinaryOp::Eq,
                        right: Box::new(v),
                    };
                    let first = self.expr()?;
                    let mut chain = mk_eq(first);
                    while self.eat(&TokenKind::Comma) {
                        let v = self.expr()?;
                        chain = Expr::Binary {
                            left: Box::new(chain),
                            op: BinaryOp::Or,
                            right: Box::new(mk_eq(v)),
                        };
                    }
                    self.expect(&TokenKind::RParen)?;
                    left = if negated {
                        Expr::Unary {
                            op: UnaryOp::Not,
                            expr: Box::new(chain),
                        }
                    } else {
                        chain
                    };
                }
                continue;
            }
            if self.peek().is_kw("BETWEEN")
                || (self.peek().is_kw("NOT") && self.peek2().is_kw("BETWEEN"))
            {
                // Desugar `e [NOT] BETWEEN lo AND hi` into range comparisons.
                let negated = self.eat_kw("NOT");
                self.expect_kw("BETWEEN")?;
                let lo = self.additive()?;
                self.expect_kw("AND")?;
                let hi = self.additive()?;
                let range = Expr::Binary {
                    left: Box::new(Expr::Binary {
                        left: Box::new(left.clone()),
                        op: BinaryOp::GtEq,
                        right: Box::new(lo),
                    }),
                    op: BinaryOp::And,
                    right: Box::new(Expr::Binary {
                        left: Box::new(left),
                        op: BinaryOp::LtEq,
                        right: Box::new(hi),
                    }),
                };
                left = if negated {
                    Expr::Unary {
                        op: UnaryOp::Not,
                        expr: Box::new(range),
                    }
                } else {
                    range
                };
                continue;
            }
            return Ok(left);
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Text(s)))
            }
            TokenKind::Param => {
                self.advance();
                let ordinal = self.params;
                self.params += 1;
                Ok(Expr::Param(ordinal))
            }
            TokenKind::LParen => {
                self.advance();
                // Either a scalar subquery or a parenthesised expression.
                if self.peek().is_kw("SELECT") {
                    let q = self.select()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("NULL") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Int(1)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Int(0)));
                }
                // Function call?
                if self.peek2() == &TokenKind::LParen {
                    if let Some(e) = self.try_function_call(&name)? {
                        return Ok(e);
                    }
                }
                if RESERVED.iter().any(|k| name.eq_ignore_ascii_case(k)) {
                    return Err(self.error(format!("unexpected keyword {name} in expression")));
                }
                self.advance();
                // Qualified column `t.c`?
                if self.eat(&TokenKind::Dot) {
                    let col = self.expect_ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(self.error(format!("unexpected token {other:?} in expression"))),
        }
    }

    /// Parses aggregate and window function calls; returns `Ok(None)` for
    /// unknown function names (the caller treats the ident as a column).
    fn try_function_call(&mut self, name: &str) -> Result<Option<Expr>> {
        let agg = match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "AVG" => Some(AggFunc::Avg),
            _ => None,
        };
        if let Some(func) = agg {
            self.advance(); // name
            self.expect(&TokenKind::LParen)?;
            let arg = if self.eat(&TokenKind::Star) {
                None
            } else {
                Some(Box::new(self.expr()?))
            };
            self.expect(&TokenKind::RParen)?;
            return Ok(Some(Expr::Aggregate { func, arg }));
        }
        let win = match name.to_ascii_uppercase().as_str() {
            "ROW_NUMBER" => Some(WindowFunc::RowNumber),
            "RANK" => Some(WindowFunc::Rank),
            _ => None,
        };
        if let Some(func) = win {
            self.advance(); // name
            self.expect(&TokenKind::LParen)?;
            self.expect(&TokenKind::RParen)?;
            self.expect_kw("OVER")?;
            self.expect(&TokenKind::LParen)?;
            let mut partition_by = Vec::new();
            if self.eat_kw("PARTITION") {
                self.expect_kw("BY")?;
                partition_by.push(self.expr()?);
                while self.eat(&TokenKind::Comma) {
                    partition_by.push(self.expr()?);
                }
            }
            let order_by = if self.eat_kw("ORDER") {
                self.expect_kw("BY")?;
                self.order_key_list()?
            } else {
                Vec::new()
            };
            self.expect(&TokenKind::RParen)?;
            return Ok(Some(Expr::Window {
                func,
                partition_by,
                order_by,
            }));
        }
        Ok(None)
    }

    pub(crate) fn order_key_list(&mut self) -> Result<Vec<OrderKey>> {
        let mut keys = vec![self.order_key()?];
        while self.eat(&TokenKind::Comma) {
            keys.push(self.order_key()?);
        }
        Ok(keys)
    }

    fn order_key(&mut self) -> Result<OrderKey> {
        let expr = self.expr()?;
        let asc = if self.eat_kw("DESC") {
            false
        } else {
            self.eat_kw("ASC");
            true
        };
        Ok(OrderKey { expr, asc })
    }
}
