//! DDL, DML and MERGE grammar.

use super::Parser;
use crate::ast::{
    ColumnDef, CreateIndex, CreateTable, Delete, Insert, InsertSource, Merge, MergeInsert,
    MergeMatched, Stmt, Update,
};
use crate::error::Result;
use crate::lexer::TokenKind;
use fempath_storage::DataType;

impl Parser {
    pub(crate) fn create(&mut self) -> Result<Stmt> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            return self.create_table();
        }
        if self.eat_kw("VIEW") {
            let name = self.expect_ident()?;
            self.expect_kw("AS")?;
            let query = self.select()?;
            return Ok(Stmt::CreateView {
                name,
                query: Box::new(query),
            });
        }
        let mut unique = false;
        let mut clustered = false;
        loop {
            if self.eat_kw("UNIQUE") {
                unique = true;
            } else if self.eat_kw("CLUSTERED") {
                clustered = true;
            } else {
                break;
            }
        }
        self.expect_kw("INDEX")?;
        let name = self.expect_ident()?;
        self.expect_kw("ON")?;
        let table = self.expect_ident()?;
        let columns = self.ident_list_parens()?;
        Ok(Stmt::CreateIndex(CreateIndex {
            name,
            table,
            columns,
            unique,
            clustered,
        }))
    }

    fn create_table(&mut self) -> Result<Stmt> {
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = None;
        loop {
            if self.peek().is_kw("PRIMARY") {
                self.advance();
                self.expect_kw("KEY")?;
                primary_key = Some(self.ident_list_parens()?);
            } else {
                let col = self.expect_ident()?;
                let dtype = self.data_type()?;
                columns.push(ColumnDef { name: col, dtype });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Stmt::CreateTable(CreateTable {
            name,
            columns,
            primary_key,
        }))
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.expect_ident()?;
        let dt = match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => DataType::Int,
            "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => DataType::Float,
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => DataType::Text,
            other => return Err(self.error(format!("unknown data type {other}"))),
        };
        // Swallow a length spec such as VARCHAR(32).
        if self.peek() == &TokenKind::LParen {
            self.advance();
            while self.peek() != &TokenKind::RParen && self.peek() != &TokenKind::Eof {
                self.advance();
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(dt)
    }

    pub(crate) fn drop(&mut self) -> Result<Stmt> {
        self.expect_kw("DROP")?;
        if self.eat_kw("TABLE") {
            let mut if_exists = false;
            if self.peek().is_kw("IF") {
                self.advance();
                self.expect_kw("EXISTS")?;
                if_exists = true;
            }
            let name = self.expect_ident()?;
            return Ok(Stmt::DropTable { name, if_exists });
        }
        if self.eat_kw("INDEX") {
            let name = self.expect_ident()?;
            return Ok(Stmt::DropIndex { name });
        }
        if self.eat_kw("VIEW") {
            let name = self.expect_ident()?;
            return Ok(Stmt::DropView { name });
        }
        Err(self.error("expected TABLE, INDEX or VIEW after DROP"))
    }

    pub(crate) fn truncate(&mut self) -> Result<Stmt> {
        self.expect_kw("TRUNCATE")?;
        self.eat_kw("TABLE");
        let table = self.expect_ident()?;
        Ok(Stmt::Truncate { table })
    }

    pub(crate) fn insert(&mut self) -> Result<Stmt> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.expect_ident()?;
        let columns = if self.peek() == &TokenKind::LParen {
            Some(self.ident_list_parens()?)
        } else {
            None
        };
        let source = if self.eat_kw("VALUES") {
            let mut rows = vec![self.value_row()?];
            while self.eat(&TokenKind::Comma) {
                rows.push(self.value_row()?);
            }
            InsertSource::Values(rows)
        } else if self.peek().is_kw("SELECT") {
            InsertSource::Query(Box::new(self.select()?))
        } else {
            return Err(self.error("expected VALUES or SELECT in INSERT"));
        };
        Ok(Stmt::Insert(Insert {
            table,
            columns,
            source,
        }))
    }

    fn value_row(&mut self) -> Result<Vec<crate::ast::Expr>> {
        self.expect(&TokenKind::LParen)?;
        let mut row = vec![self.expr()?];
        while self.eat(&TokenKind::Comma) {
            row.push(self.expr()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(row)
    }

    pub(crate) fn update(&mut self) -> Result<Stmt> {
        self.expect_kw("UPDATE")?;
        let table = self.expect_ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.expect_ident()?)
        } else if matches!(self.peek(), TokenKind::Ident(a) if !a.eq_ignore_ascii_case("SET")) {
            let a = self.expect_ident()?;
            Some(a)
        } else {
            None
        };
        self.expect_kw("SET")?;
        let mut assignments = vec![self.assignment()?];
        while self.eat(&TokenKind::Comma) {
            assignments.push(self.assignment()?);
        }
        let from = if self.eat_kw("FROM") {
            Some(self.table_ref()?)
        } else {
            None
        };
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update(Update {
            table,
            alias,
            assignments,
            from,
            filter,
        }))
    }

    fn assignment(&mut self) -> Result<(String, crate::ast::Expr)> {
        let col = self.expect_ident()?;
        self.expect(&TokenKind::Eq)?;
        let value = self.expr()?;
        Ok((col, value))
    }

    pub(crate) fn delete(&mut self) -> Result<Stmt> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.expect_ident()?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete(Delete { table, filter }))
    }

    /// `MERGE [INTO] target [AS alias] USING source [AS alias] ON (cond)
    ///  WHEN MATCHED [AND cond] THEN UPDATE SET …
    ///  WHEN NOT MATCHED [BY TARGET] THEN INSERT (…) VALUES (…)`
    pub(crate) fn merge(&mut self) -> Result<Stmt> {
        self.expect_kw("MERGE")?;
        self.eat_kw("INTO");
        let target = self.expect_ident()?;
        self.eat_kw("AS");
        let target_alias = if matches!(self.peek(), TokenKind::Ident(a) if !a.eq_ignore_ascii_case("USING"))
        {
            Some(self.expect_ident()?)
        } else {
            None
        };
        self.expect_kw("USING")?;
        let source = self.table_ref()?;
        self.expect_kw("ON")?;
        // Parenthesised or bare condition.
        let on = self.expr()?;

        let mut when_matched = None;
        let mut when_not_matched = None;
        while self.eat_kw("WHEN") {
            if self.eat_kw("MATCHED") {
                let condition = if self.eat_kw("AND") {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_kw("THEN")?;
                self.expect_kw("UPDATE")?;
                self.expect_kw("SET")?;
                let mut assignments = vec![self.assignment()?];
                while self.eat(&TokenKind::Comma) {
                    assignments.push(self.assignment()?);
                }
                when_matched = Some(MergeMatched {
                    condition,
                    assignments,
                });
            } else {
                self.expect_kw("NOT")?;
                self.expect_kw("MATCHED")?;
                if self.eat_kw("BY") {
                    // `BY TARGET` — the paper's phrasing; only the target
                    // side is supported.
                    self.expect_kw("TARGET")?;
                }
                self.expect_kw("THEN")?;
                self.expect_kw("INSERT")?;
                let columns = self.ident_list_parens()?;
                self.expect_kw("VALUES")?;
                let values = self.value_row()?;
                when_not_matched = Some(MergeInsert { columns, values });
            }
        }
        Ok(Stmt::Merge(Merge {
            target,
            target_alias,
            source,
            on,
            when_matched,
            when_not_matched,
        }))
    }
}

impl Merge {
    /// The binding name of the merge source inside ON / assignments.
    pub fn source_name(&self) -> &str {
        self.source.binding_name()
    }
}

#[allow(unused_imports)]
use crate::ast::Select;

#[cfg(test)]
mod tests {
    use crate::ast::*;
    use crate::parser::{count_params, parse_statement, parse_statements};
    use fempath_storage::Value;

    #[test]
    fn parse_create_table_with_pk() {
        let s = parse_statement(
            "CREATE TABLE TVisited (nid INT, d2s INT, p2s INT, f INT, PRIMARY KEY(nid))",
        )
        .unwrap();
        match s {
            Stmt::CreateTable(ct) => {
                assert_eq!(ct.name, "TVisited");
                assert_eq!(ct.columns.len(), 4);
                assert_eq!(ct.primary_key, Some(vec!["nid".to_string()]));
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn parse_create_clustered_index() {
        let s = parse_statement("CREATE CLUSTERED INDEX idx_edges ON TEdges(fid)").unwrap();
        match s {
            Stmt::CreateIndex(ci) => {
                assert!(ci.clustered);
                assert!(!ci.unique);
                assert_eq!(ci.columns, vec!["fid"]);
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn parse_insert_values_and_params() {
        let s =
            parse_statement("INSERT INTO TVisited (nid, d2s, p2s, f) VALUES (?, 0, ?, 0)").unwrap();
        match s {
            Stmt::Insert(ins) => {
                assert_eq!(ins.table, "TVisited");
                match ins.source {
                    InsertSource::Values(rows) => {
                        assert_eq!(rows.len(), 1);
                        assert_eq!(rows[0][0], Expr::Param(0));
                        assert_eq!(rows[0][2], Expr::Param(1));
                    }
                    _ => panic!("expected VALUES"),
                }
            }
            other => panic!("wrong stmt {other:?}"),
        }
        assert_eq!(
            count_params("INSERT INTO t (a, b) VALUES (?, ?)").unwrap(),
            2
        );
    }

    #[test]
    fn parse_select_top_with_subquery() {
        // Listing 2(2) of the paper.
        let s = parse_statement(
            "SELECT TOP 1 nid FROM TVisited WHERE f=0 \
             AND d2s=(SELECT MIN(d2s) FROM TVisited WHERE f=0)",
        )
        .unwrap();
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.top, Some(1));
                let filter = sel.filter.unwrap();
                // Must contain a scalar subquery somewhere.
                fn has_subquery(e: &Expr) -> bool {
                    match e {
                        Expr::Subquery(_) => true,
                        Expr::Binary { left, right, .. } => {
                            has_subquery(left) || has_subquery(right)
                        }
                        Expr::Unary { expr, .. } => has_subquery(expr),
                        _ => false,
                    }
                }
                assert!(has_subquery(&filter));
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn parse_window_function_with_derived_table() {
        // The paper's E-operator (Listing 2(3)), modulo table/col names.
        let s = parse_statement(
            "SELECT nid, p2s, cost FROM \
               (SELECT e.tid AS nid, e.fid AS p2s, e.cost + q.d2s AS cost, \
                       ROW_NUMBER() OVER (PARTITION BY e.tid ORDER BY e.cost + q.d2s) AS rownum \
                FROM TVisited q, TEdges e \
                WHERE q.nid = e.fid AND q.f = 2) tmp \
             WHERE rownum = 1",
        )
        .unwrap();
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.from.len(), 1);
                match &sel.from[0] {
                    TableRef::Derived { query, alias, .. } => {
                        assert_eq!(alias, "tmp");
                        assert_eq!(query.from.len(), 2);
                        let win = query.items.iter().any(|it| match it {
                            SelectItem::Expr { expr, .. } => expr.contains_window(),
                            _ => false,
                        });
                        assert!(win, "window function must be detected");
                    }
                    other => panic!("expected derived table, got {other:?}"),
                }
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn parse_derived_table_with_column_list() {
        let s =
            parse_statement("SELECT a FROM (SELECT nid, d2s FROM TVisited) tmp (a, b) WHERE b > 3")
                .unwrap();
        match s {
            Stmt::Select(sel) => match &sel.from[0] {
                TableRef::Derived { columns, .. } => {
                    assert_eq!(
                        columns.as_ref().unwrap(),
                        &vec!["a".to_string(), "b".into()]
                    );
                }
                other => panic!("expected derived, got {other:?}"),
            },
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn parse_merge_statement_from_paper() {
        // Listing 2(4), lightly normalised.
        let s = parse_statement(
            "MERGE INTO TVisited AS target USING ek AS source ON source.nid = target.nid \
             WHEN MATCHED AND target.d2s > source.cost THEN \
               UPDATE SET d2s = source.cost, p2s = source.p2s, f = 0 \
             WHEN NOT MATCHED BY TARGET THEN \
               INSERT (nid, d2s, p2s, f) VALUES (source.nid, source.cost, source.p2s, 0)",
        )
        .unwrap();
        match s {
            Stmt::Merge(m) => {
                assert_eq!(m.target, "TVisited");
                assert_eq!(m.target_alias.as_deref(), Some("target"));
                assert_eq!(m.source_name(), "source");
                let wm = m.when_matched.unwrap();
                assert!(wm.condition.is_some());
                assert_eq!(wm.assignments.len(), 3);
                let wnm = m.when_not_matched.unwrap();
                assert_eq!(wnm.columns, vec!["nid", "d2s", "p2s", "f"]);
                assert_eq!(wnm.values.len(), 4);
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn parse_update_with_from() {
        let s = parse_statement(
            "UPDATE TVisited SET d2s = ek.cost, p2s = ek.p2s, f = 0 FROM ek \
             WHERE TVisited.nid = ek.nid AND TVisited.d2s > ek.cost",
        )
        .unwrap();
        match s {
            Stmt::Update(u) => {
                assert_eq!(u.table, "TVisited");
                assert!(u.from.is_some());
                assert_eq!(u.assignments.len(), 3);
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn parse_not_in_subquery() {
        let s = parse_statement(
            "INSERT INTO TVisited (nid) SELECT nid FROM ek \
             WHERE nid NOT IN (SELECT nid FROM TVisited)",
        )
        .unwrap();
        match s {
            Stmt::Insert(ins) => match ins.source {
                InsertSource::Query(q) => {
                    assert!(matches!(
                        q.filter.unwrap(),
                        Expr::InSubquery { negated: true, .. }
                    ));
                }
                _ => panic!("expected query source"),
            },
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn parse_group_by_having_order_by() {
        let s = parse_statement(
            "SELECT e.tid, MIN(e.cost + q.d2s) AS c FROM TVisited q, TEdges e \
             WHERE q.nid = e.fid GROUP BY e.tid HAVING MIN(e.cost + q.d2s) < 100 \
             ORDER BY c DESC LIMIT 10",
        )
        .unwrap();
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.group_by.len(), 1);
                assert!(sel.having.is_some());
                assert_eq!(sel.order_by.len(), 1);
                assert!(!sel.order_by[0].asc);
                assert_eq!(sel.limit, Some(10));
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn parse_multi_statement_script() {
        let stmts =
            parse_statements("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn parse_literals() {
        let s = parse_statement("SELECT 1, 2.5, 'text', NULL, -3").unwrap();
        match s {
            Stmt::Select(sel) => {
                let exprs: Vec<_> = sel
                    .items
                    .iter()
                    .map(|i| match i {
                        SelectItem::Expr { expr, .. } => expr.clone(),
                        _ => panic!(),
                    })
                    .collect();
                assert_eq!(exprs[0], Expr::Literal(Value::Int(1)));
                assert_eq!(exprs[1], Expr::Literal(Value::Float(2.5)));
                assert_eq!(exprs[2], Expr::Literal(Value::Text("text".into())));
                assert_eq!(exprs[3], Expr::Literal(Value::Null));
                assert!(matches!(
                    exprs[4],
                    Expr::Unary {
                        op: UnaryOp::Neg,
                        ..
                    }
                ));
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn parse_join_on_sugar() {
        let s =
            parse_statement("SELECT a.x FROM ta a JOIN tb b ON a.id = b.id WHERE b.y > 2").unwrap();
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.from.len(), 2);
                // ON condition folded into the filter.
                let f = sel.filter.unwrap();
                assert!(matches!(
                    f,
                    Expr::Binary {
                        op: BinaryOp::And,
                        ..
                    }
                ));
            }
            other => panic!("wrong stmt {other:?}"),
        }
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_statement("SELEC 1").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELECT 1 extra garbage !!!").is_err());
    }

    #[test]
    fn parse_delete_and_truncate() {
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a = 1").unwrap(),
            Stmt::Delete(_)
        ));
        assert!(matches!(
            parse_statement("TRUNCATE TABLE t").unwrap(),
            Stmt::Truncate { .. }
        ));
    }

    #[test]
    fn parse_is_null_and_exists() {
        let s = parse_statement("SELECT * FROM t WHERE a IS NOT NULL AND EXISTS (SELECT 1 FROM u)")
            .unwrap();
        assert!(matches!(s, Stmt::Select(_)));
    }
}
