//! SELECT grammar.

use super::Parser;
use crate::ast::{Select, SelectItem, TableRef};
use crate::error::Result;
use crate::lexer::TokenKind;

/// Keywords that terminate a table alias position.
const RESERVED_AFTER_TABLE: &[&str] = &[
    "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "ON", "JOIN", "INNER", "LEFT", "USING", "WHEN",
    "SET", "AS",
];

impl Parser {
    pub(crate) fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let top = if self.eat_kw("TOP") {
            match self.advance() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                _ => return Err(self.error("expected non-negative integer after TOP")),
            }
        } else {
            None
        };

        let mut items = vec![self.select_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }

        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            from.push(self.table_ref()?);
            loop {
                if self.eat(&TokenKind::Comma) {
                    from.push(self.table_ref()?);
                } else if self.peek().is_kw("JOIN")
                    || (self.peek().is_kw("INNER") && self.peek2().is_kw("JOIN"))
                {
                    // INNER JOIN sugar: `a JOIN b ON cond` is parsed as a
                    // comma join with the ON condition folded into WHERE.
                    self.eat_kw("INNER");
                    self.expect_kw("JOIN")?;
                    from.push(self.table_ref()?);
                    self.expect_kw("ON")?;
                    let cond = self.expr()?;
                    // Stash; merged into the filter below.
                    self.pending_join_conds.push(cond);
                } else {
                    break;
                }
            }
        }

        let mut filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        for cond in std::mem::take(&mut self.pending_join_conds) {
            filter = Some(match filter {
                Some(f) => f.and(cond),
                None => cond,
            });
        }

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }

        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };

        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            self.order_key_list()?
        } else {
            Vec::new()
        };

        let limit = if self.eat_kw("LIMIT") {
            match self.advance() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                _ => return Err(self.error("expected non-negative integer after LIMIT")),
            }
        } else {
            None
        };

        Ok(Select {
            distinct,
            top,
            items,
            from,
            filter,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.peek2() == &TokenKind::Dot {
                // Look one further ahead for `*`.
                let save = self.save();
                self.advance();
                self.advance();
                if self.eat(&TokenKind::Star) {
                    return Ok(SelectItem::QualifiedWildcard(name));
                }
                self.restore(save);
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.expect_ident()?)
        } else if let TokenKind::Ident(name) = self.peek() {
            // Bare alias, unless it's a clause keyword.
            if RESERVED_AFTER_TABLE
                .iter()
                .any(|k| name.eq_ignore_ascii_case(k))
                || name.eq_ignore_ascii_case("FROM")
            {
                None
            } else {
                let a = name.clone();
                self.advance();
                Some(a)
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    pub(crate) fn table_ref(&mut self) -> Result<TableRef> {
        if self.eat(&TokenKind::LParen) {
            let query = self.select()?;
            self.expect(&TokenKind::RParen)?;
            self.eat_kw("AS");
            let alias = self.expect_ident()?;
            // Optional derived-table column list: `tmp (nid, p2s, cost)`.
            let columns = if self.peek() == &TokenKind::LParen {
                Some(self.ident_list_parens()?)
            } else {
                None
            };
            return Ok(TableRef::Derived {
                query: Box::new(query),
                alias,
                columns,
            });
        }
        let name = self.expect_ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.expect_ident()?)
        } else if let TokenKind::Ident(a) = self.peek() {
            if RESERVED_AFTER_TABLE
                .iter()
                .any(|k| a.eq_ignore_ascii_case(k))
            {
                None
            } else {
                let a = a.clone();
                self.advance();
                Some(a)
            }
        } else {
            None
        };
        Ok(TableRef::Named { name, alias })
    }
}
