//! Recursive-descent SQL parser.
//!
//! Entry point: [`parse_statement`] / [`parse_statements`]. The grammar is
//! described in [`crate::ast`].

mod expr;
mod select;
mod stmt;

use crate::ast::Stmt;
use crate::error::{Result, SqlError};
use crate::lexer::{tokenize, Token, TokenKind};

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` parameters seen so far (assigns ordinals).
    pub(crate) params: usize,
    /// ON-conditions of `JOIN … ON` clauses awaiting merge into WHERE.
    pub(crate) pending_join_conds: Vec<crate::ast::Expr>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            params: 0,
            pending_join_conds: Vec::new(),
        }
    }

    /// Saves the cursor for backtracking (parameters are not affected by
    /// the lookahead paths that use this).
    pub(crate) fn save(&self) -> usize {
        self.pos
    }

    pub(crate) fn restore(&mut self, save: usize) {
        self.pos = save;
    }

    pub(crate) fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    pub(crate) fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    pub(crate) fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn error(&self, msg: impl Into<String>) -> SqlError {
        SqlError::Parse {
            message: msg.into(),
            position: self.tokens[self.pos].pos,
        }
    }

    /// Consumes the next token if it is the given keyword.
    pub(crate) fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Requires the next token to be the given keyword.
    pub(crate) fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}, found {:?}", self.peek())))
        }
    }

    /// Consumes the next token if it matches `kind` exactly.
    pub(crate) fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected {kind:?}, found {:?}", self.peek())))
        }
    }

    /// Requires an identifier (keyword tokens qualify — column names like
    /// `cost` are not reserved).
    pub(crate) fn expect_ident(&mut self) -> Result<String> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Parses a comma-separated identifier list in parentheses.
    pub(crate) fn ident_list_parens(&mut self) -> Result<Vec<String>> {
        self.expect(&TokenKind::LParen)?;
        let mut out = vec![self.expect_ident()?];
        while self.eat(&TokenKind::Comma) {
            out.push(self.expect_ident()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(out)
    }

    fn statement(&mut self) -> Result<Stmt> {
        if self.eat_kw("EXPLAIN") {
            let inner = self.statement()?;
            return Ok(Stmt::Explain(Box::new(inner)));
        }
        let stmt = if self.peek().is_kw("SELECT") {
            Stmt::Select(Box::new(self.select()?))
        } else if self.peek().is_kw("CREATE") {
            self.create()?
        } else if self.peek().is_kw("DROP") {
            self.drop()?
        } else if self.peek().is_kw("INSERT") {
            self.insert()?
        } else if self.peek().is_kw("UPDATE") {
            self.update()?
        } else if self.peek().is_kw("DELETE") {
            self.delete()?
        } else if self.peek().is_kw("MERGE") {
            self.merge()?
        } else if self.peek().is_kw("TRUNCATE") {
            self.truncate()?
        } else {
            return Err(self.error(format!("unexpected token {:?}", self.peek())));
        };
        Ok(stmt)
    }
}

/// Parses a single SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Stmt> {
    let mut p = Parser::new(tokenize(sql)?);
    let stmt = p.statement()?;
    p.eat(&TokenKind::Semicolon);
    if p.peek() != &TokenKind::Eof {
        return Err(p.error("trailing tokens after statement"));
    }
    Ok(stmt)
}

/// Parses a semicolon-separated script.
pub fn parse_statements(sql: &str) -> Result<Vec<Stmt>> {
    let mut p = Parser::new(tokenize(sql)?);
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.peek() == &TokenKind::Eof {
            break;
        }
        out.push(p.statement()?);
        if !p.eat(&TokenKind::Semicolon) && p.peek() != &TokenKind::Eof {
            return Err(p.error("expected ';' between statements"));
        }
    }
    Ok(out)
}

/// Number of `?` parameters in a statement (re-tokenizes; used by prepare).
pub fn count_params(sql: &str) -> Result<usize> {
    Ok(tokenize(sql)?
        .iter()
        .filter(|t| t.kind == TokenKind::Param)
        .count())
}
