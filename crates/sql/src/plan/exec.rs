//! Streaming execution of physical plans.
//!
//! Rows flow scan → filter → join probe → project through one reused row
//! buffer; materialization happens only where semantics require it — the
//! hash-join build side, sort and window inputs, aggregation state, and
//! the read-before-write set of DML. Streaming sinks can stop the
//! pipeline early (`TOP 1` stops at the first matching row instead of
//! scanning the table to the end).
//!
//! Per-execution runtime work is limited to: evaluating `?` parameters,
//! re-running the statement's uncorrelated [`SubPlan`]s against current
//! data, and the row-level work itself. All name resolution and plan
//! choice happened at prepare time (`super::build`).

use super::{
    FromPlan, InputPlan, InsertSourcePlan, JoinPlan, MergePlan, PExpr, RightPlan, SelectPlan,
    SourcePlan, SubPlan, UpdateKind, UpdatePlan,
};
use crate::ast::{BinaryOp, UnaryOp};
use crate::catalog::{Catalog, RowLoc};
use crate::error::{Result, SqlError};
use crate::exec::agg::AggState;
use crate::exec::eval::{arith, truthy, HashKey};
use fempath_storage::{encode_key, BufferPool, Value};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Per-execution context: the parameter list and the evaluated subquery
/// slots.
pub(crate) struct Env<'a> {
    pub(crate) params: &'a [Value],
    pub(crate) subs: Vec<SubResult>,
}

/// Result of one subquery slot for the current execution.
pub(crate) enum SubResult {
    Scalar(Value),
    /// Sorted, deduplicated, NULL-free list + "the subquery produced a
    /// NULL" flag (three-valued `[NOT] IN`, see
    /// [`crate::exec::eval::in_list_result`]).
    List(Rc<Vec<Value>>, bool),
    Exists(bool),
}

/// Evaluates a plan expression against a row.
pub(crate) fn eval_px(e: &PExpr, row: &[Value], env: &Env<'_>) -> Result<Value> {
    Ok(match e {
        PExpr::Const(v) => v.clone(),
        PExpr::Param(i) => env.params.get(*i).cloned().ok_or(SqlError::ParamCount {
            expected: i + 1,
            got: env.params.len(),
        })?,
        PExpr::Col(i) => row[*i].clone(),
        PExpr::Unary { op, e } => {
            let v = eval_px(e, row, env)?;
            match op {
                UnaryOp::Neg => match v {
                    Value::Int(i) => Value::Int(-i),
                    Value::Float(f) => Value::Float(-f),
                    Value::Null => Value::Null,
                    Value::Text(_) => return Err(SqlError::Eval("cannot negate text".into())),
                },
                UnaryOp::Not => match v {
                    Value::Null => Value::Null,
                    other => Value::Int(i64::from(!truthy(&other))),
                },
            }
        }
        PExpr::Binary { l, op, r } => {
            match op {
                BinaryOp::And => {
                    let lv = eval_px(l, row, env)?;
                    if !lv.is_null() && !truthy(&lv) {
                        return Ok(Value::Int(0));
                    }
                    let rv = eval_px(r, row, env)?;
                    if !rv.is_null() && !truthy(&rv) {
                        return Ok(Value::Int(0));
                    }
                    if lv.is_null() || rv.is_null() {
                        return Ok(Value::Null);
                    }
                    return Ok(Value::Int(1));
                }
                BinaryOp::Or => {
                    let lv = eval_px(l, row, env)?;
                    if truthy(&lv) {
                        return Ok(Value::Int(1));
                    }
                    let rv = eval_px(r, row, env)?;
                    if truthy(&rv) {
                        return Ok(Value::Int(1));
                    }
                    if lv.is_null() || rv.is_null() {
                        return Ok(Value::Null);
                    }
                    return Ok(Value::Int(0));
                }
                _ => {}
            }
            let lv = eval_px(l, row, env)?;
            let rv = eval_px(r, row, env)?;
            match op {
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                    arith(*op, lv, rv)?
                }
                BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq => {
                    if lv.is_null() || rv.is_null() {
                        Value::Null
                    } else {
                        let ord = lv.total_cmp(&rv);
                        let b = match op {
                            BinaryOp::Eq => ord.is_eq(),
                            BinaryOp::NotEq => ord.is_ne(),
                            BinaryOp::Lt => ord.is_lt(),
                            BinaryOp::LtEq => ord.is_le(),
                            BinaryOp::Gt => ord.is_gt(),
                            BinaryOp::GtEq => ord.is_ge(),
                            _ => unreachable!(),
                        };
                        Value::Int(i64::from(b))
                    }
                }
                BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
            }
        }
        PExpr::IsNull { e, negated } => {
            let v = eval_px(e, row, env)?;
            Value::Int(i64::from(v.is_null() != *negated))
        }
        PExpr::Sub(i) => match &env.subs[*i] {
            SubResult::Scalar(v) => v.clone(),
            _ => unreachable!("slot kind fixed at plan time"),
        },
        PExpr::InSub { e, sub, negated } => {
            let v = eval_px(e, row, env)?;
            let SubResult::List(list, has_null) = &env.subs[*sub] else {
                unreachable!("slot kind fixed at plan time")
            };
            crate::exec::eval::in_list_result(&v, list, *has_null, *negated)
        }
        PExpr::ExistsSub { sub, negated } => {
            let SubResult::Exists(exists) = &env.subs[*sub] else {
                unreachable!("slot kind fixed at plan time")
            };
            Value::Int(i64::from(*exists != *negated))
        }
    })
}

/// True when every predicate holds for the row.
pub(crate) fn passes(preds: &[PExpr], row: &[Value], env: &Env<'_>) -> Result<bool> {
    for p in preds {
        if !truthy(&eval_px(p, row, env)?) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Runs every subquery slot against current data, producing the
/// execution's [`Env`].
fn build_env<'a>(
    pool: &mut BufferPool,
    catalog: &Catalog,
    params: &'a [Value],
    subplans: &[SubPlan],
) -> Result<Env<'a>> {
    let mut subs = Vec::with_capacity(subplans.len());
    for sp in subplans {
        let res = match sp {
            SubPlan::Scalar(p) => {
                let rows = run_select_rows(pool, catalog, params, p)?;
                if rows.len() > 1 {
                    return Err(SqlError::Eval(
                        "scalar subquery returned more than one row".into(),
                    ));
                }
                match rows.into_iter().next() {
                    Some(mut row) => {
                        if row.len() != 1 {
                            return Err(SqlError::Eval(
                                "scalar subquery must return exactly one column".into(),
                            ));
                        }
                        SubResult::Scalar(row.pop().ok_or_else(|| {
                            SqlError::Eval("scalar subquery returned an empty row".into())
                        })?)
                    }
                    None => SubResult::Scalar(Value::Null),
                }
            }
            SubPlan::List(p) => {
                let rows = run_select_rows(pool, catalog, params, p)?;
                let mut list: Vec<Value> = rows
                    .into_iter()
                    .map(|mut r| {
                        if r.len() != 1 {
                            return Err(SqlError::Eval(
                                "IN subquery must return exactly one column".into(),
                            ));
                        }
                        r.pop().ok_or_else(|| {
                            SqlError::Eval("IN subquery returned an empty row".into())
                        })
                    })
                    .collect::<Result<_>>()?;
                let n = list.len();
                list.retain(|v| !v.is_null());
                let has_null = list.len() != n;
                list.sort_by(|a, b| a.total_cmp(b));
                list.dedup();
                SubResult::List(Rc::new(list), has_null)
            }
            SubPlan::Exists(p) => {
                SubResult::Exists(!run_select_rows(pool, catalog, params, p)?.is_empty())
            }
        };
        subs.push(res);
    }
    Ok(Env { params, subs })
}

/// Streams a source's rows (filters applied) into `f`; `f` returns
/// `false` to stop early.
fn stream_source(
    pool: &mut BufferPool,
    catalog: &Catalog,
    env: &Env<'_>,
    sp: &SourcePlan,
    f: &mut dyn FnMut(Vec<Value>) -> Result<bool>,
) -> Result<()> {
    match &sp.input {
        InputPlan::Nothing => {
            if passes(&sp.filter, &[], env)? {
                f(Vec::new())?;
            }
            Ok(())
        }
        InputPlan::Scan { table, .. } => {
            let t = catalog.table(table)?;
            let mut err: Option<SqlError> = None;
            t.scan(pool, |_, row| {
                match passes(&sp.filter, &row, env)
                    .and_then(|ok| if ok { f(row) } else { Ok(true) })
                {
                    Ok(cont) => cont,
                    Err(e) => {
                        err = Some(e);
                        false
                    }
                }
            })?;
            if let Some(e) = err {
                return Err(e);
            }
            Ok(())
        }
        InputPlan::Lookup {
            table, cols, keys, ..
        } => {
            let mut key_vals = Vec::with_capacity(keys.len());
            for k in keys {
                key_vals.push(eval_px(k, &[], env)?);
            }
            if key_vals.iter().any(|k| k.is_null()) {
                return Ok(()); // `col = NULL` never matches
            }
            let t = catalog.table(table)?;
            let mut err: Option<SqlError> = None;
            t.lookup_eq(pool, cols, &key_vals, |_, row| {
                match passes(&sp.filter, &row, env)
                    .and_then(|ok| if ok { f(row) } else { Ok(true) })
                {
                    Ok(cont) => cont,
                    Err(e) => {
                        err = Some(e);
                        false
                    }
                }
            })?;
            if let Some(e) = err {
                return Err(e);
            }
            Ok(())
        }
        InputPlan::Derived(sub) => {
            let rows = run_select_rows(pool, catalog, env.params, sub)?;
            for row in rows {
                if passes(&sp.filter, &row, env)? && !f(row)? {
                    break;
                }
            }
            Ok(())
        }
    }
}

/// Materializes a source (used for the left side of join pipelines and
/// DML sources).
fn collect_source(
    pool: &mut BufferPool,
    catalog: &Catalog,
    env: &Env<'_>,
    sp: &SourcePlan,
) -> Result<Vec<Vec<Value>>> {
    let mut rows = Vec::new();
    stream_source(pool, catalog, env, sp, &mut |row| {
        rows.push(row);
        Ok(true)
    })?;
    Ok(rows)
}

/// Materializes a join stage's right side.
fn materialize_right(
    pool: &mut BufferPool,
    catalog: &Catalog,
    env: &Env<'_>,
    right: &RightPlan,
) -> Result<Vec<Vec<Value>>> {
    match right {
        RightPlan::Table { name } => {
            let t = catalog.table(name)?;
            let mut rows = Vec::new();
            t.scan(pool, |_, row| {
                rows.push(row);
                true
            })?;
            Ok(rows)
        }
        RightPlan::Derived(sub) => run_select_rows(pool, catalog, env.params, sub),
    }
}

/// Per-execution runtime state of one join stage.
enum StageRt<'a> {
    Index {
        table: &'a crate::catalog::Table,
    },
    Hash {
        rows: Vec<Vec<Value>>,
        ht: HashMap<HashKey, Vec<usize>>,
    },
    Loop {
        rows: Vec<Vec<Value>>,
        emitted: u64,
    },
}

fn build_stage_rts<'a>(
    pool: &mut BufferPool,
    catalog: &'a Catalog,
    env: &Env<'_>,
    joins: &[JoinPlan],
) -> Result<Vec<StageRt<'a>>> {
    let mut rts = Vec::with_capacity(joins.len());
    for j in joins {
        let rt = match j {
            JoinPlan::IndexLoop { table, .. } => StageRt::Index {
                table: catalog.table(table)?,
            },
            JoinPlan::Hash {
                right, right_cols, ..
            } => {
                let rows = materialize_right(pool, catalog, env, right)?;
                let mut ht: HashMap<HashKey, Vec<usize>> = HashMap::new();
                'rrow: for (i, rrow) in rows.iter().enumerate() {
                    let mut vals = Vec::with_capacity(right_cols.len());
                    for &c in right_cols {
                        if rrow[c].is_null() {
                            continue 'rrow;
                        }
                        vals.push(rrow[c].clone());
                    }
                    ht.entry(HashKey::from_values(&vals)?).or_default().push(i);
                }
                StageRt::Hash { rows, ht }
            }
            JoinPlan::Loop { right, .. } => StageRt::Loop {
                rows: materialize_right(pool, catalog, env, right)?,
                emitted: 0,
            },
        };
        rts.push(rt);
    }
    Ok(rts)
}

/// Safety valve against runaway cross joins (mirrors the interpreter).
pub(crate) const LOOP_JOIN_ROW_CAP: u64 = 50_000_000;

/// Pushes the row in `buf` through the remaining join stages into the
/// sink. Returns `false` when the pipeline should stop.
fn drive(
    pool: &mut BufferPool,
    env: &Env<'_>,
    joins: &[JoinPlan],
    rts: &mut [StageRt<'_>],
    buf: &mut Vec<Value>,
    residual: &[PExpr],
    sink: &mut dyn FnMut(&[Value]) -> Result<bool>,
) -> Result<bool> {
    let Some((join, joins_rest)) = joins.split_first() else {
        if !passes(residual, buf, env)? {
            return Ok(true);
        }
        return sink(buf);
    };
    let (rt, rts_rest) = rts
        .split_first_mut()
        .ok_or_else(|| SqlError::Eval("join executor has fewer runtimes than stages".into()))?;
    match (join, rt) {
        (
            JoinPlan::IndexLoop {
                keys,
                path_cols,
                residual: jres,
                left_width,
                ..
            },
            StageRt::Index { table },
        ) => {
            let mut key_vals = Vec::with_capacity(keys.len());
            for k in keys {
                let v = eval_px(k, buf, env)?;
                if v.is_null() {
                    return Ok(true); // NULL join key never matches
                }
                key_vals.push(v);
            }
            let mut matches: Vec<Vec<Value>> = Vec::new();
            table.lookup_eq(pool, path_cols, &key_vals, |_, row| {
                matches.push(row);
                true
            })?;
            for m in matches {
                buf.extend(m);
                let cont = if passes(jres, buf, env)? {
                    drive(pool, env, joins_rest, rts_rest, buf, residual, sink)?
                } else {
                    true
                };
                buf.truncate(*left_width);
                if !cont {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        (
            JoinPlan::Hash {
                left_keys,
                residual: jres,
                left_width,
                ..
            },
            StageRt::Hash { rows, ht },
        ) => {
            let mut vals = Vec::with_capacity(left_keys.len());
            for k in left_keys {
                let v = eval_px(k, buf, env)?;
                if v.is_null() {
                    return Ok(true);
                }
                vals.push(v);
            }
            if let Some(matches) = ht.get(&HashKey::from_values(&vals)?) {
                for &ri in matches {
                    buf.extend(rows[ri].iter().cloned());
                    let cont = if passes(jres, buf, env)? {
                        drive(pool, env, joins_rest, rts_rest, buf, residual, sink)?
                    } else {
                        true
                    };
                    buf.truncate(*left_width);
                    if !cont {
                        return Ok(false);
                    }
                }
            }
            Ok(true)
        }
        (
            JoinPlan::Loop {
                residual: jres,
                left_width,
                ..
            },
            StageRt::Loop { rows, emitted },
        ) => {
            for rrow in rows.iter() {
                buf.extend(rrow.iter().cloned());
                let mut cont = true;
                if passes(jres, buf, env)? {
                    *emitted += 1;
                    cont = drive(pool, env, joins_rest, rts_rest, buf, residual, sink)?;
                    if *emitted > LOOP_JOIN_ROW_CAP {
                        cont = false; // runaway cross join
                    }
                }
                buf.truncate(*left_width);
                if !cont {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        _ => unreachable!("runtime built from the same join list"),
    }
}

/// Streams the FROM/WHERE pipeline into `sink`.
fn run_from(
    pool: &mut BufferPool,
    catalog: &Catalog,
    env: &Env<'_>,
    fp: &FromPlan,
    sink: &mut dyn FnMut(&[Value]) -> Result<bool>,
) -> Result<()> {
    if fp.joins.is_empty() {
        return stream_source(pool, catalog, env, &fp.source, &mut |row| {
            if !passes(&fp.residual, &row, env)? {
                return Ok(true);
            }
            sink(&row)
        });
    }
    // Join pipeline: the base side is materialized (index probes need the
    // buffer pool between rows), every later stage streams through one
    // reused row buffer.
    let base = collect_source(pool, catalog, env, &fp.source)?;
    let mut rts = build_stage_rts(pool, catalog, env, &fp.joins)?;
    let mut buf: Vec<Value> = Vec::new();
    for row in base {
        buf.clear();
        buf.extend(row);
        if !drive(pool, env, &fp.joins, &mut rts, &mut buf, &fp.residual, sink)? {
            break;
        }
    }
    Ok(())
}

/// Shared post-pipeline stages over materialized rows:
/// HAVING → ORDER BY → projection → DISTINCT → TOP/LIMIT.
pub(crate) fn post_process(
    mut rows: Vec<Vec<Value>>,
    plan: &SelectPlan,
    env: &Env<'_>,
) -> Result<Vec<Vec<Value>>> {
    if let Some(h) = &plan.having {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if truthy(&eval_px(h, &row, env)?) {
                kept.push(row);
            }
        }
        rows = kept;
    }
    if !plan.order_by.is_empty() {
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rows.len());
        for row in rows {
            let mut keys = Vec::with_capacity(plan.order_by.len());
            for (e, _) in &plan.order_by {
                keys.push(eval_px(e, &row, env)?);
            }
            keyed.push((keys, row));
        }
        keyed.sort_by(|(a, _), (b, _)| {
            for (i, (_, asc)) in plan.order_by.iter().enumerate() {
                let ord = a[i].total_cmp(&b[i]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows = keyed.into_iter().map(|(_, r)| r).collect();
    }
    // A zero cap excludes every row *before* projection: no excluded
    // row's output expressions may be evaluated (`… ORDER BY x LIMIT 0`
    // with `1/0` in the select list returns empty instead of erroring),
    // matching the interpreter and the fully-streaming branch.
    if plan.cap == Some(0) {
        rows.clear();
    }
    let mut out = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut o = Vec::with_capacity(plan.items.len());
        for p in &plan.items {
            o.push(eval_px(p, row, env)?);
        }
        out.push(o);
    }
    if plan.distinct {
        let mut seen = HashSet::new();
        out.retain(|r| seen.insert(encode_key(r).unwrap_or_default()));
    }
    if let Some(cap) = plan.cap {
        out.truncate(cap as usize);
    }
    Ok(out)
}

/// Appends the window columns of `plan.windows` to the materialized rows.
/// Key evaluation uses the plan's pre-bound expressions; the
/// sorting/numbering engine is shared with the interpreter
/// ([`crate::exec::window::window_values`]).
fn compute_windows(plan: &SelectPlan, rows: &mut [Vec<Value>], env: &Env<'_>) -> Result<()> {
    let n = rows.len();
    for w in &plan.windows {
        let mut keyed: Vec<(Vec<Value>, Vec<Value>, usize)> = Vec::with_capacity(n);
        for (i, row) in rows.iter().enumerate() {
            let mut pvals = Vec::with_capacity(w.partition.len());
            for p in &w.partition {
                pvals.push(eval_px(p, row, env)?);
            }
            let mut ovals = Vec::with_capacity(w.order.len());
            for (o, _) in &w.order {
                ovals.push(eval_px(o, row, env)?);
            }
            keyed.push((pvals, ovals, i));
        }
        let dirs: Vec<bool> = w.order.iter().map(|(_, asc)| *asc).collect();
        let values = crate::exec::window::window_values(keyed, &dirs, w.func);
        for (row, v) in rows.iter_mut().zip(values) {
            row.push(v);
        }
    }
    Ok(())
}

/// Executes a SELECT plan, returning the result rows.
pub(crate) fn run_select_rows(
    pool: &mut BufferPool,
    catalog: &Catalog,
    params: &[Value],
    plan: &SelectPlan,
) -> Result<Vec<Vec<Value>>> {
    let env = build_env(pool, catalog, params, &plan.subplans)?;

    if let Some(agg) = &plan.agg {
        if agg.group.is_empty() {
            // Scalar aggregate (the FEM stats statements): one accumulator
            // set, no per-row group-key hashing, one output row always.
            let mut states: Vec<AggState> =
                agg.aggs.iter().map(|(f, _)| AggState::new(*f)).collect();
            run_from(pool, catalog, &env, &plan.from, &mut |row| {
                for (state, (_, arg)) in states.iter_mut().zip(&agg.aggs) {
                    let v = match arg {
                        Some(a) => Some(eval_px(a, row, &env)?),
                        None => None,
                    };
                    state.update(v)?;
                }
                Ok(true)
            })?;
            let row: Vec<Value> = states.into_iter().map(|s| s.finish()).collect();
            return post_process(vec![row], plan, &env);
        }
        // Stream rows into per-group accumulators — no input
        // materialization.
        let mut order: Vec<HashKey> = Vec::new();
        let mut groups: HashMap<HashKey, (Vec<Value>, Vec<AggState>)> = HashMap::new();
        run_from(pool, catalog, &env, &plan.from, &mut |row| {
            let mut key_vals = Vec::with_capacity(agg.group.len());
            for g in &agg.group {
                key_vals.push(eval_px(g, row, &env)?);
            }
            let key = HashKey::from_values(&key_vals)?;
            let entry = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                (
                    key_vals,
                    agg.aggs.iter().map(|(f, _)| AggState::new(*f)).collect(),
                )
            });
            for (state, (_, arg)) in entry.1.iter_mut().zip(&agg.aggs) {
                let v = match arg {
                    Some(a) => Some(eval_px(a, row, &env)?),
                    None => None,
                };
                state.update(v)?;
            }
            Ok(true)
        })?;
        // (The scalar-aggregate fast path above handles the empty-group-by
        // case, including the one-row-on-empty-input rule, so every group
        // here carries at least one key column.)
        let mut rows = Vec::with_capacity(order.len());
        for key in order {
            let (mut key_vals, states) = groups.remove(&key).ok_or_else(|| {
                SqlError::Eval("group key vanished between collection and output".into())
            })?;
            for s in states {
                key_vals.push(s.finish());
            }
            rows.push(key_vals);
        }
        return post_process(rows, plan, &env);
    }

    if !plan.windows.is_empty() {
        // Windows need the whole input: materialize, extend, post-process.
        let mut rows: Vec<Vec<Value>> = Vec::new();
        run_from(pool, catalog, &env, &plan.from, &mut |row| {
            rows.push(row.to_vec());
            Ok(true)
        })?;
        compute_windows(plan, &mut rows, &env)?;
        return post_process(rows, plan, &env);
    }

    if !plan.order_by.is_empty() {
        // Sort needs the whole input: collect (keys, row), sort, project.
        let mut rows: Vec<Vec<Value>> = Vec::new();
        run_from(pool, catalog, &env, &plan.from, &mut |row| {
            rows.push(row.to_vec());
            Ok(true)
        })?;
        return post_process(rows, plan, &env);
    }

    // Fully streaming: filter → project → DISTINCT → cap, with early exit.
    if plan.cap == Some(0) {
        return Ok(Vec::new());
    }
    let mut out: Vec<Vec<Value>> = Vec::new();
    let mut seen: Option<HashSet<Vec<u8>>> = if plan.distinct {
        Some(HashSet::new())
    } else {
        None
    };
    run_from(pool, catalog, &env, &plan.from, &mut |row| {
        if let Some(h) = &plan.having {
            if !truthy(&eval_px(h, row, &env)?) {
                return Ok(true);
            }
        }
        let mut o = Vec::with_capacity(plan.items.len());
        for p in &plan.items {
            o.push(eval_px(p, row, &env)?);
        }
        if let Some(seen) = &mut seen {
            if !seen.insert(encode_key(&o).unwrap_or_default()) {
                return Ok(true);
            }
        }
        out.push(o);
        Ok(plan.cap.is_none_or(|c| (out.len() as u64) < c))
    })?;
    Ok(out)
}

/// Executes an UPDATE plan; returns the number of rows updated.
pub(crate) fn run_update(
    pool: &mut BufferPool,
    catalog: &mut Catalog,
    params: &[Value],
    plan: &UpdatePlan,
) -> Result<u64> {
    // Read phase (catalog borrowed immutably).
    let pending: Vec<(RowLoc, Vec<Value>, Vec<Value>)> = {
        let catalog = &*catalog;
        let env = build_env(pool, catalog, params, &plan.subplans)?;
        let table = catalog.table(&plan.table)?;
        match &plan.kind {
            UpdateKind::Plain { pred, assigns } => {
                let mut matches: Vec<(RowLoc, Vec<Value>)> = Vec::new();
                let mut err: Option<SqlError> = None;
                table.scan(pool, |loc, row| {
                    let keep = match pred {
                        Some(p) => match eval_px(p, &row, &env) {
                            Ok(v) => truthy(&v),
                            Err(e) => {
                                err = Some(e);
                                return false;
                            }
                        },
                        None => true,
                    };
                    if keep {
                        matches.push((loc, row));
                    }
                    true
                })?;
                if let Some(e) = err {
                    return Err(e);
                }
                let mut pending = Vec::with_capacity(matches.len());
                for (loc, row) in matches {
                    let mut new_row = row.clone();
                    for (c, a) in plan.assign_cols.iter().zip(assigns) {
                        new_row[*c] = eval_px(a, &row, &env)?;
                    }
                    let new_row = table.coerce_row(new_row)?;
                    pending.push((loc, row, new_row));
                }
                pending
            }
            UpdateKind::From {
                source,
                probe_cols,
                probe_keys,
                target_residual,
                mixed_residual,
                assigns,
            } => {
                let source_rows = collect_source(pool, catalog, &env, source)?;
                let mut pending = Vec::new();
                let mut touched: HashSet<RowLoc> = HashSet::new();
                for srow in &source_rows {
                    let mut keys = Vec::with_capacity(probe_keys.len());
                    let mut null_key = false;
                    for e in probe_keys {
                        let v = eval_px(e, srow, &env)?;
                        if v.is_null() {
                            null_key = true;
                            break;
                        }
                        keys.push(v);
                    }
                    if null_key {
                        continue; // NULL never matches
                    }
                    let mut matches: Vec<(RowLoc, Vec<Value>)> = Vec::new();
                    table.lookup_eq(pool, probe_cols, &keys, |loc, row| {
                        matches.push((loc, row));
                        true
                    })?;
                    'target: for (loc, trow) in matches {
                        if !passes(target_residual, &trow, &env)? {
                            continue 'target;
                        }
                        let mut combined = trow.clone();
                        combined.extend(srow.iter().cloned());
                        if !passes(mixed_residual, &combined, &env)? {
                            continue 'target;
                        }
                        if !touched.insert(loc.clone()) {
                            continue;
                        }
                        let mut new_row = trow.clone();
                        for (c, a) in plan.assign_cols.iter().zip(assigns) {
                            new_row[*c] = eval_px(a, &combined, &env)?;
                        }
                        let new_row = table.coerce_row(new_row)?;
                        pending.push((loc, trow, new_row));
                    }
                }
                pending
            }
        }
    };

    // Write phase.
    let n = pending.len() as u64;
    let table = catalog.table_mut(&plan.table)?;
    for (loc, old_row, new_row) in pending {
        table.update_row(pool, &loc, &old_row, &new_row)?;
    }
    Ok(n)
}

/// Executes a DELETE plan; returns the number of rows removed.
pub(crate) fn run_delete(
    pool: &mut BufferPool,
    catalog: &mut Catalog,
    params: &[Value],
    plan: &super::DeletePlan,
) -> Result<u64> {
    let matches: Vec<(RowLoc, Vec<Value>)> = {
        let catalog = &*catalog;
        let env = build_env(pool, catalog, params, &plan.subplans)?;
        let table = catalog.table(&plan.table)?;
        let mut out = Vec::new();
        let mut err: Option<SqlError> = None;
        table.scan(pool, |loc, row| {
            let keep = match &plan.pred {
                Some(p) => match eval_px(p, &row, &env) {
                    Ok(v) => truthy(&v),
                    Err(e) => {
                        err = Some(e);
                        return false;
                    }
                },
                None => true,
            };
            if keep {
                out.push((loc, row));
            }
            true
        })?;
        if let Some(e) = err {
            return Err(e);
        }
        out
    };
    let n = matches.len() as u64;
    let table = catalog.table_mut(&plan.table)?;
    for (loc, row) in matches {
        table.delete_row(pool, &loc, &row)?;
    }
    Ok(n)
}

/// Executes an INSERT plan; returns the number of rows inserted.
pub(crate) fn run_insert(
    pool: &mut BufferPool,
    catalog: &mut Catalog,
    params: &[Value],
    plan: &super::InsertPlan,
) -> Result<u64> {
    let full_rows: Vec<Vec<Value>> = {
        let catalog = &*catalog;
        let env = build_env(pool, catalog, params, &plan.subplans)?;
        let source_rows: Vec<Vec<Value>> = match &plan.source {
            InsertSourcePlan::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut vals = Vec::with_capacity(row.len());
                    for e in row {
                        vals.push(eval_px(e, &[], &env)?);
                    }
                    out.push(vals);
                }
                out
            }
            InsertSourcePlan::Query(q) => run_select_rows(pool, catalog, params, q)?,
        };
        let table = catalog.table(&plan.table)?;
        let n_cols = table.schema.columns.len();
        let mut full_rows = Vec::with_capacity(source_rows.len());
        for vals in source_rows {
            let row = match &plan.col_positions {
                Some(pos) => {
                    if vals.len() != pos.len() {
                        return Err(SqlError::Eval(format!(
                            "INSERT lists {} columns but supplies {} values",
                            pos.len(),
                            vals.len()
                        )));
                    }
                    let mut row = vec![Value::Null; n_cols];
                    for (p, v) in pos.iter().zip(vals) {
                        row[*p] = v;
                    }
                    row
                }
                None => vals,
            };
            full_rows.push(table.coerce_row(row)?);
        }
        full_rows
    };
    let n = full_rows.len() as u64;
    let table = catalog.table_mut(&plan.table)?;
    for row in full_rows {
        table.insert_row(pool, &row)?;
    }
    Ok(n)
}

/// Executes a MERGE plan; returns updates + inserts.
pub(crate) fn run_merge(
    pool: &mut BufferPool,
    catalog: &mut Catalog,
    params: &[Value],
    plan: &MergePlan,
) -> Result<u64> {
    type Pending = (
        Vec<(RowLoc, Vec<Value>, Vec<Value>)>, // updates
        Vec<Vec<Value>>,                       // inserts
    );
    let (pending_updates, pending_inserts): Pending = {
        let catalog = &*catalog;
        let env = build_env(pool, catalog, params, &plan.subplans)?;
        let source_rows = collect_source(pool, catalog, &env, &plan.source)?;
        let table = catalog.table(&plan.target)?;
        let n_cols = table.schema.columns.len();

        let mut updates = Vec::new();
        let mut inserts: Vec<Vec<Value>> = Vec::new();
        let mut touched: HashSet<RowLoc> = HashSet::new();

        for srow in &source_rows {
            let mut keys = Vec::with_capacity(plan.probe_keys.len());
            let mut null_key = false;
            for e in &plan.probe_keys {
                let v = eval_px(e, srow, &env)?;
                if v.is_null() {
                    null_key = true;
                    break;
                }
                keys.push(v);
            }
            let mut matches: Vec<(RowLoc, Vec<Value>)> = Vec::new();
            if !null_key {
                table.lookup_eq(pool, &plan.probe_cols, &keys, |loc, row| {
                    matches.push((loc, row));
                    true
                })?;
            }
            let mut any_match = false;
            for (loc, trow) in matches {
                let mut combined = trow.clone();
                combined.extend(srow.iter().cloned());
                if !passes(&plan.residual, &combined, &env)? {
                    continue;
                }
                any_match = true;
                if let Some((cond, cols, exprs)) = &plan.matched {
                    let applies = match cond {
                        Some(c) => truthy(&eval_px(c, &combined, &env)?),
                        None => true,
                    };
                    if applies && touched.insert(loc.clone()) {
                        let mut new_row = trow.clone();
                        for (c, e) in cols.iter().zip(exprs) {
                            new_row[*c] = eval_px(e, &combined, &env)?;
                        }
                        let new_row = table.coerce_row(new_row)?;
                        updates.push((loc, trow, new_row));
                    }
                }
            }
            if !any_match {
                if let Some((cols, exprs)) = &plan.not_matched {
                    let mut row = vec![Value::Null; n_cols];
                    for (c, e) in cols.iter().zip(exprs) {
                        row[*c] = eval_px(e, srow, &env)?;
                    }
                    inserts.push(table.coerce_row(row)?);
                }
            }
        }
        (updates, inserts)
    };

    let n = (pending_updates.len() + pending_inserts.len()) as u64;
    let table = catalog.table_mut(&plan.target)?;
    for (loc, old_row, new_row) in pending_updates {
        table.update_row(pool, &loc, &old_row, &new_row)?;
    }
    for row in pending_inserts {
        table.insert_row(pool, &row)?;
    }
    Ok(n)
}
